//! # dynspread — information spreading in dynamic graphs
//!
//! Facade crate for the reproduction of **Clementi, Silvestri, Trevisan —
//! "Information Spreading in Dynamic Graphs" (PODC 2012,
//! arXiv:1111.0583)**: flooding-time analysis of Markovian evolving
//! graphs, with every model family the paper instantiates.
//!
//! This crate re-exports the workspace libraries:
//!
//! * [`dynagraph`] — the core: dynamic graphs, flooding, `(M, α, β)`-
//!   stationarity, node-MEGs, the paper's bounds;
//! * [`dg_edge_meg`] — link-based models (Appendix A);
//! * [`dg_mobility`] — geometric + graph mobility models (§4.1);
//! * [`dg_graph`], [`dg_markov`], [`dg_stats`] — the substrates.
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/experiments` for the harness that regenerates every
//! table/series of `EXPERIMENTS.md`.
//!
//! # Quickstart
//!
//! ```
//! use dynspread::dynagraph::{flooding, EvolvingGraph};
//! use dynspread::dg_edge_meg::TwoStateEdgeMeg;
//!
//! let mut g = TwoStateEdgeMeg::stationary(64, 0.05, 0.2, 42)?;
//! let run = flooding::flood(&mut g, 0, 10_000);
//! println!("flooding time: {:?}", run.flooding_time());
//! # Ok::<(), dynspread::dg_markov::MarkovError>(())
//! ```

#![forbid(unsafe_code)]

pub use dg_edge_meg;
pub use dg_graph;
pub use dg_markov;
pub use dg_mobility;
pub use dg_stats;
pub use dynagraph;
