//! # dynspread — information spreading in dynamic graphs
//!
//! Facade crate for the reproduction of **Clementi, Silvestri, Trevisan —
//! "Information Spreading in Dynamic Graphs" (PODC 2012,
//! arXiv:1111.0583)**: flooding-time analysis of Markovian evolving
//! graphs, with every model family the paper instantiates.
//!
//! This crate re-exports the workspace libraries:
//!
//! * [`dynagraph`] — the core: dynamic graphs, the unified
//!   [`dynagraph::engine`] (builder-driven Monte-Carlo over model ×
//!   protocol × observers, with deterministic parallel trials), the
//!   adaptive [`dynagraph::sweep`] orchestration layer (declarative
//!   parameter grids, per-cell sequential stopping, resumable JSON/CSV
//!   artifacts), `(M, α, β)`-stationarity, node-MEGs, the paper's
//!   bounds;
//! * [`dg_edge_meg`] — link-based models (Appendix A);
//! * [`dg_mobility`] — geometric + graph mobility models (§4.1);
//! * [`dg_graph`], [`dg_markov`], [`dg_stats`] — the substrates.
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/experiments` for the harness that regenerates every
//! table/series of `EXPERIMENTS.md`.
//!
//! # Quickstart
//!
//! Pick a model, pick a protocol, let the engine own seeding, warm-up,
//! the round loop, and (parallel) aggregation:
//!
//! ```
//! use dynspread::dynagraph::engine::Simulation;
//! use dynspread::dg_edge_meg::TwoStateEdgeMeg;
//!
//! let report = Simulation::builder()
//!     .model(|seed| TwoStateEdgeMeg::stationary(64, 0.05, 0.2, seed).unwrap())
//!     .trials(10)
//!     .max_rounds(10_000)
//!     .base_seed(42)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! println!("flooding time: mean {:.1}, p95 {:?}", report.mean(), report.p95());
//! ```
//!
//! Swap in a gossip protocol — the harness does not change:
//!
//! ```
//! use dynspread::dynagraph::engine::{PushGossip, Simulation};
//! use dynspread::dg_edge_meg::TwoStateEdgeMeg;
//!
//! let report = Simulation::builder()
//!     .model(|seed| TwoStateEdgeMeg::stationary(64, 0.05, 0.2, seed).unwrap())
//!     .protocol(PushGossip::new(2))
//!     .trials(10)
//!     .run();
//! assert_eq!(report.incomplete(), 0);
//! ```
//!
//! ## Migrating from the pre-engine API
//!
//! | old                                            | new                                              |
//! |------------------------------------------------|--------------------------------------------------|
//! | `flooding::run_trials(make, &TrialConfig {..})`| `Simulation::builder().model(make)…run()`        |
//! | `gossip::push_spread(&mut g, s, k, cap, seed)` | `.protocol(PushGossip::new(k))`                  |
//! | `gossip::parsimonious_flood(&mut g, s, t, cap)`| `.protocol(ParsimoniousFlooding::new(t))`        |
//! | hand-rolled per-trial loops + `Summary`        | `.observers(…)` / `SimulationReport` aggregation |
//!
//! Single-run primitives (`flooding::flood`, `flooding::flood_multi`)
//! are unchanged; `run_trials` still works as a deprecated shim over the
//! engine and reports identical numbers.
//!
//! ## Delta-native stepping
//!
//! Every first-party model — including the §5
//! `ThinnedEvolvingGraph`/`JammedEvolvingGraph` wrappers — exposes its
//! per-round *churn* via `EvolvingGraph::step_delta` (an `EdgeDelta` of
//! added/removed edges applied to an incremental `DynAdjacency`), and
//! the engine drives that path automatically (`Stepping::Auto`) for
//! models advertising `has_native_deltas()`. Results are byte-identical
//! to the snapshot path; per-round cost drops from `O(m + n)` to
//! `O(churn + frontier)` in the paper's slow-churn regimes — see
//! `BENCH_delta.json` at the repository root for the measured
//! trajectory. The full delta contract lives in the `dynagraph::delta`
//! module docs.
//!
//! ## Sparse trial setup
//!
//! In the `p = 1/n` regime, trial *setup* dominates short runs at large
//! `n`: `SparseTwoStateEdgeMeg::stationary` scans all `n(n-1)/2` pairs.
//! `SparseTwoStateEdgeMeg::stationary_sparse_init` skip-samples the
//! stationary on-set directly (`O(#on)` setup; same distribution,
//! different realization stream) — `BENCH_sparse_init.json` tracks the
//! measured speedup (≈ 20× at `n = 2¹⁴`). Observers that want churn
//! metrics read `RoundCtx::delta` (e.g. `engine::ChurnObserver`) instead
//! of forcing snapshot materialization.
//!
//! ## Adaptive sweeps
//!
//! Phase diagrams go through `dynagraph::sweep`: declare a `Grid` of
//! parameter axes and one work pool runs all `(cell × trial)` items,
//! stopping each cell as soon as its Student-t 95% CI half-width meets
//! a target — trials go where the noise is (`BENCH_sweep.json`: ≈ 40%
//! fewer trials than a fixed budget at equal worst-cell CI). Reports
//! serialize to resumable JSON/CSV artifacts that are byte-identical
//! whether the sweep ran serially, in parallel, or was killed and
//! resumed. The engine side of the glue is
//! `SimulationBuilder::run_trial`; the module docs carry the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dg_edge_meg;
pub use dg_graph;
pub use dg_markov;
pub use dg_mobility;
pub use dg_stats;
pub use dynagraph;
