//! Randomized transmission protocols on a mobile network (§5).
//!
//! Instead of transmitting on every current link (flooding), each
//! informed node transmits on a random subset: either every link
//! independently with probability γ (modeled exactly as flooding on a
//! thinned "virtual" dynamic graph, the reduction §5 describes), or to a
//! bounded number k of random neighbours (push-k). This example measures
//! the energy/latency trade-off on a waypoint MANET.
//!
//! Run with:
//! ```text
//! cargo run --release --example gossip_protocols
//! ```

use dynspread::dg_mobility::{GeometricMeg, RandomWaypoint};
use dynspread::dg_stats::Summary;
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::gossip::push_spread;
use dynspread::dynagraph::{mix_seed, EvolvingGraph, ThinnedEvolvingGraph};

fn make_manet(seed: u64) -> GeometricMeg<RandomWaypoint> {
    let n = 100;
    let side = 12.0;
    GeometricMeg::new(
        RandomWaypoint::new(side, 1.0, 1.0).expect("valid waypoint"),
        n,
        2.0,
        seed,
    )
    .expect("valid network")
}

fn main() {
    let trials = 20;
    let warm = 100;

    println!("waypoint MANET, n = 100, L = 12, r = 2 — protocol comparison over {trials} trials\n");
    println!("{:<22} {:>12} {:>14}", "protocol", "mean rounds", "vs flooding");

    let mut baseline = f64::NAN;
    for gamma in [1.0, 0.5, 0.25, 0.1] {
        let mut s = Summary::new();
        for t in 0..trials {
            let seed = mix_seed(0xD7, t);
            let mut g = ThinnedEvolvingGraph::new(make_manet(seed), gamma, seed)
                .expect("gamma in range");
            g.warm_up(warm);
            if let Some(f) = flood(&mut g, 0, 100_000).flooding_time() {
                s.push(f as f64);
            }
        }
        if gamma == 1.0 {
            baseline = s.mean();
        }
        let label = if gamma == 1.0 {
            "flooding (gamma=1)".to_string()
        } else {
            format!("thinned gamma={gamma}")
        };
        println!("{label:<22} {:>12.1} {:>13.2}x", s.mean(), s.mean() / baseline);
    }

    for k in [1usize, 2, 4] {
        let mut s = Summary::new();
        for t in 0..trials {
            let seed = mix_seed(0xD8, t);
            let mut g = make_manet(seed);
            g.warm_up(warm);
            if let Some(f) = push_spread(&mut g, 0, k, 100_000, seed).flooding_time() {
                s.push(f as f64);
            }
        }
        println!(
            "{:<22} {:>12.1} {:>13.2}x",
            format!("push-{k}"),
            s.mean(),
            s.mean() / baseline
        );
    }

    println!(
        "\ntakeaway: transmitting on a fraction of links costs only a bounded latency factor —\n\
         the thinned process is itself a MEG with alpha scaled by gamma, so Theorem 1 applies to it"
    );
}
