//! Randomized transmission protocols on a mobile network (§5).
//!
//! Instead of transmitting on every current link (flooding), each
//! informed node transmits on a random subset: either every link
//! independently with probability γ (modeled exactly as flooding on a
//! thinned "virtual" dynamic graph, the reduction §5 describes), or to a
//! bounded number k of random neighbours (push-k). This example measures
//! the energy/latency trade-off on a waypoint MANET — one `Simulation`
//! builder, three points on the protocol/model axes.
//!
//! Run with:
//! ```text
//! cargo run --release --example gossip_protocols
//! ```

use dynspread::dg_mobility::{GeometricMeg, RandomWaypoint};
use dynspread::dynagraph::engine::{PushGossip, Simulation, SimulationReport};
use dynspread::dynagraph::ThinnedEvolvingGraph;

fn make_manet(seed: u64) -> GeometricMeg<RandomWaypoint> {
    let n = 100;
    let side = 12.0;
    GeometricMeg::new(
        RandomWaypoint::new(side, 1.0, 1.0).expect("valid waypoint"),
        n,
        2.0,
        seed,
    )
    .expect("valid network")
}

fn print_row(label: &str, report: &SimulationReport, baseline: f64) {
    println!(
        "{label:<22} {:>12.1} {:>13.2}x {:>14.0}",
        report.mean(),
        report.mean() / baseline,
        report.mean_messages()
    );
}

fn main() {
    let trials = 20;
    let warm = 100;

    println!("waypoint MANET, n = 100, L = 12, r = 2 — protocol comparison over {trials} trials\n");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "protocol", "mean rounds", "vs flooding", "msgs/trial"
    );

    let mut baseline = f64::NAN;
    for gamma in [1.0, 0.5, 0.25, 0.1] {
        let report = Simulation::builder()
            .model(move |seed| {
                ThinnedEvolvingGraph::new(make_manet(seed), gamma, seed).expect("gamma in range")
            })
            .trials(trials)
            .max_rounds(100_000)
            .warm_up(warm)
            .base_seed(0xD7)
            .run();
        if gamma == 1.0 {
            baseline = report.mean();
        }
        let label = if gamma == 1.0 {
            "flooding (gamma=1)".to_string()
        } else {
            format!("thinned gamma={gamma}")
        };
        print_row(&label, &report, baseline);
    }

    for k in [1usize, 2, 4] {
        let report = Simulation::builder()
            .model(make_manet)
            .protocol(PushGossip::new(k))
            .trials(trials)
            .max_rounds(100_000)
            .warm_up(warm)
            .base_seed(0xD8)
            .run();
        print_row(&format!("push-{k}"), &report, baseline);
    }

    println!(
        "\ntakeaway: transmitting on a fraction of links costs only a bounded latency factor —\n\
         the thinned process is itself a MEG with alpha scaled by gamma, so Theorem 1 applies to it"
    );
}
