//! File broadcast in a peer-to-peer overlay under churn.
//!
//! Appendix A motivates edge-MEGs as models of "link evolution in
//! peer-to-peer networks or faulty networks": connections appear and
//! disappear independently of node positions. We compare a memoryless
//! two-state link process against a bursty hidden-chain process with the
//! same stationary density — the generalized edge-MEG `EM(n, M, χ)` —
//! and watch the mixing time, not the density, control the spread. Only
//! the model axis of the `Simulation` builder changes between the two.
//!
//! Run with:
//! ```text
//! cargo run --release --example p2p_churn
//! ```

use dynspread::dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg, TwoStateEdgeMeg};
use dynspread::dynagraph::engine::Simulation;

fn main() {
    let n = 128;
    let trials = 20;

    // Memoryless churn: a link is up with stationary probability ~2.4%.
    let (p, q) = (0.01, 0.4);
    let memoryless = Simulation::builder()
        .model(|seed| TwoStateEdgeMeg::stationary(n, p, q, seed).expect("valid parameters"))
        .trials(trials)
        .max_rounds(200_000)
        .run();
    println!("P2P overlay, n = {n} peers, file injected at one seed peer");
    println!(
        "memoryless churn   (p={p}, q={q}, alpha={:.4}): mean {:.1} rounds, p95 {:.1}",
        p / (p + q),
        memoryless.mean(),
        memoryless.p95().expect("trials completed")
    );

    // Bursty churn: same stationary density, but links live and die in
    // bursts (3-state hidden chain), slowing the effective mixing.
    for slow in [1.0, 4.0] {
        let (chain, chi) = bursty_chain(0.01 / slow, 0.4 / slow, 0.4 / slow);
        let probe =
            HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), 0).expect("valid");
        let alpha = probe.alpha();
        let tmix = probe.mixing_time(0.25).expect("ergodic chain");
        let bursty = Simulation::builder()
            .model(|seed| {
                HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), seed).expect("valid")
            })
            .trials(trials)
            .max_rounds(200_000)
            .run();
        println!(
            "bursty churn x{slow:<3} (alpha={alpha:.4}, Tmix={tmix:>3}):          mean {:.1} rounds, p95 {:.1}",
            bursty.mean(),
            bursty.p95().expect("trials completed")
        );
    }
    println!(
        "\ntakeaway: equal link density, very different spread — exactly the paper's point that\n\
         the flooding bound must charge the hidden chain's mixing time, not just the density"
    );
}
