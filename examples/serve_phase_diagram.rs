//! Serve a phase diagram: the full `dg-serve` flow — store, daemon,
//! HTTP — driven in-process against the paper's flooding workload.
//!
//! The same grid as the `sweep_phase_diagram` example (flooding time vs
//! churn `q` on a stationary edge-MEG with `p = 1.5/n`), but instead of
//! running the sweep directly, this example:
//!
//! 1. opens a content-addressed [`dg_serve::ArtifactStore`] and starts
//!    a [`dg_serve::Daemon`] on an ephemeral port;
//! 2. `POST`s the grid spec — a cache miss, so the daemon `202`s and
//!    runs the sweep in the background, checkpointing into the store;
//! 3. polls `GET /sweep/<fp>` until the artifact is complete;
//! 4. asks phase-diagram questions with `GET /sweep/<fp>/cell?...`
//!    (exact and nearest-cell), and re-`POST`s the spec to show the
//!    cache hit;
//! 5. verifies the served bytes equal a direct `Sweep` run — the
//!    byte-identity pin, end to end over a real TCP socket.
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_phase_diagram
//! ```
//!
//! State lands in `serve_phase_diagram_data/`; rerunning is a cache hit
//! (step 2 serves `200` immediately), and killing a run mid-sweep
//! leaves a checkpoint the next run resumes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dg_serve::{http, ArtifactStore, Daemon, Workload};
use dynspread::dynagraph::sweep::{Axis, SweepSpec, TrialBudget};

fn main() {
    let n = 128.0;
    let spec = SweepSpec::new(
        vec![Axis::ints("n", [n as usize]), Axis::log("q", 0.02, 0.64, 4)],
        0x9A5E,
        TrialBudget::adaptive(3, 12, dynspread::dynagraph::sweep::CiTarget::Relative(0.1)),
    );
    let fp = spec.fingerprint();

    let store = ArtifactStore::open("serve_phase_diagram_data").expect("store io");
    let daemon = Arc::new(Daemon::start(store, Workload::flooding(), 1).expect("daemon start"));
    let handler = Arc::clone(&daemon);
    let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).expect("bind");
    let addr = server.addr();
    println!("daemon on http://{addr}, sweep fingerprint {fp}\n");

    // POST the spec: 200 = cache hit from a previous run, 202 = queued.
    let (status, _) = http::request(addr, "POST", "/sweep", spec.to_json().as_bytes()).unwrap();
    println!(
        "POST /sweep -> {status} ({})",
        if status == 200 { "cache hit" } else { "queued" }
    );

    // Poll until complete (the artifact is served partial while the
    // sweep runs — watch `decided_cells` climb on a slower grid).
    let start = Instant::now();
    let body = loop {
        let (status, body) = http::request(addr, "GET", &format!("/sweep/{fp}"), b"").unwrap();
        if status == 200 && String::from_utf8_lossy(&body).contains("\"complete\": true") {
            break body;
        }
        assert!(start.elapsed() < Duration::from_secs(600), "sweep stalled");
        std::thread::sleep(Duration::from_millis(50));
    };
    println!("GET /sweep/{fp} -> complete, {} bytes\n", body.len());

    // Phase-diagram queries: an on-grid point and an off-grid one.
    for q in [0.02, 0.1] {
        let (status, cell) =
            http::request(addr, "GET", &format!("/sweep/{fp}/cell?n={n}&q={q}"), b"").unwrap();
        assert_eq!(status, 200);
        println!("cell query q = {q}:\n{}", String::from_utf8_lossy(&cell));
    }

    // The pin: served bytes == a direct run of the same spec.
    let direct = spec
        .sweep()
        .run(Workload::flooding().trial_fn())
        .expect("no checkpoint, cannot fail");
    assert_eq!(
        body,
        direct.to_json().into_bytes(),
        "served artifact differs from a direct sweep run"
    );
    println!("served bytes == direct Sweep run: byte-identity holds over the wire");

    server.shutdown();
    daemon.shutdown();
}
