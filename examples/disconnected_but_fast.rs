//! The paper's central contrast, on data: a dynamic network that is
//! disconnected in essentially *every* round — failing even the weakest
//! stability assumption (1-interval connectivity) of the worst-case
//! dynamic-network literature [21] — still floods in a handful of rounds,
//! because what matters is the density/independence/mixing triple of
//! Theorem 1, not per-round connectivity.
//!
//! Run with:
//! ```text
//! cargo run --release --example disconnected_but_fast
//! ```

use dynspread::dg_edge_meg::SparseTwoStateEdgeMeg;
use dynspread::dynagraph::engine::{ParsimoniousFlooding, Simulation};
use dynspread::dynagraph::{interval, theory, RecordedEvolution};

fn main() {
    let n = 500;
    let p = 1.5 / n as f64;
    let q = 0.9; // short-lived links: average degree ~ 0.8, every snapshot shattered
    let mut g = SparseTwoStateEdgeMeg::stationary(n, p, q, 7).expect("valid parameters");

    // Record one realization so connectivity diagnostics and flooding run
    // on the *same* edge history.
    let rec = RecordedEvolution::record(&mut g, 80);

    println!("sparse stationary edge-MEG: n = {n}, p = 1.5/n, q = {q}");
    println!(
        "alpha = {:.5} (average degree ~ {:.1})",
        p / (p + q),
        (n - 1) as f64 * p / (p + q)
    );
    println!(
        "connected snapshots: {:.0}% of 80 rounds",
        100.0 * interval::connected_snapshot_fraction(&rec)
    );
    println!(
        "largest T with T-interval connectivity: {}",
        interval::max_interval_connectivity(&rec)
    );

    let run = rec.flood_from(0);
    println!(
        "\nflooding time on that very realization: {:?} rounds",
        run.flooding_time()
    );
    println!(
        "Theorem 1 budget (alpha, beta=1, M=Tmix={:.0}): {:.0} rounds",
        1.0 / (p + q),
        theory::theorem1_bound(1.0 / (p + q), p / (p + q), 1.0, n),
    );

    // Bonus: the parsimonious protocol of [4] — nodes relay only for a
    // TTL window after learning the message. In this extremely sparse
    // regime a short TTL lets the message die out; a modest one suffices.
    // Only the protocol axis of the builder changes per row.
    println!("\nparsimonious flooding [4] (nodes relay for ttl rounds only):");
    for ttl in [2u32, 4, 8, 16] {
        let report = Simulation::builder()
            .model(|seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).expect("valid"))
            .protocol(ParsimoniousFlooding::new(ttl))
            .trials(1)
            .max_rounds(100_000)
            .base_seed(8)
            .run();
        let rec = &report.records()[0];
        match rec.time {
            Some(t) => println!("  ttl = {ttl:>2}: completed in {t} rounds"),
            None => println!(
                "  ttl = {ttl:>2}: message died out after {} rounds ({} of {n} informed)",
                rec.rounds, rec.informed
            ),
        }
    }
}
