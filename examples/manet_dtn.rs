//! Delay-tolerant MANET broadcast: the paper's motivating scenario.
//!
//! Opportunistic delay-tolerant mobile ad-hoc networks (§1: "this is
//! surely the model setting that best fits opportunistic delay-tolerant
//! Mobile Ad-hoc Networks") run with constant transmission radius and
//! constant node speed over a region that grows with the number of nodes:
//! every snapshot is sparse and disconnected, and messages spread only by
//! physically carrying them. The paper proves flooding still completes in
//! `Õ(√n / v)` rounds.
//!
//! Run with:
//! ```text
//! cargo run --release --example manet_dtn
//! ```

use dynspread::dg_mobility::{GeometricMeg, RandomWaypoint};
use dynspread::dynagraph::analysis::GrowthCurve;
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::{theory, EvolvingGraph};

fn main() {
    let n = 400; // vehicles/pedestrians carrying radios
    let side = (n as f64).sqrt(); // density-1 deployment: L = sqrt(n)
    let speed = 1.0;
    let radius = 1.0; // r = Theta(1) = Theta(v): the DTN regime

    let waypoint = RandomWaypoint::new(side, speed, speed).expect("valid waypoint parameters");
    let mut network =
        GeometricMeg::new(waypoint, n, radius, 2024).expect("valid network parameters");

    // Let the mobility process reach its stationary (center-biased) regime
    // before the message is injected.
    network.warm_up((8.0 * side / speed) as usize);

    // How disconnected is this network? Count components in one snapshot.
    let snap = network.step().clone();
    let graph = snap.to_graph();
    let (_, components) = dynspread::dg_graph::traversal::connected_components(&graph);
    println!("MANET: n = {n} nodes on a {side:.0} x {side:.0} field, r = {radius}, v = {speed}");
    println!(
        "one stationary snapshot: {} edges, {components} connected components (highly disconnected)",
        snap.edge_count(),
    );

    // Inject the message at node 0 and flood.
    let run = flood(&mut network, 0, 100_000);
    let curve = GrowthCurve::from_run(&run, n);
    match run.flooding_time() {
        Some(t) => {
            println!("\nmessage reached all {n} nodes in {t} rounds");
            println!(
                "  trivial lower bound sqrt(n)/v = {:.0}, paper bound Õ(sqrt(n)/v) = {:.0}",
                theory::waypoint_sparse_lower_bound(n, speed),
                theory::waypoint_sparse_bound(n, speed)
            );
            println!(
                "  half the network was informed by round {:?}; saturation tail {:?} rounds",
                curve.spreading_phase_end(),
                curve.saturation_phase_len()
            );
        }
        None => println!("message did not reach everyone within the round cap"),
    }

    // Per-node delivery times: percentiles of the informed_at distribution.
    let mut delays: Vec<f64> = run
        .informed_at()
        .iter()
        .filter_map(|t| t.map(|x| x as f64))
        .collect();
    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = dynspread::dg_stats::Quantiles::new(delays);
    println!(
        "  delivery delay percentiles: p50 = {:.0}, p90 = {:.0}, p99 = {:.0}",
        q.quantile(0.5),
        q.quantile(0.9),
        q.quantile(0.99)
    );
}
