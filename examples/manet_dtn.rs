//! Delay-tolerant MANET broadcast: the paper's motivating scenario.
//!
//! Opportunistic delay-tolerant mobile ad-hoc networks (§1: "this is
//! surely the model setting that best fits opportunistic delay-tolerant
//! Mobile Ad-hoc Networks") run with constant transmission radius and
//! constant node speed over a region that grows with the number of nodes:
//! every snapshot is sparse and disconnected, and messages spread only by
//! physically carrying them. The paper proves flooding still completes in
//! `Õ(√n / v)` rounds. The engine's streaming observers extract the phase
//! structure and per-node delivery delays without buffering runs.
//!
//! Run with:
//! ```text
//! cargo run --release --example manet_dtn
//! ```

use dynspread::dg_mobility::{GeometricMeg, RandomWaypoint};
use dynspread::dynagraph::engine::{DelayObserver, PhaseObserver, Simulation};
use dynspread::dynagraph::{theory, EvolvingGraph};

fn main() {
    let n = 400; // vehicles/pedestrians carrying radios
    let side = (n as f64).sqrt(); // density-1 deployment: L = sqrt(n)
    let speed = 1.0;
    let radius = 1.0; // r = Theta(1) = Theta(v): the DTN regime
    let warm = (8.0 * side / speed) as usize;

    let make = |seed: u64| {
        GeometricMeg::new(
            RandomWaypoint::new(side, speed, speed).expect("valid waypoint parameters"),
            n,
            radius,
            seed,
        )
        .expect("valid network parameters")
    };

    // How disconnected is this network? Count components in one
    // stationary snapshot.
    let mut probe = make(2024);
    probe.warm_up(warm);
    let snap = probe.step().clone();
    let graph = snap.to_graph();
    let (_, components) = dynspread::dg_graph::traversal::connected_components(&graph);
    println!("MANET: n = {n} nodes on a {side:.0} x {side:.0} field, r = {radius}, v = {speed}");
    println!(
        "one stationary snapshot: {} edges, {components} connected components (highly disconnected)",
        snap.edge_count(),
    );

    // Inject the message at node 0 and flood; the observers stream the
    // growth-curve phases and per-node delivery delays.
    let trials = 10;
    let (report, observers) = Simulation::builder()
        .model(make)
        .trials(trials)
        .max_rounds(100_000)
        .warm_up(warm)
        .base_seed(2024)
        .observers(|_trial| (PhaseObserver::new(), DelayObserver::new()))
        .run_observed();

    match report.incomplete() {
        0 => println!("\nmessage reached all {n} nodes in every one of {trials} trials"),
        k => println!("\n{k} of {trials} trials missed nodes within the round cap"),
    }
    println!(
        "mean flooding time {:.1} rounds (p95 {:.1})",
        report.mean(),
        report.p95().unwrap_or(f64::NAN)
    );
    println!(
        "  trivial lower bound sqrt(n)/v = {:.0}, paper bound Õ(sqrt(n)/v) = {:.0}",
        theory::waypoint_sparse_lower_bound(n, speed),
        theory::waypoint_sparse_bound(n, speed)
    );

    // Fold the per-trial streaming observers in trial order.
    let mut spreading = dynspread::dg_stats::Summary::new();
    let mut saturation = dynspread::dg_stats::Summary::new();
    let mut delays: Vec<f64> = Vec::new();
    for (phase, delay) in &observers {
        spreading.merge(phase.spreading());
        saturation.merge(phase.saturation());
        delays.extend_from_slice(delay.delays());
    }
    println!(
        "  half the network informed by round {:.1} on average; saturation tail {:.1} rounds",
        spreading.mean(),
        saturation.mean()
    );

    // Per-node delivery times: percentiles of the streamed delays.
    if let Some(q) = dynspread::dg_stats::Quantiles::try_new(delays) {
        println!(
            "  delivery delay percentiles: p50 = {:.0}, p90 = {:.0}, p99 = {:.0}",
            q.quantile(0.5),
            q.quantile(0.9),
            q.quantile(0.99)
        );
    }
}
