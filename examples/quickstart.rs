//! Quickstart: flood a sparse edge-MEG through the `Simulation` builder
//! and compare against both bounds from Appendix A of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynspread::dg_edge_meg::TwoStateEdgeMeg;
use dynspread::dynagraph::engine::Simulation;
use dynspread::dynagraph::theory;

fn main() {
    // A 256-node network whose links are born with probability p and die
    // with probability q, per round — the basic edge-MEG. With p = 1/n
    // the stationary graph is sparse and disconnected in every snapshot,
    // yet flooding completes fast.
    let n = 256;
    let p = 1.0 / n as f64;
    let q = 0.5;

    let trials = 30;
    let report = Simulation::builder()
        .model(|seed| {
            TwoStateEdgeMeg::stationary(n, p, q, seed).expect("valid edge-MEG parameters")
        })
        .trials(trials)
        .max_rounds(100_000)
        .run();

    println!("edge-MEG: n = {n}, p = {p:.4}, q = {q}");
    println!(
        "stationary edge density alpha = p/(p+q) = {:.5}",
        p / (p + q)
    );
    println!(
        "measured flooding time over {trials} trials: mean {:.1}, p95 {:.1}, max {:.0}",
        report.mean(),
        report.p95().expect("trials completed"),
        report.max().expect("trials completed"),
    );
    println!(
        "mean messages per broadcast: {:.0} (every transmission counted)",
        report.mean_messages()
    );
    println!(
        "CMMPS'10 bound O(log n / log(1+np))          = {:.1}",
        theory::edge_meg_cmmps_bound(n, p)
    );
    println!(
        "paper's general bound (Thm 1 with beta = 1)  = {:.1}",
        theory::edge_meg_general_bound(n, p, q)
    );
    println!("(q >= np here, the regime where the paper proves its bound almost tight)");
}
