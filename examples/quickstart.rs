//! Quickstart: flood a sparse edge-MEG and compare against both bounds
//! from Appendix A of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynspread::dg_edge_meg::TwoStateEdgeMeg;
use dynspread::dynagraph::flooding::{run_trials, TrialConfig};
use dynspread::dynagraph::theory;

fn main() {
    // A 256-node network whose links are born with probability p and die
    // with probability q, per round — the basic edge-MEG. With p = 1/n
    // the stationary graph is sparse and disconnected in every snapshot,
    // yet flooding completes fast.
    let n = 256;
    let p = 1.0 / n as f64;
    let q = 0.5;

    let cfg = TrialConfig {
        trials: 30,
        max_rounds: 100_000,
        ..TrialConfig::default()
    };
    let results = run_trials(
        |seed| TwoStateEdgeMeg::stationary(n, p, q, seed).expect("valid edge-MEG parameters"),
        &cfg,
    );

    println!("edge-MEG: n = {n}, p = {p:.4}, q = {q}");
    println!("stationary edge density alpha = p/(p+q) = {:.5}", p / (p + q));
    println!(
        "measured flooding time over {} trials: mean {:.1}, p95 {:.1}, max {:.0}",
        cfg.trials,
        results.mean(),
        results.p95().unwrap_or(f64::NAN),
        results.max().unwrap_or(f64::NAN),
    );
    println!(
        "CMMPS'10 bound O(log n / log(1+np))          = {:.1}",
        theory::edge_meg_cmmps_bound(n, p)
    );
    println!(
        "paper's general bound (Thm 1 with beta = 1)  = {:.1}",
        theory::edge_meg_general_bound(n, p, q)
    );
    println!("(q >= np here, the regime where the paper proves its bound almost tight)");
}
