//! Sweep a phase curve: flooding time vs the churn rate `q`, as a CSV
//! artifact in a few lines of `Grid` code.
//!
//! The paper's Appendix-A regime: a stationary edge-MEG with `p = 1.5/n`
//! whose links die with probability `q` per round. Sweeping `q` over a
//! log axis traces how flooding slows as the stationary graph thins
//! (`alpha = p/(p+q)` falls) — the adaptive scheduler spends trials
//! where the curve is noisy and stops early where it is tight, and the
//! run is resumable: kill it and rerun, and it continues from
//! `sweep_phase_diagram.json`.
//!
//! Run with:
//! ```text
//! cargo run --release --example sweep_phase_diagram            # full
//! cargo run --release --example sweep_phase_diagram -- --quick # smoke
//! ```
//!
//! Writes `sweep_phase_diagram.csv` (one row per cell, ready to plot)
//! and `sweep_phase_diagram.json` (the resumable artifact) to the
//! current directory — `target/sweep_phase_diagram_quick.{csv,json}` in
//! quick mode (a scratch artifact belongs under `target/`, and the
//! quick grid is a different sweep anyway: resuming across the two
//! would correctly be rejected as a fingerprint mismatch).

use dynspread::dg_edge_meg::SparseTwoStateEdgeMeg;
use dynspread::dynagraph::engine::Simulation;
use dynspread::dynagraph::sweep::{Axis, CiTarget, Grid, Sweep, TrialBudget};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 128 } else { 512 };
    let p = 1.5 / n as f64;
    let steps = if quick { 4 } else { 8 };

    let grid = Grid::new().axis(Axis::log("q", 0.02, 0.64, steps));
    let budget = if quick {
        TrialBudget::adaptive(3, 12, CiTarget::Relative(0.1))
    } else {
        TrialBudget::adaptive(8, 64, CiTarget::Relative(0.05))
    };
    let stem = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/target/sweep_phase_diagram_quick"
        )
    } else {
        "sweep_phase_diagram"
    };

    let report = Sweep::over(grid)
        .budget(budget)
        .base_seed(0x9A5E)
        .checkpoint(format!("{stem}.json"))
        .run(|cell, trial| {
            let q = cell.get("q");
            Simulation::builder()
                .model(move |seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap())
                .max_rounds(200_000)
                .base_seed(trial.cell_seed)
                .run_trial(trial.index)
                .time
                .map(f64::from)
        })
        .expect("sweep artifact io");

    println!("flooding time vs churn on the edge-MEG (n = {n}, p = 1.5/n):");
    println!("      q   alpha  trials  mean F     95% CI");
    for cell in report.cells() {
        let q = report.axis_value(cell, "q");
        let ci = cell.ci().expect("at least two completed trials");
        println!(
            "{q:>7.3}  {:>6.3}  {:>6}  {:>6.1}  ±{:.2}",
            p / (p + q),
            cell.trials(),
            cell.mean().expect("trials completed"),
            ci.half_width()
        );
    }
    println!(
        "\nadaptive budget spent {} trials across {} cells (cap {})",
        report.total_trials(),
        report.cells().len(),
        report.cells().len() * report.budget().max_trials
    );

    report
        .write_csv(format!("{stem}.csv"))
        .expect("sweep artifact io");
    println!("wrote {stem}.csv and {stem}.json");
}
