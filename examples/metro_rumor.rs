//! Rumor spreading among commuters riding shortest paths on a grid —
//! the random-paths model of Corollary 5.
//!
//! Commuters travel between stations of a grid-shaped metro network,
//! always along L-shaped shortest paths, and exchange the rumor when they
//! stand at the same station. Corollary 5 applies because the L-path
//! family is simple, reversible and δ-regular: the rumor reaches everyone
//! within a polylog factor of the network diameter.
//!
//! Run with:
//! ```text
//! cargo run --release --example metro_rumor
//! ```

use dynspread::dg_mobility::{PathFamily, RandomPathModel};
use dynspread::dynagraph::engine::Simulation;
use dynspread::dynagraph::theory;

fn main() {
    let m = 6; // 6x6 station grid
    let commuters = 4 * m * m;
    let laziness = 0.25; // dwell probability per round (also fixes grid parity)

    let (_, family) = PathFamily::grid_l_paths(m, m);
    println!(
        "metro: {m}x{m} stations, {} feasible L-paths, {commuters} commuters",
        family.path_count()
    );
    println!(
        "family checks (Corollary 5 premises): simple = {}, reversible = {}, delta-regularity = {:.2}",
        family.is_simple(),
        family.is_reversible(),
        family.delta_regularity().expect("non-trivial family"),
    );

    let report = Simulation::builder()
        .model(|seed| {
            let (_, family) = PathFamily::grid_l_paths(m, m);
            RandomPathModel::stationary_lazy(family, commuters, laziness, seed)
                .expect("valid model")
        })
        .trials(20)
        .max_rounds(200_000)
        .run();

    let diameter = 2 * (m - 1);
    println!(
        "\nrumor reached all commuters in mean {:.1} rounds (p95 {:.1})",
        report.mean(),
        report.p95().expect("trials completed")
    );
    println!(
        "network diameter D = {diameter}; F/D = {:.2} — within the polylog factor Corollary 5 allows",
        report.mean() / diameter as f64
    );
    println!(
        "Corollary 5 bound (Tmix = D): {:.0}",
        theory::corollary5_bound(
            diameter as f64,
            family.point_count(),
            family.delta_regularity().expect("non-trivial"),
            commuters,
        )
    );
    println!(
        "\nnote: with laziness = 0 the grid's bipartite parity would trap the rumor in one\n\
         phase class forever — see RandomPathModel's docs for the ergodicity caveat."
    );
}
