//! Integration: Fact 2 — in a stationary node-MEG the edge probability
//! does not depend on the chosen pair, across model families.

use dynspread::dg_edge_meg::TwoStateEdgeMeg;
use dynspread::dg_mobility::{GeometricMeg, RandomWaypoint};
use dynspread::dynagraph::EvolvingGraph;

/// Estimates P(edge) for several node pairs over stationary rounds and
/// asserts they agree within tolerance.
fn assert_pair_exchangeable<G: EvolvingGraph>(g: &mut G, rounds: usize, tol: f64) {
    let probes: &[(u32, u32)] = &[(0, 1), (2, 3), (4, 7)];
    let mut hits = vec![0u64; probes.len()];
    for _ in 0..rounds {
        let snap = g.step();
        for (h, &(a, b)) in hits.iter_mut().zip(probes) {
            if snap.has_edge(a, b) {
                *h += 1;
            }
        }
    }
    let probs: Vec<f64> = hits.iter().map(|&h| h as f64 / rounds as f64).collect();
    let mean = probs.iter().sum::<f64>() / probs.len() as f64;
    assert!(mean > 0.0, "no edges observed at all");
    for (i, &p) in probs.iter().enumerate() {
        assert!(
            (p - mean).abs() < tol * mean.max(0.01),
            "pair {i} probability {p} deviates from mean {mean}"
        );
    }
}

#[test]
fn edge_meg_pairs_exchangeable() {
    let mut g = TwoStateEdgeMeg::stationary(16, 0.1, 0.2, 5).unwrap();
    assert_pair_exchangeable(&mut g, 20_000, 0.15);
}

#[test]
fn waypoint_pairs_exchangeable() {
    let mut g = GeometricMeg::new(RandomWaypoint::new(8.0, 1.0, 1.0).unwrap(), 16, 2.0, 7).unwrap();
    g.warm_up(500);
    // Positional samples are autocorrelated; allow a wider tolerance.
    assert_pair_exchangeable(&mut g, 40_000, 0.3);
}
