//! Integration: flooding completes on every model family of the paper,
//! and the run records are internally consistent.

use dynspread::dg_edge_meg::{
    bursty_chain, HiddenChainEdgeMeg, SparseTwoStateEdgeMeg, TwoStateEdgeMeg,
};
use dynspread::dg_mobility::{
    GeometricMeg, GridWalk, ManhattanWaypoint, PathFamily, RandomDirection, RandomPathModel,
    RandomWaypoint,
};
use dynspread::dynagraph::flooding::{flood, FloodRun};
use dynspread::dynagraph::EvolvingGraph;

fn check_run(run: &FloodRun, n: usize) {
    let t = run
        .flooding_time()
        .expect("flooding should complete on this model");
    // Sizes are monotone from 1 to n.
    assert_eq!(run.sizes()[0], 1);
    assert_eq!(*run.sizes().last().unwrap() as usize, n);
    assert!(run.sizes().windows(2).all(|w| w[0] <= w[1]));
    // informed_at is consistent with the curve.
    assert_eq!(run.informed_at()[run.source() as usize], 0);
    assert_eq!(run.informed_round(run.source()), Some(0));
    let mut max_round = 0;
    for &at in run.informed_at() {
        assert_ne!(at, FloodRun::UNINFORMED, "everyone informed");
        max_round = max_round.max(at);
    }
    assert_eq!(max_round, t, "last informed node defines the flooding time");
    // Counting informed_at by round reproduces sizes.
    for (round, &size) in run.sizes().iter().enumerate() {
        let count = run
            .informed_at()
            .iter()
            .filter(|&&a| a <= round as u32)
            .count();
        assert_eq!(count, size as usize, "size mismatch at round {round}");
    }
}

#[test]
fn two_state_edge_meg_floods() {
    let n = 96;
    let mut g = TwoStateEdgeMeg::stationary(n, 2.0 / n as f64, 0.3, 7).unwrap();
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn sparse_edge_meg_floods() {
    let n = 192;
    let mut g = SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, 9).unwrap();
    check_run(&flood(&mut g, 5, 100_000), n);
}

#[test]
fn hidden_chain_edge_meg_floods() {
    let n = 64;
    let (chain, chi) = bursty_chain(0.05, 0.3, 0.2);
    let mut g = HiddenChainEdgeMeg::stationary(n, chain, chi, 3).unwrap();
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn waypoint_manet_floods() {
    let n = 80;
    let side = 10.0;
    let mut g =
        GeometricMeg::new(RandomWaypoint::new(side, 1.0, 2.0).unwrap(), n, 1.5, 11).unwrap();
    g.warm_up(200);
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn manhattan_waypoint_floods() {
    let n = 48;
    let mut g =
        GeometricMeg::new(ManhattanWaypoint::new(8.0, 1.0, 1.0).unwrap(), n, 1.5, 13).unwrap();
    g.warm_up(100);
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn random_direction_floods() {
    let n = 48;
    let mut g =
        GeometricMeg::new(RandomDirection::new(8.0, 1.0, 4, 12).unwrap(), n, 1.5, 15).unwrap();
    g.warm_up(100);
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn grid_walk_floods() {
    let n = 64;
    let mut g = GeometricMeg::new(GridWalk::new(10, 1).unwrap(), n, 1.0, 17).unwrap();
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn random_paths_flood() {
    let n = 60;
    let (_, family) = PathFamily::grid_l_paths(4, 4);
    let mut g = RandomPathModel::stationary_lazy(family, n, 0.25, 19).unwrap();
    check_run(&flood(&mut g, 0, 100_000), n);
}

#[test]
fn random_walk_via_edges_family_floods() {
    let n = 48;
    let h = dynspread::dg_graph::generators::k_augmented_grid(6, 6, 2);
    let family = PathFamily::edges_family(&h).unwrap();
    let mut g = RandomPathModel::stationary_lazy(family, n, 0.25, 21).unwrap();
    check_run(&flood(&mut g, 0, 100_000), n);
}
