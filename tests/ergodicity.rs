//! Integration: ergodicity boundaries of the framework.
//!
//! The paper's bounds require a unique stationary distribution. These
//! tests pin down what happens at the boundary: bipartite parity traps
//! (caught and documented in `dg-mobility`), deterministic periodic
//! processes (non-Markovian but `(M, α, β)`-stationary analysis still
//! applies), and worst-case starts converging to stationarity.

use dynspread::dg_graph::generators;
use dynspread::dg_mobility::{PathFamily, RandomPathModel};
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::{EvolvingGraph, PeriodicEvolvingGraph};

#[test]
fn bipartite_parity_blocks_zero_laziness() {
    let (_, family) = PathFamily::grid_l_paths(4, 4);
    let mut g = RandomPathModel::stationary(family, 32, 3).unwrap();
    let run = flood(&mut g, 0, 5_000);
    assert!(
        run.flooding_time().is_none(),
        "opposite parity classes never meet without laziness"
    );
    // But everyone in the source's parity class is reachable.
    assert!(run.informed_count() > 1);
    assert!(run.informed_count() < 32);
}

#[test]
fn laziness_restores_ergodicity() {
    let (_, family) = PathFamily::grid_l_paths(4, 4);
    let mut g = RandomPathModel::stationary_lazy(family, 32, 0.2, 3).unwrap();
    let run = flood(&mut g, 0, 100_000);
    assert!(run.flooding_time().is_some());
}

#[test]
fn odd_cycle_needs_no_laziness() {
    // Non-bipartite mobility graph: parity is no obstacle.
    let h = generators::cycle(7);
    let family = PathFamily::edges_family(&h).unwrap();
    let mut g = RandomPathModel::stationary(family, 16, 5).unwrap();
    let run = flood(&mut g, 0, 100_000);
    assert!(run.flooding_time().is_some());
}

#[test]
fn periodic_process_floods_deterministically() {
    // A deterministic, periodic (non-Markovian) dynamic graph: three
    // phases that together connect a 6-node ring. The framework makes no
    // Markov assumption; flooding just works, identically every reset.
    let phase = |edges: &[(u32, u32)]| {
        let mut b = dynspread::dg_graph::GraphBuilder::new(6);
        b.add_edges(edges.iter().copied()).unwrap();
        b.build()
    };
    let phases = [
        phase(&[(0, 1), (3, 4)]),
        phase(&[(1, 2), (4, 5)]),
        phase(&[(2, 3), (5, 0)]),
    ];
    let mut g = PeriodicEvolvingGraph::new(&phases).unwrap();
    let a = flood(&mut g, 0, 100);
    g.reset(0);
    let b = flood(&mut g, 0, 100);
    assert_eq!(a, b);
    assert!(a.flooding_time().is_some());
}

#[test]
fn worst_case_start_converges_like_stationary() {
    // Edge-MEG from the empty graph: after Theta(1/(p+q)) warm-up rounds
    // the flooding time matches the stationary start.
    use dynspread::dg_edge_meg::TwoStateEdgeMeg;
    let n = 96;
    let (p, q) = (0.03, 0.1);
    let trials = 10;
    let mean_with = |warm: usize, from_empty: bool| -> f64 {
        let mut total = 0.0;
        for t in 0..trials {
            let seed = 300 + t;
            let mut g = if from_empty {
                TwoStateEdgeMeg::from_empty(n, p, q, seed).unwrap()
            } else {
                TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap()
            };
            g.warm_up(warm);
            total += flood(&mut g, 0, 100_000)
                .flooding_time()
                .expect("completes") as f64;
        }
        total / trials as f64
    };
    let stationary = mean_with(0, false);
    let warmed_empty = mean_with((8.0 / (p + q)) as usize, true);
    assert!(
        (warmed_empty - stationary).abs() <= stationary.max(2.0),
        "warmed-up empty start {warmed_empty} should match stationary {stationary}"
    );
}
