//! Integration: measured flooding times stay below the paper's bounds
//! (with leading constants set to 1 the bounds are loose, so these are
//! strict inequalities with comfortable margins, checked at p95).

use dynspread::dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg, SparseTwoStateEdgeMeg};
use dynspread::dg_mobility::{GeometricMeg, PathFamily, RandomPathModel, RandomWaypoint};
use dynspread::dynagraph::engine::{Simulation, SimulationReport};
use dynspread::dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg, NodeMegAnalysis};
use dynspread::dynagraph::theory;
use dynspread::dynagraph::EvolvingGraph;

/// Ten engine trials with the suite's round cap.
fn measure<G, F>(make: F) -> SimulationReport
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    Simulation::builder()
        .model(make)
        .trials(10)
        .max_rounds(500_000)
        .run()
}

#[test]
fn edge_meg_below_general_bound() {
    let n = 128;
    let p = 1.0 / n as f64;
    let q = 0.6;
    let res = measure(|seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap());
    let bound = theory::edge_meg_general_bound(n, p, q);
    assert_eq!(res.incomplete(), 0);
    assert!(
        res.p95().unwrap() < bound,
        "p95 {} vs bound {bound}",
        res.p95().unwrap()
    );
}

#[test]
fn hidden_chain_below_theorem1_bound() {
    let n = 64;
    let (chain, chi) = bursty_chain(0.02, 0.3, 0.3);
    let probe = HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), 0).unwrap();
    let bound = probe.flooding_bound(0.25).unwrap();
    let res = measure(|seed| {
        HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), seed).unwrap()
    });
    assert_eq!(res.incomplete(), 0);
    assert!(
        res.p95().unwrap() < bound,
        "p95 {} vs bound {bound}",
        res.p95().unwrap()
    );
}

#[test]
fn node_meg_below_theorem3_bound() {
    // Lazy walk on a cycle of points, same-point connection.
    let k = 12;
    let n = 48;
    let mut rows = vec![vec![0.0; k]; k];
    for (i, row) in rows.iter_mut().enumerate() {
        row[i] = 0.5;
        row[(i + 1) % k] += 0.25;
        row[(i + k - 1) % k] += 0.25;
    }
    let chain = dynspread::dg_markov::DenseChain::from_rows(rows).unwrap();
    let conn = MatrixConnection::same_state(k);
    let analysis = NodeMegAnalysis::compute(&chain, &conn).unwrap();
    let tmix = chain.mixing_time(0.25, 1 << 22).unwrap();
    let bound = analysis.theorem3_bound(tmix as f64, n);
    let res = measure(|seed| {
        NodeMeg::new(
            FiniteNodeChain::stationary_start(chain.clone()).unwrap(),
            MatrixConnection::same_state(k),
            n,
            seed,
        )
        .unwrap()
    });
    assert_eq!(res.incomplete(), 0);
    assert!(
        res.p95().unwrap() < bound,
        "p95 {} vs bound {bound}",
        res.p95().unwrap()
    );
}

#[test]
fn sparse_waypoint_between_lower_and_upper() {
    let n = 144;
    let side = 12.0;
    let v = 1.0;
    let res = Simulation::builder()
        .model(|seed| {
            GeometricMeg::new(RandomWaypoint::new(side, v, v).unwrap(), n, 1.0, seed).unwrap()
        })
        .trials(10)
        .max_rounds(200_000)
        .warm_up(100)
        .run();
    assert_eq!(res.incomplete(), 0);
    let mean = res.mean();
    let lower = theory::waypoint_sparse_lower_bound(n, v);
    let upper = theory::waypoint_sparse_bound(n, v);
    // Mean must land between half the trivial lower bound and the upper
    // bound (information must cross the square; the paper's bound caps it).
    assert!(mean > lower / 2.0, "mean {mean} vs lower {lower}");
    assert!(mean < upper, "mean {mean} vs upper {upper}");
}

#[test]
fn l_paths_below_corollary5_bound() {
    let m = 4;
    let (_, family) = PathFamily::grid_l_paths(m, m);
    let delta = family.delta_regularity().unwrap();
    let points = family.point_count();
    let n = 4 * points;
    let d = 2 * (m - 1);
    let bound = theory::corollary5_bound(d as f64, points, delta, n);
    let res = measure(|seed| {
        let (_, family) = PathFamily::grid_l_paths(m, m);
        RandomPathModel::stationary_lazy(family, n, 0.25, seed).unwrap()
    });
    assert_eq!(res.incomplete(), 0);
    assert!(res.p95().unwrap() < bound);
    // And flooding cannot beat the diameter lower bound by much: a node at
    // graph distance D must wait at least D/2 rounds even with co-location
    // shortcuts (paths move one hop per round).
    assert!(res.mean() >= 2.0);
}
