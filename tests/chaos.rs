//! The chaos pin for `dg-fault`: recovered-from-faults ≡ fault-free.
//!
//! Fault tolerance that changes the answer is worse than no fault
//! tolerance — a retried trial that re-rolled its RNG would corrupt a
//! phase diagram silently. So every test here runs the same sweep
//! twice: once clean, once under a deterministic [`dg_fault::FaultPlan`]
//! (`always` rules — `prob 1x N` — so nothing about the test is
//! probabilistic), and asserts the recovered artifact is *byte
//! identical* to the fault-free one, across:
//!
//! * trial panics (`sweep.trial.panic`) absorbed by
//!   [`TrialPanic::Retry`], on the serial and parallel schedulers;
//! * checkpoint write faults (`store.write.err`) retried by the
//!   runner's bounded I/O retry loop;
//! * checkpoint read faults (`store.read.err`) on the resume path;
//! * a kill+resume where *both* halves run under injection.
//!
//! The fault plan is process-global, so the whole suite serialises on
//! one lock and every test disarms before asserting.

use std::path::PathBuf;
use std::sync::Mutex;

use dg_fault::FaultPlan;
use dynspread::dynagraph::sweep::{Axis, Grid, Sweep, SweepReport, TrialBudget, TrialPanic};

/// One lock for the process-global fault plan.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn grid() -> Grid {
    Grid::new()
        .axis(Axis::ints("n", [8, 16, 24]))
        .axis(Axis::linear("q", 0.1, 0.3, 2))
}

/// A deterministic stand-in measurement: any pure function of
/// `(cell, seed)` exercises the scheduler and artifact layers fully.
fn measure(cell: &dynspread::dynagraph::sweep::Cell, seed: u64) -> Option<f64> {
    Some(cell.get("n") * cell.get("q") + (seed % 7) as f64)
}

fn sweep(threads: usize) -> Sweep {
    Sweep::over(grid())
        .budget(TrialBudget::fixed(4))
        .base_seed(0xFA_0175)
        .threads(threads)
}

fn tmp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dg_chaos_{tag}_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn trial_panics_retry_to_fault_free_bytes_on_both_schedulers() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let clean = sweep(1).run(|c, t| measure(c, t.seed)).unwrap().to_json();
    for threads in [1, 4] {
        let faulted = {
            let _plan = dg_fault::scoped(FaultPlan::new(3).always("sweep.trial.panic", 5));
            sweep(threads)
                .on_trial_panic(TrialPanic::Retry { max: 8 })
                .run(|c, t| measure(c, t.seed))
                .unwrap()
        };
        assert_eq!(
            faulted.to_json(),
            clean,
            "{threads}-thread recovery must be invisible in the artifact"
        );
    }
}

#[test]
fn checkpoint_write_faults_retry_to_identical_artifact() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let clean = sweep(1).run(|c, t| measure(c, t.seed)).unwrap();
    let path = tmp_path("write_faults");
    let before = dg_fault::injected_total();
    let faulted = {
        let _plan = dg_fault::scoped(FaultPlan::new(0).always("store.write.err", 3));
        sweep(1)
            .checkpoint(&path)
            .run(|c, t| measure(c, t.seed))
            .unwrap()
    };
    assert!(
        dg_fault::injected_total() - before >= 3,
        "the plan must actually have fired"
    );
    assert_eq!(faulted, clean);
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, clean.to_json(), "checkpoint file survives faults");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_read_faults_retry_on_resume() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let clean = sweep(1).run(|c, t| measure(c, t.seed)).unwrap();
    let path = tmp_path("read_faults");
    // First half: a partial checkpoint, written clean.
    let partial = sweep(1)
        .checkpoint(&path)
        .run_budget(9)
        .run(|c, t| measure(c, t.seed))
        .unwrap();
    assert!(!partial.is_complete());
    // Second half: the resume's preload read hits transient faults.
    let resumed = {
        let _plan = dg_fault::scoped(FaultPlan::new(0).always("store.read.err", 2));
        sweep(1)
            .checkpoint(&path)
            .run(|c, t| measure(c, t.seed))
            .unwrap()
    };
    assert_eq!(resumed, clean);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_and_resume_with_faults_on_both_halves_is_byte_identical() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let clean = sweep(1).run(|c, t| measure(c, t.seed)).unwrap();
    let path = tmp_path("kill_resume");
    // Both halves run under injection: trial panics *and* write faults,
    // with a run budget standing in for the kill.
    {
        let _plan = dg_fault::scoped(
            FaultPlan::new(7)
                .always("sweep.trial.panic", 2)
                .always("store.write.err", 1),
        );
        let partial = sweep(1)
            .checkpoint(&path)
            .run_budget(7)
            .on_trial_panic(TrialPanic::Retry { max: 8 })
            .run(|c, t| measure(c, t.seed))
            .unwrap();
        assert!(!partial.is_complete());
    }
    let resumed = {
        let _plan = dg_fault::scoped(
            FaultPlan::new(8)
                .always("sweep.trial.panic", 2)
                .always("store.read.err", 1)
                .always("store.write.err", 1),
        );
        sweep(4)
            .checkpoint(&path)
            .on_trial_panic(TrialPanic::Retry { max: 8 })
            .run(|c, t| measure(c, t.seed))
            .unwrap()
    };
    assert_eq!(resumed, clean);
    let reloaded = SweepReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(reloaded, clean);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn censor_policy_is_the_documented_bytes_exception() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let clean = sweep(1).run(|c, t| measure(c, t.seed)).unwrap();
    // Censor records a fully-censored row instead of retrying — the one
    // policy that *does* change bytes, by design, and says so.
    let censored = {
        let _plan = dg_fault::scoped(FaultPlan::new(1).always("sweep.trial.panic", 2));
        sweep(1)
            .on_trial_panic(TrialPanic::Censor)
            .run(|c, t| measure(c, t.seed))
            .unwrap()
    };
    assert_ne!(censored, clean);
    assert_eq!(
        censored
            .cells()
            .iter()
            .map(|c| c.incomplete())
            .sum::<usize>(),
        2,
        "exactly the two injected panics are censored"
    );
    // And the artifact still round-trips.
    let json = censored.to_json();
    assert_eq!(SweepReport::from_json(&json).unwrap(), censored);
}

#[test]
fn injection_counters_count_and_disarm_cleanly() {
    let _guard = serial();
    dg_fault::set_plan(None);
    let before = dg_fault::injected_total();
    {
        let _plan = dg_fault::scoped(FaultPlan::new(0).always("sweep.trial.panic", 2));
        let _ = sweep(1)
            .on_trial_panic(TrialPanic::Retry { max: 4 })
            .run(|c, t| measure(c, t.seed))
            .unwrap();
    }
    assert_eq!(dg_fault::injected_total() - before, 2);
    // Guard dropped: nothing fires any more.
    assert!(!dg_fault::should_fail("sweep.trial.panic"));
    let after = dg_fault::injected_total();
    let _ = sweep(1).run(|c, t| measure(c, t.seed)).unwrap();
    assert_eq!(dg_fault::injected_total(), after);
}
