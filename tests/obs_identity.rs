//! The no-perturbation pin for `dg-obs`: metrics-on ≡ metrics-off.
//!
//! Instrumentation reads timings and tallies; it must never touch an RNG
//! stream, a trial record, a sweep artifact byte, or a fingerprint.
//! Every test here runs the same computation twice — recording disabled,
//! then enabled via [`dg_obs::set_enabled`] — and asserts byte identity
//! of the results, across:
//!
//! * the engine's serial, parallel, snapshot, delta, and sharded
//!   executors;
//! * sweep artifacts (`dg-sweep/1` and the multi-metric `dg-sweep/2`
//!   format) and their fingerprints;
//! * the checkpoint/resume path (a "killed" sweep finished by a second
//!   run must match an uninterrupted unobserved one).
//!
//! The compile-time no-op mode (`--no-default-features`) is covered by
//! CI building that configuration; this suite pins the runtime gate.

use std::sync::Mutex;

use dynspread::dg_edge_meg::SparseTwoStateEdgeMeg;
use dynspread::dynagraph::engine::{PushGossip, Simulation, Stepping};
use dynspread::dynagraph::sweep::{
    trial_metrics, Axis, Cell, CiTarget, Grid, Metric, Sweep, SweepReport, Trial, TrialBudget,
};

const BASE_SEED: u64 = 0x0B5;
const MAX_ROUNDS: u32 = 200_000;

fn sparse_meg(seed: u64) -> SparseTwoStateEdgeMeg {
    let n = 96;
    SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, seed).unwrap()
}

/// Runs `f` with metric recording off, then again with it on, and
/// returns both results. Serialised on a static lock: the dg-obs switch
/// is process-global, and these tests share one test binary.
fn off_then_on<T>(f: impl Fn() -> T) -> (T, T) {
    static FLAG: Mutex<()> = Mutex::new(());
    let _guard = FLAG.lock().unwrap_or_else(|p| p.into_inner());
    dg_obs::set_enabled(false);
    let off = f();
    dg_obs::set_enabled(true);
    let on = f();
    dg_obs::set_enabled(false);
    (off, on)
}

#[test]
fn engine_records_are_identical_with_metrics_on() {
    // Delta-path flooding: span timers around step/apply/protocol.
    let (off, on) = off_then_on(|| {
        Simulation::builder()
            .model(sparse_meg)
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .warm_up(8)
            .base_seed(BASE_SEED)
            .stepping(Stepping::Delta)
            .run()
    });
    assert_eq!(off, on);
    assert_eq!(format!("{off:?}"), format!("{on:?}"));

    // Snapshot-path push gossip: the protocol RNG stream must not move.
    let (off, on) = off_then_on(|| {
        Simulation::builder()
            .model(sparse_meg)
            .protocol(PushGossip::new(2))
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .stepping(Stepping::Snapshot)
            .run()
    });
    assert_eq!(off, on);

    // Parallel trials: per-worker scratch reuse counters fire off-thread.
    let (off, on) = off_then_on(|| {
        Simulation::builder()
            .model(sparse_meg)
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .parallel(true)
            .run()
    });
    assert_eq!(off, on);
}

#[test]
fn sharded_flooding_is_identical_with_metrics_on() {
    // The intra-trial sharded executor has the one explicitly guarded
    // hook (per-lane churn counters after the merge barrier).
    let model = |seed: u64| {
        let n = 512;
        SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, seed).unwrap()
    };
    let (off, on) = off_then_on(|| {
        Simulation::builder()
            .model(model)
            .trials(3)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .shards(4)
            .run()
    });
    assert_eq!(off, on);
    assert_eq!(format!("{off:?}"), format!("{on:?}"));
}

fn flood_grid() -> Grid {
    Grid::new()
        .axis(Axis::ints("n", [48, 96]))
        .axis(Axis::log("q", 0.2, 0.6, 2))
}

fn flood_trial(cell: &Cell, trial: Trial) -> Option<f64> {
    let n = cell.usize("n");
    let q = cell.get("q");
    let rec = Simulation::builder()
        .model(move |seed| SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, q, seed).unwrap())
        .max_rounds(MAX_ROUNDS)
        .base_seed(trial.cell_seed)
        .run_trial(trial.index);
    rec.time.map(f64::from)
}

#[test]
fn sweep_artifacts_and_fingerprints_are_identical_with_metrics_on() {
    // dg-sweep/1: scheduler counters, cell gauges, decision histogram.
    let (off, on) = off_then_on(|| {
        Sweep::over(flood_grid())
            .budget(TrialBudget::adaptive(3, 12, CiTarget::Relative(0.4)))
            .base_seed(BASE_SEED)
            .run(flood_trial)
            .unwrap()
    });
    assert_eq!(off.fingerprint(), on.fingerprint());
    assert_eq!(off.to_json(), on.to_json());
    assert_eq!(off.to_csv(), on.to_csv());

    // dg-sweep/2: multi-metric stopping walks the same instrumented path.
    let metrics = vec![Metric::new("rounds"), Metric::observe("coverage")];
    let (off, on) = off_then_on(|| {
        let metrics = metrics.clone();
        Sweep::over(flood_grid().metrics(metrics.clone()))
            .budget(TrialBudget::adaptive(3, 12, CiTarget::Relative(0.4)))
            .base_seed(BASE_SEED)
            .run_metrics(move |cell, trial| {
                let n = cell.usize("n");
                let q = cell.get("q");
                let rec = Simulation::builder()
                    .model(move |seed| {
                        SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, q, seed).unwrap()
                    })
                    .max_rounds(MAX_ROUNDS)
                    .base_seed(trial.cell_seed)
                    .run_trial(trial.index);
                trial_metrics(&rec, n, &metrics)
            })
            .unwrap()
    });
    assert_eq!(off.fingerprint(), on.fingerprint());
    assert_eq!(off.to_json(), on.to_json());
}

#[test]
fn resumed_sweep_with_metrics_matches_uninterrupted_unobserved_run() {
    // Simulate a kill: an instrumented sweep checkpoints a genuine
    // partial artifact, and a second instrumented run resumes it. The
    // final bytes must equal an uninterrupted, *unobserved* run — the
    // cross product of the resume invariant and the no-perturbation one.
    let dir = std::env::temp_dir().join(format!("dg_obs_identity_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.json");

    let sweep = || {
        Sweep::over(flood_grid())
            .budget(TrialBudget::adaptive(3, 12, CiTarget::Relative(0.4)))
            .base_seed(BASE_SEED ^ 0x5EED)
    };
    let (uninterrupted, resumed) = off_then_on(|| {
        if !dg_obs::enabled() {
            return sweep().run(flood_trial).unwrap();
        }
        let _ = std::fs::remove_file(&path);
        let partial = sweep()
            .run_budget(2)
            .checkpoint(&path)
            .run(flood_trial)
            .unwrap();
        assert!(!partial.is_complete());
        sweep().checkpoint(&path).run(flood_trial).unwrap()
    });
    assert!(resumed.is_complete());
    assert_eq!(uninterrupted.fingerprint(), resumed.fingerprint());
    assert_eq!(uninterrupted.to_json(), resumed.to_json());
    // The checkpoint file's final bytes agree too.
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, uninterrupted.to_json());
    let reloaded = SweepReport::from_json(&on_disk).unwrap();
    assert_eq!(reloaded, uninterrupted);
    let _ = std::fs::remove_dir_all(&dir);
}
