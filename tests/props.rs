//! Property-based integration tests: invariants that must hold for every
//! model family, every seed, every parameterization.

use proptest::prelude::*;

use dynspread::dg_edge_meg::TwoStateEdgeMeg;
use dynspread::dg_markov::DenseChain;
use dynspread::dg_mobility::{GeometricMeg, GridWalk, RandomWaypoint};
use dynspread::dynagraph::delta::{assert_replays_rebuild, DynAdjacency, EdgeDelta};
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg};
use dynspread::dynagraph::{EvolvingGraph, RecordedEvolution, Snapshot};

/// Snapshot structural invariants: CSR symmetry, sorted adjacency, degree
/// sums, edge iterator consistency.
fn check_snapshot(snap: &Snapshot) {
    let n = snap.node_count();
    let mut degree_sum = 0usize;
    for u in 0..n as u32 {
        let neigh = snap.neighbors(u);
        degree_sum += neigh.len();
        assert!(neigh.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        for &v in neigh {
            assert!((v as usize) < n);
            assert_ne!(v, u, "no self-loops");
            assert!(snap.has_edge(v, u), "symmetry");
        }
    }
    assert_eq!(degree_sum, 2 * snap.edge_count());
    assert_eq!(snap.edges().count(), snap.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edge_meg_snapshots_well_formed(
        n in 2usize..40,
        p in 0.01f64..0.9,
        q in 0.01f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        for _ in 0..5 {
            check_snapshot(g.step());
        }
    }

    #[test]
    fn waypoint_snapshots_well_formed(
        n in 2usize..32,
        r in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        let model = RandomWaypoint::new(10.0, 0.5, 1.5).unwrap();
        let mut g = GeometricMeg::new(model, n, r, seed).unwrap();
        for _ in 0..5 {
            check_snapshot(g.step());
        }
    }

    #[test]
    fn walk_snapshots_match_disk_graph(
        n in 2usize..24,
        seed in any::<u64>(),
    ) {
        let r = 1.5;
        let mut g = GeometricMeg::new(GridWalk::new(8, 1).unwrap(), n, r, seed).unwrap();
        for _ in 0..3 {
            let snap = g.step().clone();
            let pos = g.positions().to_vec();
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    let within = pos[i as usize].distance(pos[j as usize]) <= r;
                    prop_assert_eq!(snap.has_edge(i, j), within);
                }
            }
        }
    }

    #[test]
    fn flooding_is_monotone_and_capped(
        n in 2usize..48,
        seed in any::<u64>(),
        max_rounds in 1u32..60,
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, 0.1, 0.3, seed).unwrap();
        let run = flood(&mut g, 0, max_rounds);
        // Monotone sizes, bounded by n, at most max_rounds + 1 entries.
        prop_assert!(run.sizes().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(run.sizes().len() <= max_rounds as usize + 1);
        prop_assert!(*run.sizes().last().unwrap() as usize <= n);
        if let Some(t) = run.flooding_time() {
            prop_assert!(t <= max_rounds);
            prop_assert_eq!(*run.sizes().last().unwrap() as usize, n);
        }
    }

    #[test]
    fn same_seed_same_run(seed in any::<u64>()) {
        let n = 32;
        let mut a = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        let mut b = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        prop_assert_eq!(flood(&mut a, 0, 5_000), flood(&mut b, 0, 5_000));
    }

    #[test]
    fn recorded_replay_matches_sources(seed in any::<u64>()) {
        // F(G, s) from the recording never exceeds F(G) = max_s F(G, s).
        let n = 24;
        let mut g = TwoStateEdgeMeg::stationary(n, 0.15, 0.3, seed).unwrap();
        let rec = RecordedEvolution::record(&mut g, 200);
        if let Some(worst) = rec.flooding_time_all_sources() {
            for s in 0..n as u32 {
                let t = rec.flood_from(s).flooding_time().unwrap();
                prop_assert!(t <= worst);
            }
        }
    }

    #[test]
    fn node_meg_deltas_replay_rebuild(
        n in 2usize..20,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        // A lazy cycle chain with same-state connection: node states
        // churn every round, so the pair list changes substantially.
        let mut rows = vec![vec![0.0; k]; k];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 0.5;
            row[(i + 1) % k] += 0.25;
            row[(i + k - 1) % k] += 0.25;
        }
        let chain = DenseChain::from_rows(rows).unwrap();
        let make = || NodeMeg::new(
            FiniteNodeChain::uniform_start(chain.clone()),
            MatrixConnection::same_state(k),
            n,
            seed,
        ).unwrap();
        let mut rebuild = make();
        let mut delta = make();
        assert!(delta.has_native_deltas());
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
        rebuild.reset(seed ^ 9);
        delta.reset(seed ^ 9);
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
    }

    #[test]
    fn recorded_replay_serves_native_deltas(seed in any::<u64>()) {
        // Replaying the recorded deltas through a DynAdjacency must walk
        // exactly the recorded snapshot sequence.
        let n = 16;
        let rounds = 40;
        let mut g = TwoStateEdgeMeg::stationary(n, 0.1, 0.25, seed).unwrap();
        let rec = RecordedEvolution::record(&mut g, rounds);
        let mut adj = DynAdjacency::new(n);
        let mut scratch = EdgeDelta::new();
        for t in 0..rounds {
            let (added, removed) = rec.delta(t);
            scratch.begin_round();
            for &e in removed { scratch.push_removed(e); }
            for &e in added { scratch.push_added(e); }
            adj.apply(&scratch);
            prop_assert_eq!(adj.snapshot(), rec.snapshot(t), "round {}", t);
        }
    }

    #[test]
    fn frontier_flood_matches_rebuild_flood_on_edge_meg(
        n in 4usize..32,
        p in 0.02f64..0.3,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
        max_rounds in 1u32..400,
    ) {
        // The same realization, stepped by two independent instances:
        // one floods on the frontier/delta sweep (native deltas), one on
        // the classic snapshot sweep (hidden behind a wrapper). Runs
        // must be identical, not just the completion time.
        struct HideDeltas<G>(G);
        impl<G: EvolvingGraph> EvolvingGraph for HideDeltas<G> {
            fn node_count(&self) -> usize { self.0.node_count() }
            fn step(&mut self) -> &Snapshot { self.0.step() }
            fn reset(&mut self, seed: u64) { self.0.reset(seed) }
        }
        let mut native = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut hidden = HideDeltas(TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap());
        let a = flood(&mut native, 0, max_rounds);
        let b = flood(&mut hidden, 0, max_rounds);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn thinned_deltas_replay_rebuild(
        n in 4usize..28,
        p in 0.05f64..0.4,
        q in 0.05f64..0.5,
        gamma in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // The §5 thinning wrapper is delta-native: stepping it through
        // step_delta + DynAdjacency must walk exactly the snapshot
        // sequence of the rebuild path, for any inner parameterization.
        let make = || {
            let inner = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
            dynspread::dynagraph::ThinnedEvolvingGraph::new(inner, gamma, seed).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        assert!(delta.has_native_deltas());
        assert_replays_rebuild(&mut rebuild, &mut delta, 20);
        rebuild.reset(seed ^ 5);
        delta.reset(seed ^ 5);
        assert_replays_rebuild(&mut rebuild, &mut delta, 20);
    }

    #[test]
    fn jammed_deltas_replay_rebuild(
        n in 4usize..28,
        p in 0.05f64..0.4,
        q in 0.05f64..0.5,
        victims in 0usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(victims <= n);
        let make = || {
            let inner = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
            dynspread::dynagraph::JammedEvolvingGraph::new(inner, victims, seed).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        assert_replays_rebuild(&mut rebuild, &mut delta, 20);
    }

    #[test]
    fn wrapper_deltas_survive_warm_up_and_plain_steps(
        n in 4usize..20,
        seed in any::<u64>(),
    ) {
        // Baseline breaks (warm-up rebases, plain steps desync) must
        // heal with a full emission that replays the rebuild path.
        let make = || {
            let inner = TwoStateEdgeMeg::stationary(n, 0.2, 0.3, seed).unwrap();
            dynspread::dynagraph::ThinnedEvolvingGraph::new(inner, 0.5, seed).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        rebuild.warm_up(9);
        delta.warm_up(9);
        assert_replays_rebuild(&mut rebuild, &mut delta, 8);
        let _ = rebuild.step();
        let _ = delta.step();
        assert_replays_rebuild(&mut rebuild, &mut delta, 8);
    }

    #[test]
    fn sparse_init_deltas_replay_rebuild_integration(
        n in 8usize..48,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        use dynspread::dg_edge_meg::SparseTwoStateEdgeMeg;
        let p = 1.5 / n as f64;
        let mut rebuild = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, seed).unwrap();
        let mut delta = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, seed).unwrap();
        assert_replays_rebuild(&mut rebuild, &mut delta, 30);
    }

    #[test]
    fn apply_to_sorted_tracks_dyn_adjacency(
        n in 4usize..24,
        p in 0.05f64..0.5,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        // The flat-list delta consumer and the adjacency consumer must
        // agree on every round's edge set.
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut adj = DynAdjacency::new(n);
        let mut flat: Vec<(u32, u32)> = Vec::new();
        let mut d = EdgeDelta::new();
        for _ in 0..15 {
            g.step_delta(&mut d);
            adj.apply(&d);
            d.apply_to_sorted(&mut flat);
            let from_adj: Vec<(u32, u32)> = adj.edges().collect();
            prop_assert_eq!(&flat, &from_adj);
        }
    }

    #[test]
    fn sweep_reports_are_scheduling_invariant(
        base_seed in any::<u64>(),
        target in 0.05f64..2.0,
    ) {
        use dynspread::dynagraph::sweep::{Axis, Cell, CiTarget, Grid, Sweep, Trial, TrialBudget};
        // A deterministic synthetic measurement with per-cell noise and
        // occasional censoring: the adaptive scheduler must produce the
        // same report however its (cell × trial) items are executed —
        // serially, across a thread pool with speculation, or killed
        // mid-run and resumed from the checkpoint artifact.
        let trial_fn = |cell: &Cell, trial: Trial| {
            if trial.seed.is_multiple_of(19) {
                return None; // censored trial
            }
            let noise = cell.get("noise");
            Some(40.0 + noise * ((trial.seed % 1009) as f64 / 1009.0 - 0.5))
        };
        let grid = || Grid::new().axis(Axis::explicit("noise", [0.0, 3.0, 24.0]));
        let budget = TrialBudget::adaptive(3, 20, CiTarget::Absolute(target));

        let serial = Sweep::over(grid())
            .budget(budget)
            .base_seed(base_seed)
            .parallel(false)
            .run(trial_fn)
            .unwrap();
        let parallel = Sweep::over(grid())
            .budget(budget)
            .base_seed(base_seed)
            .threads(4)
            .lookahead(3)
            .run(trial_fn)
            .unwrap();
        prop_assert_eq!(serial.to_json(), parallel.to_json());

        let path = std::env::temp_dir()
            .join(format!("dg_props_sweep_{}_{base_seed}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let partial = Sweep::over(grid())
            .budget(budget)
            .base_seed(base_seed)
            .checkpoint(&path)
            .run_budget(4)
            .run(trial_fn)
            .unwrap();
        prop_assert!(partial.total_trials() <= serial.total_trials());
        let resumed = Sweep::over(grid())
            .budget(budget)
            .base_seed(base_seed)
            .checkpoint(&path)
            .run(trial_fn)
            .unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(resumed.is_complete());
        prop_assert_eq!(resumed.to_json(), serial.to_json());
    }

    #[test]
    fn flooding_time_weakly_decreasing_in_density(seed in 0u64..200) {
        // More edges cannot slow flooding down (on the same seed the
        // processes differ, so compare means over a few seeds instead).
        let n = 48;
        let mean = |p: f64| -> f64 {
            let mut total = 0.0;
            for t in 0..4u64 {
                let mut g = TwoStateEdgeMeg::stationary(n, p, 0.3, seed * 31 + t).unwrap();
                total += flood(&mut g, 0, 100_000).flooding_time().unwrap() as f64;
            }
            total / 4.0
        };
        let sparse = mean(0.02);
        let dense = mean(0.3);
        prop_assert!(dense <= sparse + 2.0, "dense {dense} vs sparse {sparse}");
    }
}
