//! Integration: the paper's contrast with the worst-case literature.
//!
//! §1: "mild bounds on the density and independence parameters ... do not
//! imply any good node/edge expansion of the single snapshot graphs: in
//! every `G_t` there could be a large subset of all nodes that are
//! isolated." The worst-case model of [21] instead assumes T-interval
//! connectivity. Here we verify the separation on data: the sparse
//! stationary edge-MEG fails even 1-interval connectivity in essentially
//! every round, yet floods in a handful of rounds.

use dynspread::dg_edge_meg::SparseTwoStateEdgeMeg;
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::{interval, RecordedEvolution, StaticEvolvingGraph};

#[test]
fn sparse_meg_fails_interval_connectivity_but_floods() {
    // Average stationary degree ~1.7 — far below the ln(n) connectivity
    // threshold, so isolated nodes abound in every snapshot.
    let n = 300;
    let p = 1.5 / n as f64;
    let q = 0.9;
    let mut g = SparseTwoStateEdgeMeg::stationary(n, p, q, 0xC0).unwrap();
    let rec = RecordedEvolution::record(&mut g, 60);
    let frac = interval::connected_snapshot_fraction(&rec);
    assert!(frac < 0.1, "connected fraction = {frac}");
    assert_eq!(interval::max_interval_connectivity(&rec), 0);
    // Yet flooding over the very same realization completes quickly.
    let run = rec.flood_from(0);
    let t = run.flooding_time().expect("floods within the recording");
    assert!(t <= 50, "t = {t}");
}

#[test]
fn dense_meg_recovers_interval_connectivity() {
    // With p large the stationary snapshot is a dense G(n, alpha) graph:
    // individual snapshots are connected w.h.p. (1-interval), though
    // intersections of many rounds eventually thin out.
    let n = 60;
    let mut g = SparseTwoStateEdgeMeg::stationary(n, 0.3, 0.1, 0xC1).unwrap();
    let rec = RecordedEvolution::record(&mut g, 20);
    assert!(interval::connected_snapshot_fraction(&rec) > 0.9);
    assert!(interval::max_interval_connectivity(&rec) >= 1);
}

#[test]
fn static_connected_graph_is_maximally_interval_connected() {
    let mut g = StaticEvolvingGraph::new(dynspread::dg_graph::generators::grid(4, 4));
    let rec = RecordedEvolution::record(&mut g, 12);
    assert_eq!(interval::max_interval_connectivity(&rec), 12);
    // And flooding time equals the source eccentricity.
    assert_eq!(flood(&mut g, 0, 100).flooding_time(), Some(6));
}
