//! Integration: the unified engine's contracts.
//!
//! * determinism — same configuration ⇒ identical reports across runs,
//!   and parallel execution is byte-identical to serial;
//! * protocol equivalence — the engine's `Flooding`, `PushGossip` and
//!   `ParsimoniousFlooding` reproduce the legacy single-run primitives
//!   (`flooding::flood`, `gossip::push_spread`,
//!   `gossip::parsimonious_flood`) trial for trial on both a static
//!   process and a genuinely dynamic edge-MEG;
//! * the deprecated `run_trials` shim reports exactly what the builder
//!   reports;
//! * observers stream what the run records say.

use dynspread::dg_edge_meg::{SparseTwoStateEdgeMeg, TwoStateEdgeMeg};
use dynspread::dg_graph::generators;
use dynspread::dynagraph::engine::{
    DelayObserver, MeanGrowthObserver, Observer, ParsimoniousFlooding, PushGossip, RoundCtx,
    Simulation, Stepping,
};
use dynspread::dynagraph::flooding::{flood, flood_multi, TrialConfig};
use dynspread::dynagraph::gossip::{parsimonious_flood, push_spread};
use dynspread::dynagraph::{mix_seed, EvolvingGraph, StaticEvolvingGraph};

const BASE_SEED: u64 = 0xE16;
const TRIALS: usize = 12;
const MAX_ROUNDS: u32 = 200_000;

fn sparse_meg(seed: u64) -> SparseTwoStateEdgeMeg {
    let n = 96;
    SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, seed).unwrap()
}

fn static_grid(_seed: u64) -> StaticEvolvingGraph {
    StaticEvolvingGraph::new(generators::grid(6, 6))
}

#[test]
fn parallel_and_serial_reports_are_byte_identical() {
    let run = |parallel: bool| {
        Simulation::builder()
            .model(sparse_meg)
            .protocol(PushGossip::new(2))
            .trials(TRIALS)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .parallel(parallel)
            .run()
    };
    let par = run(true);
    let ser = run(false);
    assert_eq!(par, ser);
    // Byte-identical summaries, not just semantically equal ones.
    assert_eq!(format!("{par:?}"), format!("{ser:?}"));
}

#[test]
fn same_configuration_is_reproducible_across_runs() {
    let run = || {
        Simulation::builder()
            .model(sparse_meg)
            .trials(TRIALS)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.incomplete(), 0);
    // A different base seed must actually change the outcome.
    let c = Simulation::builder()
        .model(sparse_meg)
        .trials(TRIALS)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED + 1)
        .run();
    assert_ne!(a.times(), c.times());
}

#[test]
fn engine_flooding_matches_legacy_flood_on_static_graph() {
    let report = Simulation::builder()
        .model(static_grid)
        .trials(4)
        .max_rounds(100)
        .base_seed(BASE_SEED)
        .run();
    for rec in report.records() {
        let mut g = static_grid(rec.seed);
        let run = flood(&mut g, 0, 100);
        assert_eq!(rec.time, run.flooding_time());
        assert_eq!(rec.informed, run.informed_count());
    }
}

#[test]
fn engine_flooding_matches_legacy_flood_on_edge_meg() {
    let warm = 16;
    let report = Simulation::builder()
        .model(sparse_meg)
        .trials(TRIALS)
        .max_rounds(MAX_ROUNDS)
        .warm_up(warm)
        .base_seed(BASE_SEED)
        .run();
    for (trial, rec) in report.records().iter().enumerate() {
        assert_eq!(rec.seed, mix_seed(BASE_SEED, trial as u64));
        let mut g = sparse_meg(rec.seed);
        g.warm_up(warm);
        let run = flood(&mut g, 0, MAX_ROUNDS);
        assert_eq!(rec.time, run.flooding_time(), "trial {trial}");
        assert_eq!(rec.informed, run.informed_count(), "trial {trial}");
    }
}

#[test]
fn engine_push_gossip_matches_legacy_push_spread() {
    for fanout in [1usize, 3] {
        let report = Simulation::builder()
            .model(sparse_meg)
            .protocol(PushGossip::new(fanout))
            .trials(TRIALS)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .run();
        for rec in report.records() {
            let mut g = sparse_meg(rec.seed);
            let run = push_spread(&mut g, 0, fanout, MAX_ROUNDS, rec.seed);
            assert_eq!(rec.time, run.flooding_time(), "fanout {fanout}");
            assert_eq!(rec.informed, run.informed_count(), "fanout {fanout}");
        }
    }
}

#[test]
fn push_gossip_reservoir_is_byte_equivalent_on_high_degree_models() {
    // The fanout-aware virtual shuffle replaces an O(degree) buffer
    // copy; its RNG stream must be byte-identical, which shows as
    // identical records (messages included) across the legacy primitive
    // and both stepping paths. Degrees far above the fanout — dense
    // edge-MEG and a complete static graph — exercise the sampling
    // branch every round.
    let dense_meg = |seed: u64| TwoStateEdgeMeg::stationary(48, 0.6, 0.1, seed).unwrap();
    for fanout in [1usize, 2, 5] {
        let run = |stepping| {
            Simulation::builder()
                .model(dense_meg)
                .protocol(PushGossip::new(fanout))
                .trials(8)
                .max_rounds(MAX_ROUNDS)
                .base_seed(BASE_SEED ^ 0x9055)
                .stepping(stepping)
                .run()
        };
        let snapshot = run(Stepping::Snapshot);
        assert_eq!(snapshot, run(Stepping::Delta), "fanout {fanout}");
        for rec in snapshot.records() {
            let mut g = dense_meg(rec.seed);
            let legacy = push_spread(&mut g, 0, fanout, MAX_ROUNDS, rec.seed);
            assert_eq!(rec.time, legacy.flooding_time(), "fanout {fanout}");
        }
    }
    let complete = |_seed: u64| StaticEvolvingGraph::new(generators::complete(64));
    let report = Simulation::builder()
        .model(complete)
        .protocol(PushGossip::new(2))
        .trials(6)
        .max_rounds(10_000)
        .base_seed(BASE_SEED)
        .run();
    assert_eq!(report.incomplete(), 0);
    for rec in report.records() {
        let mut g = complete(rec.seed);
        let legacy = push_spread(&mut g, 0, 2, 10_000, rec.seed);
        assert_eq!(rec.time, legacy.flooding_time());
    }
}

#[test]
fn run_trial_hook_reproduces_batch_trials_on_both_paths() {
    // The sweep scheduler drives trials one at a time through
    // `run_trial`; each must equal the corresponding record of a batch
    // run, on the delta path (native model) and the snapshot path alike.
    for stepping in [Stepping::Snapshot, Stepping::Delta] {
        let builder = move || {
            Simulation::builder()
                .model(sparse_meg)
                .protocol(PushGossip::new(2))
                .max_rounds(MAX_ROUNDS)
                .base_seed(BASE_SEED ^ 0x7A1)
                .stepping(stepping)
        };
        let batch = builder().trials(5).run();
        for (i, rec) in batch.records().iter().enumerate() {
            assert_eq!(&builder().run_trial(i), rec, "{stepping:?} trial {i}");
        }
    }
}

#[test]
fn model_reuse_and_scratch_are_byte_identical_to_fresh_construction() {
    // The zero-rebuild pipeline: per-worker model reuse (reset between
    // trials) + reusable TrialScratch must reproduce the fresh-
    // allocation path record for record, on both stepping paths, for a
    // model with lazily grown internal state (the sparse-init edge-MEG's
    // occupancy map) and under warm-up.
    let lazy_meg = |seed: u64| {
        let n = 96;
        SparseTwoStateEdgeMeg::stationary_sparse_init(n, 1.5 / n as f64, 0.4, seed).unwrap()
    };
    for stepping in [Stepping::Snapshot, Stepping::Delta] {
        let builder = move || {
            Simulation::builder()
                .model(lazy_meg)
                .trials(8)
                .warm_up(12)
                .max_rounds(MAX_ROUNDS)
                .base_seed(BASE_SEED ^ 0x2E5)
                .stepping(stepping)
        };
        let reused = builder().run();
        let fresh = builder().reuse_models(false).run();
        assert_eq!(reused, fresh, "{stepping:?}");

        // The opt-in handle external schedulers use: one model slot +
        // one scratch across all trials equals the stateless hook.
        let mut model = None;
        let mut scratch = dynspread::dynagraph::engine::TrialScratch::new();
        let b = builder();
        for (i, rec) in fresh.records().iter().enumerate() {
            assert_eq!(
                &b.run_trial_with(i, &mut model, &mut scratch),
                rec,
                "{stepping:?} trial {i}"
            );
        }
    }
}

#[test]
fn engine_parsimonious_matches_legacy_parsimonious_flood() {
    for ttl in [1u32, 3] {
        let report = Simulation::builder()
            .model(sparse_meg)
            .protocol(ParsimoniousFlooding::new(ttl))
            .trials(TRIALS)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .run();
        for rec in report.records() {
            let mut g = sparse_meg(rec.seed);
            let run = parsimonious_flood(&mut g, 0, ttl, MAX_ROUNDS);
            assert_eq!(rec.time, run.flooding_time(), "ttl {ttl}");
            assert_eq!(rec.informed, run.informed_count(), "ttl {ttl}");
            // The engine stops as soon as the relays expire, like the
            // legacy loop: executed rounds track the recorded curve.
            assert_eq!(rec.rounds as usize + 1, run.sizes().len(), "ttl {ttl}");
        }
    }
}

#[test]
fn engine_multi_source_matches_legacy_flood_multi() {
    let sources = [0u32, 17, 42];
    let report = Simulation::builder()
        .model(sparse_meg)
        .sources(sources)
        .trials(6)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED)
        .run();
    for rec in report.records() {
        let mut g = sparse_meg(rec.seed);
        let run = flood_multi(&mut g, &sources, MAX_ROUNDS);
        assert_eq!(rec.time, run.flooding_time());
    }
}

#[test]
fn delta_path_matches_snapshot_path_for_flooding() {
    // The sparse edge-MEG is delta-native, so Stepping::Auto takes the
    // delta path; Stepping::Snapshot is the classic full-rebuild
    // pipeline. Records — times, informed counts, executed rounds, and
    // message tallies — must be byte-identical, serial and parallel.
    for parallel in [false, true] {
        let run = |stepping: Stepping| {
            Simulation::builder()
                .model(sparse_meg)
                .trials(TRIALS)
                .max_rounds(MAX_ROUNDS)
                .warm_up(8)
                .base_seed(BASE_SEED)
                .parallel(parallel)
                .stepping(stepping)
                .run()
        };
        let snapshot = run(Stepping::Snapshot);
        let delta = run(Stepping::Delta);
        let auto = run(Stepping::Auto);
        assert_eq!(snapshot, delta, "parallel = {parallel}");
        assert_eq!(snapshot, auto, "parallel = {parallel}");
        assert_eq!(snapshot.incomplete(), 0);
    }
}

#[test]
fn delta_path_matches_snapshot_path_for_push_gossip() {
    for parallel in [false, true] {
        let run = |stepping: Stepping| {
            Simulation::builder()
                .model(sparse_meg)
                .protocol(PushGossip::new(2))
                .trials(TRIALS)
                .max_rounds(MAX_ROUNDS)
                .base_seed(BASE_SEED)
                .parallel(parallel)
                .stepping(stepping)
                .run()
        };
        assert_eq!(
            run(Stepping::Snapshot),
            run(Stepping::Delta),
            "parallel = {parallel}"
        );
    }
}

#[test]
fn delta_path_matches_snapshot_path_for_parsimonious_flooding() {
    for parallel in [false, true] {
        for ttl in [1u32, 4] {
            let run = |stepping: Stepping| {
                Simulation::builder()
                    .model(sparse_meg)
                    .protocol(ParsimoniousFlooding::new(ttl))
                    .trials(TRIALS)
                    .max_rounds(MAX_ROUNDS)
                    .base_seed(BASE_SEED)
                    .parallel(parallel)
                    .stepping(stepping)
                    .run()
            };
            assert_eq!(
                run(Stepping::Snapshot),
                run(Stepping::Delta),
                "parallel = {parallel}, ttl = {ttl}"
            );
        }
    }
}

#[test]
fn delta_path_multi_source_matches_snapshot_path() {
    let sources = [0u32, 17, 42];
    let run = |stepping: Stepping| {
        Simulation::builder()
            .model(sparse_meg)
            .sources(sources)
            .trials(6)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .run()
    };
    assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
}

#[test]
fn delta_path_feeds_observers_that_need_snapshots() {
    // An observer that reads E_t forces per-round materialization on the
    // delta path; the edge sets it sees must match the snapshot path's.
    #[derive(Default)]
    struct EdgeTally {
        edges_per_round: Vec<usize>,
    }
    impl Observer for EdgeTally {
        fn needs_snapshots(&self) -> bool {
            true
        }
        fn on_round(&mut self, ctx: &RoundCtx<'_>) {
            self.edges_per_round
                .push(ctx.snapshot.expect("requested snapshots").edge_count());
        }
    }
    let run = |stepping: Stepping| {
        Simulation::builder()
            .model(sparse_meg)
            .trials(4)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .observers(|_| EdgeTally::default())
            .run_observed()
    };
    let (rep_s, obs_s) = run(Stepping::Snapshot);
    let (rep_d, obs_d) = run(Stepping::Delta);
    assert_eq!(rep_s, rep_d);
    for (s, d) in obs_s.iter().zip(&obs_d) {
        assert!(!s.edges_per_round.is_empty());
        assert_eq!(s.edges_per_round, d.edges_per_round);
    }
    // Observers that don't ask see None on the delta path (and pay no
    // materialization): the default needs_snapshots is false.
    let (_, light) = Simulation::builder()
        .model(sparse_meg)
        .trials(1)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED)
        .stepping(Stepping::Delta)
        .observers(|_| {
            struct SeesNone(bool);
            impl Observer for SeesNone {
                fn on_round(&mut self, ctx: &RoundCtx<'_>) {
                    self.0 |= ctx.snapshot.is_some();
                }
            }
            SeesNone(false)
        })
        .run_observed();
    assert!(!light[0].0);
}

#[test]
#[allow(deprecated)]
fn deprecated_run_trials_shim_matches_builder() {
    let cfg = TrialConfig {
        trials: TRIALS,
        max_rounds: MAX_ROUNDS,
        source: 3,
        base_seed: BASE_SEED,
        warm_up: 8,
    };
    let legacy = dynspread::dynagraph::flooding::run_trials(sparse_meg, &cfg);
    let report = Simulation::builder()
        .model(sparse_meg)
        .trials(cfg.trials)
        .max_rounds(cfg.max_rounds)
        .warm_up(cfg.warm_up)
        .base_seed(cfg.base_seed)
        .source(cfg.source)
        .run();
    assert_eq!(legacy.times(), report.times().as_slice());
    assert_eq!(legacy.incomplete(), report.incomplete());
}

#[test]
fn observers_stream_what_records_say() {
    let (report, observers) = Simulation::builder()
        .model(sparse_meg)
        .trials(6)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED)
        .observers(|_trial| (MeanGrowthObserver::new(), DelayObserver::new()))
        .run_observed();
    assert_eq!(observers.len(), 6);
    assert_eq!(report.incomplete(), 0);
    let n = report.node_count();
    for ((growth, delays), rec) in observers.iter().zip(report.records()) {
        // One delay per informed node, capped by the completion round.
        assert_eq!(delays.delays().len(), rec.informed);
        assert_eq!(delays.uninformed(), 0);
        let q = delays.quantiles().unwrap();
        assert_eq!(q.max(), rec.time.unwrap() as f64);
        // The per-trial growth curve starts at |I_0| = 1 and ends at n.
        let curve = growth.mean_sizes();
        assert_eq!(curve.first().copied(), Some(1.0));
        assert_eq!(curve.last().copied(), Some(n as f64));
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn delta_path_matches_snapshot_path_for_section5_wrappers() {
    // The §5 wrappers are delta-native now: thinning and jamming over a
    // churning edge-MEG must report byte-identical records on both
    // stepping paths, for every built-in protocol.
    use dynspread::dynagraph::{JammedEvolvingGraph, ThinnedEvolvingGraph};
    let thinned = |seed: u64| {
        let n = 96usize;
        let inner = TwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, seed).unwrap();
        ThinnedEvolvingGraph::new(inner, 0.6, seed).unwrap()
    };
    let jammed = |seed: u64| {
        let n = 96usize;
        let inner = TwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.4, seed).unwrap();
        JammedEvolvingGraph::new(inner, 4, seed).unwrap()
    };
    assert!(thinned(0).has_native_deltas());
    assert!(jammed(0).has_native_deltas());

    let flood_run = |stepping: Stepping| {
        Simulation::builder()
            .model(thinned)
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .warm_up(8)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .run()
    };
    assert_eq!(flood_run(Stepping::Snapshot), flood_run(Stepping::Delta));
    assert_eq!(flood_run(Stepping::Snapshot), flood_run(Stepping::Auto));

    let push_run = |stepping: Stepping| {
        Simulation::builder()
            .model(jammed)
            .protocol(PushGossip::new(2))
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .run()
    };
    assert_eq!(push_run(Stepping::Snapshot), push_run(Stepping::Delta));

    let pars_run = |stepping: Stepping| {
        Simulation::builder()
            .model(thinned)
            .protocol(ParsimoniousFlooding::new(3))
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .run()
    };
    assert_eq!(pars_run(Stepping::Snapshot), pars_run(Stepping::Delta));
}

#[test]
fn sparse_init_model_matches_across_stepping_paths() {
    // The O(#on) initializer drives the same event machinery; snapshot
    // and delta pipelines must agree on its realizations too.
    let model = |seed: u64| {
        let n = 128usize;
        SparseTwoStateEdgeMeg::stationary_sparse_init(n, 1.5 / n as f64, 0.3, seed).unwrap()
    };
    let run = |stepping: Stepping| {
        Simulation::builder()
            .model(model)
            .trials(8)
            .max_rounds(MAX_ROUNDS)
            .warm_up(6)
            .base_seed(BASE_SEED)
            .stepping(stepping)
            .run()
    };
    let snapshot = run(Stepping::Snapshot);
    assert_eq!(snapshot, run(Stepping::Delta));
    assert_eq!(snapshot, run(Stepping::Auto));
    assert_eq!(snapshot.incomplete(), 0);
}

#[test]
fn churn_observer_agrees_with_materialized_edge_counts() {
    // |E_t| reconstructed from the delta stream (baseline + cumulative
    // added − removed) must equal the edge counts a snapshot-reading
    // observer sees on the same trials.
    use dynspread::dynagraph::engine::ChurnObserver;
    #[derive(Default)]
    struct EdgeCountAndChurn {
        churn: ChurnObserver,
        edges: Vec<usize>,
        reconstructed: Vec<i64>,
        running: i64,
    }
    impl Observer for EdgeCountAndChurn {
        fn needs_snapshots(&self) -> bool {
            true
        }
        fn on_trial_start(&mut self, trial: usize, n: usize, sources: &[u32]) {
            self.churn.on_trial_start(trial, n, sources);
        }
        fn on_round(&mut self, ctx: &RoundCtx<'_>) {
            self.churn.on_round(ctx);
            self.edges.push(ctx.snapshot.expect("asked").edge_count());
            let d = ctx.delta.expect("delta path");
            self.running += d.added().len() as i64 - d.removed().len() as i64;
            self.reconstructed.push(self.running);
        }
    }
    let (_, observers) = Simulation::builder()
        .model(sparse_meg)
        .trials(3)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED)
        .stepping(Stepping::Delta)
        .observers(|_| EdgeCountAndChurn::default())
        .run_observed();
    for obs in &observers {
        assert!(!obs.edges.is_empty());
        let as_i64: Vec<i64> = obs.edges.iter().map(|&e| e as i64).collect();
        assert_eq!(obs.reconstructed, as_i64);
        assert_eq!(obs.churn.rounds_without_delta(), 0);
        // The baseline emission lands in initial_edges (= |E_0|), never
        // in the churn summary.
        assert_eq!(obs.churn.initial_edges().mean(), obs.edges[0] as f64);
        let max_later_churn = obs.edges.windows(2).map(|w| w[0] + w[1]).max().unwrap_or(0) as f64;
        assert!(obs.churn.churn().max() <= max_later_churn);
    }
    // On the snapshot path the same observer sees no deltas at all.
    let (_, observers) = Simulation::builder()
        .model(sparse_meg)
        .trials(1)
        .max_rounds(MAX_ROUNDS)
        .base_seed(BASE_SEED)
        .stepping(Stepping::Snapshot)
        .observers(|_| ChurnObserver::new())
        .run_observed();
    assert!(observers[0].rounds_without_delta() > 0);
    assert_eq!(observers[0].churn().len(), 0);
}

#[test]
fn observer_factories_see_trial_indices_in_order() {
    let (_, observers) = Simulation::builder()
        .model(static_grid)
        .trials(8)
        .max_rounds(100)
        .observers(|trial| {
            struct TrialTag(usize);
            impl dynspread::dynagraph::engine::Observer for TrialTag {}
            TrialTag(trial)
        })
        .run_observed();
    let tags: Vec<usize> = observers.iter().map(|o| o.0).collect();
    assert_eq!(tags, (0..8).collect::<Vec<_>>());
}
