//! Integration: the §5 reduction — randomized transmission = flooding on
//! a virtual (thinned) dynamic graph; degenerate parameters recover plain
//! flooding exactly.

use dynspread::dg_edge_meg::TwoStateEdgeMeg;
use dynspread::dynagraph::flooding::flood;
use dynspread::dynagraph::gossip::push_spread;
use dynspread::dynagraph::ThinnedEvolvingGraph;

#[test]
fn gamma_one_is_plain_flooding() {
    // Same inner seed => identical edge realizations => identical runs.
    let n = 64;
    for seed in [1u64, 2, 3] {
        let mut plain = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        let inner = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        let mut virt = ThinnedEvolvingGraph::new(inner, 1.0, seed).unwrap();
        let a = flood(&mut plain, 0, 10_000);
        let b = flood(&mut virt, 0, 10_000);
        assert_eq!(a, b, "gamma = 1 must reproduce flooding exactly");
    }
}

#[test]
fn huge_fanout_is_plain_flooding() {
    let n = 64;
    for seed in [4u64, 5] {
        let mut a_g = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        let mut b_g = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
        let a = flood(&mut a_g, 0, 10_000);
        let b = push_spread(&mut b_g, 0, n, 10_000, seed);
        assert_eq!(a.flooding_time(), b.flooding_time());
        assert_eq!(a.sizes(), b.sizes());
    }
}

#[test]
fn thinning_slows_by_bounded_factor() {
    // The virtual graph is a MEG with alpha' = gamma * alpha, so Theorem 1
    // still applies: flooding slows but by a bounded factor.
    let n = 96;
    let trials = 8;
    let mean = |gamma: f64| -> f64 {
        let mut total = 0.0;
        for t in 0..trials {
            let seed = 100 + t;
            let inner = TwoStateEdgeMeg::stationary(n, 0.08, 0.2, seed).unwrap();
            let mut g = ThinnedEvolvingGraph::new(inner, gamma, seed).unwrap();
            total += flood(&mut g, 0, 100_000)
                .flooding_time()
                .expect("completes") as f64;
        }
        total / trials as f64
    };
    let full = mean(1.0);
    let half = mean(0.5);
    let quarter = mean(0.25);
    assert!(half >= full * 0.9, "thinning cannot speed flooding up");
    assert!(quarter >= half * 0.9);
    assert!(
        quarter <= full * 8.0,
        "quartering edge use should cost a bounded factor: {quarter} vs {full}"
    );
}

#[test]
fn push_fanout_monotone() {
    let n = 96;
    let trials = 8;
    let mean = |k: usize| -> f64 {
        let mut total = 0.0;
        for t in 0..trials {
            let seed = 200 + t;
            let mut g = TwoStateEdgeMeg::stationary(n, 0.08, 0.2, seed).unwrap();
            total += push_spread(&mut g, 0, k, 100_000, seed)
                .flooding_time()
                .expect("completes") as f64;
        }
        total / trials as f64
    };
    let k1 = mean(1);
    let k4 = mean(4);
    let kall = mean(n);
    assert!(
        k1 >= k4 * 0.95,
        "larger fanout is no slower: k1 {k1} k4 {k4}"
    );
    assert!(k4 >= kall * 0.95, "k4 {k4} kall {kall}");
}
