//! Named metric registry and the hand-rolled Prometheus text renderer.

use crate::{Counter, Gauge, Histogram, HistogramSnapshot};

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::Mutex;

#[cfg(feature = "enabled")]
#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics.
///
/// Metric names follow Prometheus conventions: `snake_case` base name with
/// an optional `{key="value"}` label suffix (build one with
/// [`crate::label`] / [`crate::label2`]). Registering the same name twice
/// returns a handle onto the same underlying metric; registering it as a
/// different *type* panics.
///
/// Most code uses the process-wide default, [`Registry::global`].
#[derive(Debug, Default)]
pub struct Registry {
    #[cfg(feature = "enabled")]
    slots: Mutex<BTreeMap<String, Slot>>,
}

static GLOBAL: Registry = Registry::new();

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide default registry.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        #[cfg(feature = "enabled")]
        {
            let mut slots = self.slots.lock().unwrap();
            match slots
                .entry(name.to_string())
                .or_insert_with(|| Slot::Counter(Counter::new()))
            {
                Slot::Counter(c) => c.clone(),
                _ => panic!("metric `{name}` already registered as a non-counter"),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Counter::new()
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        #[cfg(feature = "enabled")]
        {
            let mut slots = self.slots.lock().unwrap();
            match slots
                .entry(name.to_string())
                .or_insert_with(|| Slot::Gauge(Gauge::new()))
            {
                Slot::Gauge(g) => g.clone(),
                _ => panic!("metric `{name}` already registered as a non-gauge"),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Gauge::new()
        }
    }

    /// Get or create the histogram `name` with the given upper bounds.
    /// If `name` already exists its original bounds are kept.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        #[cfg(feature = "enabled")]
        {
            let mut slots = self.slots.lock().unwrap();
            match slots
                .entry(name.to_string())
                .or_insert_with(|| Slot::Histogram(Histogram::with_bounds(bounds)))
            {
                Slot::Histogram(h) => h.clone(),
                _ => panic!("metric `{name}` already registered as a non-histogram"),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, bounds);
            Histogram::default()
        }
    }

    /// All registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        #[cfg(feature = "enabled")]
        {
            self.slots.lock().unwrap().keys().cloned().collect()
        }
        #[cfg(not(feature = "enabled"))]
        Vec::new()
    }

    /// Current value of the counter `name`, if registered as a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        #[cfg(feature = "enabled")]
        {
            match self.slots.lock().unwrap().get(name)? {
                Slot::Counter(c) => Some(c.get()),
                _ => None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            None
        }
    }

    /// Current value of the gauge `name`, if registered as a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        #[cfg(feature = "enabled")]
        {
            match self.slots.lock().unwrap().get(name)? {
                Slot::Gauge(g) => Some(g.get()),
                _ => None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            None
        }
    }

    /// Snapshot of the histogram `name`, if registered as a histogram.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        #[cfg(feature = "enabled")]
        {
            match self.slots.lock().unwrap().get(name)? {
                Slot::Histogram(h) => h.snapshot(),
                _ => None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            None
        }
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (`text/plain; version=0.0.4`): one `# TYPE` line per metric
    /// family, histograms expanded into cumulative `_bucket{le=…}` series
    /// plus `_sum` and `_count`. Output is sorted by name, so identical
    /// state renders identical bytes.
    pub fn render_prometheus(&self) -> String {
        #[cfg(feature = "enabled")]
        {
            // Group label variants under their family so each family gets a
            // single TYPE line with all its samples together.
            let mut families: BTreeMap<String, Vec<(String, Slot)>> = BTreeMap::new();
            {
                let slots = self.slots.lock().unwrap();
                for (name, slot) in slots.iter() {
                    let (family, labels) = match name.find('{') {
                        Some(i) => (
                            name[..i].to_string(),
                            name[i + 1..name.len() - 1].to_string(),
                        ),
                        None => (name.clone(), String::new()),
                    };
                    families
                        .entry(family)
                        .or_default()
                        .push((labels, slot.clone()));
                }
            }
            let mut out = String::new();
            for (family, variants) in &families {
                let kind = match &variants[0].1 {
                    Slot::Counter(_) => "counter",
                    Slot::Gauge(_) => "gauge",
                    Slot::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                for (labels, slot) in variants {
                    match slot {
                        Slot::Counter(c) => {
                            out.push_str(&sample(family, labels, &c.get().to_string()));
                        }
                        Slot::Gauge(g) => {
                            out.push_str(&sample(family, labels, &g.get().to_string()));
                        }
                        Slot::Histogram(h) => {
                            let Some(snap) = h.snapshot() else { continue };
                            let mut cum = 0u64;
                            for (i, c) in snap.counts.iter().enumerate() {
                                cum += c;
                                let le = match snap.bounds.get(i) {
                                    Some(b) => format!("{b}"),
                                    None => "+Inf".to_string(),
                                };
                                let with_le = if labels.is_empty() {
                                    format!("le=\"{le}\"")
                                } else {
                                    format!("{labels},le=\"{le}\"")
                                };
                                out.push_str(&sample(
                                    &format!("{family}_bucket"),
                                    &with_le,
                                    &cum.to_string(),
                                ));
                            }
                            out.push_str(&sample(
                                &format!("{family}_sum"),
                                labels,
                                &format!("{}", snap.sum),
                            ));
                            out.push_str(&sample(
                                &format!("{family}_count"),
                                labels,
                                &snap.count.to_string(),
                            ));
                        }
                    }
                }
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        String::new()
    }
}

#[cfg(feature = "enabled")]
fn sample(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn on<R>(f: impl FnOnce() -> R) -> R {
        // Tests in this binary share the process-wide flag; serialise them.
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        on(|| {
            let reg = Registry::new();
            let c = reg.counter("c_total");
            c.inc();
            c.add(4);
            assert_eq!(reg.counter_value("c_total"), Some(5));
            let g = reg.gauge("g");
            g.set(7);
            g.add(-2);
            assert_eq!(reg.gauge_value("g"), Some(5));
            assert_eq!(reg.counter_value("g"), None);
        });
    }

    #[test]
    fn disabled_recording_is_invisible() {
        on(|| {
            let reg = Registry::new();
            let c = reg.counter("quiet_total");
            crate::set_enabled(false);
            c.add(100);
            crate::set_enabled(true);
            assert_eq!(reg.counter_value("quiet_total"), Some(0));
        });
    }

    #[test]
    fn histogram_buckets_and_render() {
        on(|| {
            let reg = Registry::new();
            let h = reg.histogram("lat_seconds", &[0.1, 1.0]);
            h.observe(0.05);
            h.observe(0.5);
            h.observe(5.0);
            let snap = reg.histogram_snapshot("lat_seconds").unwrap();
            assert_eq!(snap.counts, vec![1, 1, 1]);
            assert_eq!(snap.count, 3);
            assert!((snap.sum - 5.55).abs() < 1e-9);
            let text = reg.render_prometheus();
            assert!(text.contains("# TYPE lat_seconds histogram"));
            assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
            assert!(text.contains("lat_seconds_bucket{le=\"1\"} 2"));
            assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
            assert!(text.contains("lat_seconds_count 3"));
        });
    }

    #[test]
    fn labeled_variants_share_one_type_line() {
        on(|| {
            let reg = Registry::new();
            reg.counter(&crate::label("req_total", "path", "/a")).inc();
            reg.counter(&crate::label("req_total", "path", "/b")).inc();
            let text = reg.render_prometheus();
            assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
            assert!(text.contains("req_total{path=\"/a\"} 1"));
            assert!(text.contains("req_total{path=\"/b\"} 1"));
        });
    }

    #[test]
    fn span_timer_records() {
        on(|| {
            let reg = Registry::new();
            let h = reg.histogram("span_seconds", &crate::exponential_bounds(1e-9, 10.0, 12));
            {
                let _s = h.start();
            }
            assert_eq!(reg.histogram_snapshot("span_seconds").unwrap().count, 1);
        });
    }

    #[test]
    fn label_escaping() {
        assert_eq!(crate::label("m", "k", "a\"b\\c"), "m{k=\"a\\\"b\\\\c\"}");
    }
}
