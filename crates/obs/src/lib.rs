//! `dg-obs` — zero-perturbation observability for the dynspread workspace.
//!
//! The crate provides three things, all dependency-free:
//!
//! 1. **Metric primitives** — [`Counter`], [`Gauge`], [`Histogram`] and the
//!    span timer returned by [`Histogram::start`], registered by name in a
//!    [`Registry`] (usually the process-wide [`Registry::global`]).
//! 2. **A Prometheus text renderer** — [`Registry::render_prometheus`]
//!    produces the classic `text/plain; version=0.0.4` exposition by hand.
//! 3. **A leveled logger** — the [`log`] module plus the [`dg_error!`],
//!    [`dg_info!`] and [`dg_debug!`] macros, gated at runtime by `DG_LOG`.
//!
//! # Zero perturbation
//!
//! Instrumentation must never change simulation results, so recording is
//! double-gated:
//!
//! * **Compile time** — without the `enabled` cargo feature (on by default)
//!   every primitive is a zero-sized type whose methods are empty `#[inline]`
//!   bodies: hot loops compile exactly as if the instrumentation were not
//!   there.
//! * **Run time** — even when compiled in, recording is off until the
//!   process opts in via the `DG_OBS=1` environment variable or
//!   [`set_enabled`]`(true)`. A disabled recording site costs one relaxed
//!   atomic load.
//!
//! Neither gate may affect results: metrics only *read* timings and tallies,
//! never RNG streams or trial data. The workspace-level `obs_identity` test
//! suite pins byte identity of engine records, sweep artifacts, and
//! fingerprints with metrics on vs off.
//!
//! # Example
//!
//! ```
//! dg_obs::set_enabled(true);
//! let reg = dg_obs::Registry::global();
//! let trials = reg.counter("demo_trials_total");
//! trials.inc();
//! let hist = reg.histogram("demo_step_seconds", &dg_obs::exponential_bounds(1e-6, 10.0, 6));
//! {
//!     let _span = hist.start(); // records elapsed seconds on drop
//! }
//! assert_eq!(reg.counter_value("demo_trials_total"), Some(1));
//! let text = reg.render_prometheus();
//! assert!(text.contains("# TYPE demo_trials_total counter"));
//! dg_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Span};
pub use registry::Registry;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(feature = "enabled")]
static RUNTIME: AtomicU8 = AtomicU8::new(UNSET);
#[cfg(feature = "enabled")]
const UNSET: u8 = 0;
#[cfg(feature = "enabled")]
const OFF: u8 = 1;
#[cfg(feature = "enabled")]
const ON: u8 = 2;

/// Whether metric recording is currently active.
///
/// Lazily initialised from the `DG_OBS` environment variable (`1`, `true`,
/// `on`, or `yes` — case-insensitive — switch it on); overridable at any time
/// with [`set_enabled`]. Always `false` when the `enabled` cargo feature is
/// off. The fast path is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        match RUNTIME.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => init_from_env(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Switch metric recording on or off for the whole process.
///
/// Overrides whatever `DG_OBS` said. A no-op when the `enabled` cargo
/// feature is off.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "enabled")]
    RUNTIME.store(if on { ON } else { OFF }, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

#[cfg(feature = "enabled")]
#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DG_OBS")
        .map(|v| {
            let v = v.to_ascii_lowercase();
            v == "1" || v == "true" || v == "on" || v == "yes"
        })
        .unwrap_or(false);
    // Racing initialisers agree because they read the same environment.
    RUNTIME.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Exponentially spaced histogram upper bounds: `start`, `start*factor`, …
/// (`count` bounds). The canonical choice for latency histograms.
///
/// Panics if `start <= 0`, `factor <= 1`, or `count == 0`.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && factor > 1.0 && count > 0,
        "bad exponential bucket spec"
    );
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// Equal-width histogram upper bounds over `[lo, hi)`, delegating the bucket
/// math to [`dg_stats::Histogram`] so obs histograms and analysis histograms
/// agree on edges.
///
/// Panics under the same conditions as [`dg_stats::Histogram::new`].
pub fn linear_bounds(lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    dg_stats::Histogram::new(lo, hi, bins).bucket_edges()
}

/// Render `name{key="value"}`, escaping the label value for Prometheus
/// exposition (`\` → `\\`, `"` → `\"`, newline → `\n`).
pub fn label(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{}\"}}", escape_label(value))
}

/// Render `name{k1="v1",k2="v2"}` with escaped label values.
pub fn label2(name: &str, k1: &str, v1: &str, k2: &str, v2: &str) -> String {
    format!(
        "{name}{{{k1}=\"{}\",{k2}=\"{}\"}}",
        escape_label(v1),
        escape_label(v2)
    )
}

pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}
