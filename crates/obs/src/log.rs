//! Leveled stderr logger, gated at runtime by the `DG_LOG` environment
//! variable (`error` | `info` | `debug`; default `error`).
//!
//! Use the [`crate::dg_error!`], [`crate::dg_info!`] and [`crate::dg_debug!`]
//! macros; they skip formatting entirely when the level is filtered out.
//! Unlike the metric primitives, the logger is always compiled — it has no
//! hot-loop call sites.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the operator must see. Always printed.
    Error = 0,
    /// Lifecycle events and periodic progress (sweep heartbeats).
    Info = 1,
    /// Per-request / per-event detail.
    Debug = 2,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

const UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active log level, lazily read from `DG_LOG` (default [`Level::Error`]).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Info,
        2 => Level::Debug,
        _ => init_from_env(),
    }
}

/// Override the log level for the whole process (wins over `DG_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    l <= level()
}

#[cold]
fn init_from_env() -> Level {
    let l = match std::env::var("DG_LOG")
        .as_deref()
        .map(str::to_ascii_lowercase)
    {
        Ok(v) if v == "debug" => Level::Debug,
        Ok(v) if v == "info" => Level::Info,
        _ => Level::Error,
    };
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Emit one line to stderr: `[<uptime>s LEVEL] message`. Prefer the macros,
/// which check [`enabled`] before formatting.
pub fn write(l: Level, args: std::fmt::Arguments<'_>) {
    static START: OnceLock<Instant> = OnceLock::new();
    let uptime = START.get_or_init(Instant::now).elapsed();
    eprintln!("[{:10.3}s {:5}] {args}", uptime.as_secs_f64(), l.as_str());
}

/// Log at [`Level::Error`] (always emitted).
#[macro_export]
macro_rules! dg_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, ::core::format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`] (emitted when `DG_LOG=info` or `debug`).
#[macro_export]
macro_rules! dg_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, ::core::format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`] (emitted when `DG_LOG=debug`).
#[macro_export]
macro_rules! dg_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_override() {
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        set_level(Level::Error);
    }
}
