//! Metric primitives: counters, gauges, histograms, span timers.
//!
//! All primitives are cheap `Clone` handles onto shared atomic state; clones
//! observe the same underlying metric. Every recording method first checks
//! [`crate::enabled`] so a disabled process pays one relaxed load per site.
//! Without the `enabled` cargo feature the types are zero-sized and every
//! method body is empty.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (normally obtained via
    /// [`crate::Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when the feature is off).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

/// A signed gauge: a value that can go up and down (queue depths, in-flight
/// work, utilisation permille).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge (normally obtained via
    /// [`crate::Registry::gauge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.cell.fetch_add(d, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = d;
    }

    /// Current value (0 when the feature is off).
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing finite upper bounds; an implicit `+Inf` overflow
    /// bucket follows the last bound.
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow slot.
    buckets: Vec<AtomicU64>,
    /// Total observation count.
    count: AtomicU64,
    /// Sum of observed values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A histogram over explicit upper-bound buckets, Prometheus style.
///
/// Observations are `f64` (seconds for latency histograms). Construct bucket
/// bounds with [`crate::exponential_bounds`] or [`crate::linear_bounds`].
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<HistogramInner>>,
}

impl Histogram {
    /// A fresh, unregistered histogram with the given upper bounds (normally
    /// obtained via [`crate::Registry::histogram`]).
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        #[cfg(feature = "enabled")]
        {
            let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
            Self {
                inner: Some(Arc::new(HistogramInner {
                    bounds: bounds.to_vec(),
                    buckets,
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                })),
            }
        }
        #[cfg(not(feature = "enabled"))]
        Self {}
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            if let Some(inner) = &self.inner {
                let idx = inner
                    .bounds
                    .iter()
                    .position(|&b| v <= b)
                    .unwrap_or(inner.bounds.len());
                inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
                inner.count.fetch_add(1, Ordering::Relaxed);
                let mut cur = inner.sum_bits.load(Ordering::Relaxed);
                loop {
                    let next = (f64::from_bits(cur) + v).to_bits();
                    match inner.sum_bits.compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => cur = seen,
                    }
                }
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Record a [`std::time::Duration`] in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Start a span timer: the returned guard records the elapsed wall time
    /// (seconds) into this histogram when dropped. When recording is
    /// disabled the guard is inert and no clock is read.
    #[inline]
    pub fn start(&self) -> Span<'_> {
        #[cfg(feature = "enabled")]
        {
            Span {
                start: if crate::enabled() {
                    Some(std::time::Instant::now())
                } else {
                    None
                },
                hist: self,
            }
        }
        #[cfg(not(feature = "enabled"))]
        Span {
            _marker: std::marker::PhantomData,
        }
    }

    /// A consistent-enough snapshot of the current state, or `None` when the
    /// feature is off.
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        #[cfg(feature = "enabled")]
        {
            let inner = self.inner.as_ref()?;
            Some(HistogramSnapshot {
                bounds: inner.bounds.clone(),
                counts: inner
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
                count: inner.count.load(Ordering::Relaxed),
            })
        }
        #[cfg(not(feature = "enabled"))]
        None
    }
}

/// Span-timer guard returned by [`Histogram::start`]; records elapsed
/// seconds on drop.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    #[cfg(feature = "enabled")]
    start: Option<std::time::Instant>,
    #[cfg(feature = "enabled")]
    hist: &'a Histogram,
    #[cfg(not(feature = "enabled"))]
    _marker: std::marker::PhantomData<&'a Histogram>,
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(t0) = self.start {
            self.hist.observe(t0.elapsed().as_secs_f64());
        }
    }
}

/// Point-in-time view of a [`Histogram`], as returned by
/// [`Histogram::snapshot`] and [`crate::Registry::histogram_snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds; `counts` has one extra overflow slot.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts, overflow last.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or `None` with no observations.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}
