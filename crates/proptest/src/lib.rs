//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so property tests
//! run against this shim: the [`proptest!`] macro executes each property
//! for `ProptestConfig::cases` deterministic pseudo-random cases (seeded
//! from the test's module path and name, so failures are reproducible),
//! with [`prop_assert!`]/[`prop_assert_eq!`] reporting failures and
//! [`prop_assume!`] rejecting cases. Shrinking is not implemented — a
//! failing case reports its case number instead of a minimized input.
//!
//! Supported strategies: numeric ranges (`a..b`, `a..=b`), [`any`] for
//! primitive types, tuples of strategies, [`collection::vec`], and
//! [`Strategy::prop_map`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case, derived from the test's fully
    /// qualified name and the (1-based) attempt index.
    pub fn for_case(test_name: &str, attempt: u32) -> Self {
        // FNV-1a over the name, mixed with the attempt counter.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng {
            state: h ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, span)`.
    pub fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; try another input.
    Reject(String),
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy over the whole domain of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Length specification for [`vec()`](vec()): an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.bounded(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate's `prop` module.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with a formatted message) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Rejects the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut executed: u32 = 0;
            let mut attempt: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while executed < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "too many rejected cases ({} executed of {})",
                    executed,
                    config.cases
                );
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} falsified (case #{attempt}): {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("x", 1);
        let mut b = crate::TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..17, x in -2.0f64..2.0, s in any::<u64>()) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            let _ = s;
        }

        #[test]
        fn vec_lengths_respected(
            v in prop::collection::vec(0u32..10, 2..6),
            w in prop::collection::vec(0.0f64..1.0, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_and_tuples(pair in (0u32..5, 0u32..5), big in (0usize..10).prop_map(|x| x * 100)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert_eq!(big % 100, 0);
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }
}
