//! Determinism property pins for multi-metric sweeps.
//!
//! The crate's design invariant — artifacts are a pure function of
//! (grid, budget, seed, trial function), independent of scheduling —
//! is unit-tested per component; these tests pin it end-to-end for the
//! `dg-sweep/2` row-based path (serial vs. parallel vs. kill+resume),
//! plus a frozen historical fingerprint so the identity hash can never
//! silently drift.

use dg_sweep::{Axis, Cell, CiTarget, Grid, Metric, Sweep, SweepSpec, Trial, TrialBudget};

/// A multi-metric trial with per-metric censoring and enough noise to
/// exercise the per-metric stopping rule: `rounds` censors on every
/// fifth seed, `messages` always completes, `coverage` is observe-only.
fn metric_trial(cell: &Cell, trial: Trial) -> Vec<Option<f64>> {
    let n = cell.usize("n") as f64;
    let rounds =
        (!trial.seed.is_multiple_of(5)).then(|| cell.get("q") * n + (trial.seed % 16) as f64);
    vec![
        rounds,
        Some(n * (4.0 + (trial.seed % 8) as f64)),
        Some(if rounds.is_some() { 1.0 } else { 0.5 }),
    ]
}

fn metric_grid() -> Grid {
    Grid::new()
        .axis(Axis::ints("n", [16, 32]))
        .axis(Axis::log("q", 0.1, 0.4, 2))
        .metrics([
            Metric::new("rounds"),
            Metric::target("messages", CiTarget::Relative(0.2)),
            Metric::observe("coverage"),
        ])
}

fn configured(s: Sweep) -> Sweep {
    s.budget(TrialBudget::adaptive(3, 24, CiTarget::Relative(0.1)))
        .base_seed(0xBEEF)
}

#[test]
fn multi_metric_artifacts_identical_across_schedules() {
    let run = |parallel: bool, threads: usize, lookahead: usize| {
        configured(Sweep::over(metric_grid()))
            .parallel(parallel)
            .threads(threads)
            .lookahead(lookahead)
            .run_metrics(metric_trial)
            .unwrap()
            .to_json()
    };
    let serial = run(false, 1, 0);
    assert_eq!(serial, run(true, 4, 2));
    assert_eq!(serial, run(true, 7, 5));
}

#[test]
fn multi_metric_kill_resume_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("dg_sweep_props_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume_v2.json");
    let _ = std::fs::remove_file(&path);

    let full = configured(Sweep::over(metric_grid()))
        .run_metrics(metric_trial)
        .unwrap();

    let partial = configured(Sweep::over(metric_grid()))
        .checkpoint(&path)
        .run_budget(5)
        // One worker: a pool's in-flight speculative trials could outrun
        // the budget and complete the sweep anyway.
        .threads(1)
        .run_metrics(metric_trial)
        .unwrap();
    assert!(!partial.is_complete());

    let resumed = configured(Sweep::over(metric_grid()))
        .checkpoint(&path)
        .run_metrics(metric_trial)
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.to_json(), full.to_json());
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(on_disk, full.to_json());
    let _ = std::fs::remove_file(&path);
}

/// The historical `dg-sweep/1` fingerprint of the PR-4-era golden
/// configuration, frozen: axes `n = [16, 32]`, `q = log(0.1..0.4, 2)`,
/// seed `0xD15E_A5E1`, adaptive 3–9 trials at 5% relative CI. The same
/// value is stored inside `tests/golden/v1_pr4_capless.json`; this pin
/// fails even if the golden corpus is regenerated, so the hash function
/// itself cannot drift.
#[test]
fn historical_v1_fingerprint_is_frozen() {
    let spec = SweepSpec::new(
        vec![Axis::ints("n", [16, 32]), Axis::log("q", 0.1, 0.4, 2)],
        0xD15E_A5E1,
        TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)),
    );
    assert_eq!(spec.fingerprint(), 1000020295819098674);
    // And the v2 variant of the same spec hashes differently (the
    // format tag enters the hash), with its own frozen value.
    let v2 = spec.with_metrics(vec![
        Metric::new("rounds"),
        Metric::target("messages", CiTarget::Relative(0.2)),
        Metric::observe("coverage"),
    ]);
    assert_eq!(v2.fingerprint(), 901243192380759427);
}

/// The stopping rule spends trials per metric: a sweep whose `messages`
/// metric is noisy runs longer than the same sweep observing it, and
/// both shapes stay deterministic.
#[test]
fn gating_metrics_spend_trials_where_their_noise_is() {
    let noisy_messages = |cell: &Cell, trial: Trial| {
        vec![
            Some(10.0),
            Some(cell.get("q") * ((trial.seed % 1024) as f64)),
        ]
    };
    let run = |metrics: [Metric; 2]| {
        Sweep::over(
            Grid::new()
                .axis(Axis::ints("n", [16]))
                .axis(Axis::explicit("q", [1.0]))
                .metrics(metrics),
        )
        .budget(TrialBudget::adaptive(3, 64, CiTarget::Relative(0.05)))
        .base_seed(11)
        .run_metrics(noisy_messages)
        .unwrap()
    };
    let gated = run([Metric::new("rounds"), Metric::new("messages")]);
    let observed = run([Metric::new("rounds"), Metric::observe("messages")]);
    assert!(
        gated.total_trials() > observed.total_trials(),
        "gating on the noisy metric must cost trials: {} vs {}",
        gated.total_trials(),
        observed.total_trials()
    );
}
