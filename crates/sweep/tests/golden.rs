//! Golden-artifact corpus: real `dg-sweep/1` artifacts checked in as
//! bytes, pinned through `from_json -> to_json` under the current
//! parser.
//!
//! The roundtrip suite constructs its shapes in code, so a writer and
//! parser that drift *together* would still pass it. These artifacts
//! are stored files — the exact bytes an older writer produced — so any
//! regression in either half of the pair fails against history, not
//! against itself.

use dg_sweep::{Axis, CiTarget, Grid, Metric, Sweep, SweepReport, TrialBudget};

/// A PR-4-era trial function: deterministic value with every fifth seed
/// censored, so artifacts carry mixed `null`/numeric samples.
fn censoring_trial(cell: &dg_sweep::Cell, trial: dg_sweep::Trial) -> Option<f64> {
    (!trial.seed.is_multiple_of(5))
        .then(|| cell.get("q") * cell.usize("n") as f64 + (trial.seed % 16) as f64)
}

fn capless_grid() -> Grid {
    Grid::new()
        .axis(Axis::ints("n", [16, 32]))
        .axis(Axis::log("q", 0.1, 0.4, 2))
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The multi-metric golden: the same censoring grid recording
/// `(rounds, messages, coverage)` rows with per-metric censoring —
/// `rounds` censors on every fifth seed while the cost metrics always
/// complete, the shape a round-capped flooding sweep produces.
fn multi_metric_sweep() -> Sweep {
    Sweep::over(capless_grid().metrics([
        Metric::new("rounds"),
        Metric::target("messages", CiTarget::Relative(0.2)),
        Metric::observe("coverage"),
    ]))
    .budget(TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)))
    .base_seed(0xD15E_A5E1)
}

fn multi_metric_trial(cell: &dg_sweep::Cell, trial: dg_sweep::Trial) -> Vec<Option<f64>> {
    let rounds = censoring_trial(cell, trial);
    let n = cell.usize("n") as f64;
    vec![
        rounds,
        Some(n * (4.0 + (trial.seed % 8) as f64)),
        Some(if rounds.is_some() { 1.0 } else { 0.5 }),
    ]
}

/// Regenerates the corpus. The v1 artifacts must be byte-stable under
/// every future writer (the `dg-sweep/1` serialization path is frozen),
/// so running this is only ever a no-op diff; it exists to document
/// exactly how each stored file was produced.
#[test]
#[ignore = "writes tests/golden/; run manually to (re)produce the corpus"]
fn regenerate_corpus() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).unwrap();

    // PR-4 era: cap-less adaptive sweep, mixed censoring.
    let pr4 = Sweep::over(capless_grid())
        .budget(TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)))
        .base_seed(0xD15E_A5E1)
        .run(censoring_trial)
        .unwrap();
    assert!(pr4.is_complete());
    std::fs::write(dir.join("v1_pr4_capless.json"), pr4.to_json()).unwrap();

    // PR-5 era: the same sweep with a per-cell round-cap table.
    let pr5 = Sweep::over(
        Grid::new()
            .axis(Axis::ints("n", [16, 32]))
            .axis(Axis::log("q", 0.1, 0.4, 2))
            .max_rounds(|cell| 100 * cell.usize("n") as u32),
    )
    .budget(TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)))
    .base_seed(0xD15E_A5E1)
    .run(censoring_trial)
    .unwrap();
    assert!(pr5.to_json().contains("max_rounds"));
    std::fs::write(dir.join("v1_pr5_capped.json"), pr5.to_json()).unwrap();

    // A partial checkpoint: what a killed sweep leaves on disk
    // (undecided cells, short prefixes, `"complete": false`).
    let path = dir.join("v1_checkpoint_partial.json");
    let _ = std::fs::remove_file(&path);
    let partial = Sweep::over(capless_grid())
        .budget(TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)))
        .base_seed(7)
        .checkpoint(&path)
        .run_budget(4)
        .threads(1)
        .run(censoring_trial)
        .unwrap();
    assert!(!partial.is_complete());

    // Derived-statistic overflow: finite samples whose variance is not
    // representable, so `ci_lo`/`ci_hi`/`ci_half_width` serialize null.
    let null_stat = Sweep::over(Grid::new().axis(Axis::explicit("v", [1.0])))
        .budget(TrialBudget::fixed(2))
        .base_seed(3)
        .run(|_, trial| {
            Some(if trial.index == 0 {
                f64::MAX
            } else {
                -f64::MAX
            })
        })
        .unwrap();
    assert!(null_stat.to_json().contains("\"ci_lo\": null"));
    std::fs::write(dir.join("v1_null_stats.json"), null_stat.to_json()).unwrap();

    // The dg-sweep/2 golden: multi-metric rows, per-metric censoring,
    // one observe-only metric.
    let v2 = multi_metric_sweep()
        .run_metrics(multi_metric_trial)
        .unwrap();
    assert!(v2.is_complete());
    std::fs::write(dir.join("v2_multi_metric.json"), v2.to_json()).unwrap();

    for (name, report) in [
        ("v1_pr4_capless", &pr4),
        ("v1_pr5_capped", &pr5),
        ("v1_checkpoint_partial", &partial),
        ("v1_null_stats", &null_stat),
        ("v2_multi_metric", &v2),
    ] {
        println!("{name}: fingerprint {}", report.fingerprint());
    }
}

fn assert_golden_round_trip(bytes: &str, fingerprint: u64, label: &str) -> SweepReport {
    let report = SweepReport::from_json(bytes)
        .unwrap_or_else(|e| panic!("{label}: stored artifact no longer parses: {e}"));
    assert_eq!(
        report.to_json(),
        bytes,
        "{label}: stored bytes no longer round-trip"
    );
    assert_eq!(
        report.fingerprint(),
        fingerprint,
        "{label}: fingerprint drifted"
    );
    report
}

#[test]
fn v1_pr4_capless_golden_round_trips() {
    let r = assert_golden_round_trip(
        include_str!("golden/v1_pr4_capless.json"),
        1000020295819098674,
        "v1_pr4_capless",
    );
    assert!(r.is_complete());
    assert!(r.max_rounds_table().is_none());
    assert!(r.metrics().is_none());
    // Mixed censoring survived storage: some cell has both kinds.
    assert!(r
        .cells()
        .iter()
        .any(|c| c.incomplete() > 0 && !c.completed().is_empty()));
}

#[test]
fn v1_pr5_capped_golden_round_trips() {
    let r = assert_golden_round_trip(
        include_str!("golden/v1_pr5_capped.json"),
        16096976085812470864,
        "v1_pr5_capped",
    );
    assert!(r.is_complete());
    assert_eq!(r.max_rounds_table(), Some(&[1600u32, 1600, 3200, 3200][..]));
}

#[test]
fn v1_checkpoint_partial_golden_round_trips() {
    let r = assert_golden_round_trip(
        include_str!("golden/v1_checkpoint_partial.json"),
        566198165428159826,
        "v1_checkpoint_partial",
    );
    assert!(!r.is_complete());
    // Undecided cells with short prefixes are exactly what a killed
    // sweep leaves behind.
    assert!(r.cells().iter().any(|c| !c.decided));
}

#[test]
fn v1_null_stats_golden_round_trips() {
    let r = assert_golden_round_trip(
        include_str!("golden/v1_null_stats.json"),
        2062839477256032766,
        "v1_null_stats",
    );
    // Finite samples whose derived CI overflowed: the in-memory CI is
    // non-finite and serializes as null (`opt_stat`), never a panic.
    let cell = r.cell(0);
    assert_eq!(cell.incomplete(), 0);
    assert!(cell.ci().is_none_or(|ci| !ci.half_width().is_finite()));
    assert!(r.to_json().contains("\"ci_lo\": null"));
}

#[test]
fn v2_multi_metric_golden_round_trips() {
    let r = assert_golden_round_trip(
        include_str!("golden/v2_multi_metric.json"),
        901243192380759427,
        "v2_multi_metric",
    );
    assert!(r.is_complete());
    let metrics = r.metrics().expect("v2 artifact declares metrics");
    assert_eq!(metrics.len(), 3);
    assert_eq!(r.metric_index("messages"), Some(1));
    // Per-metric censoring survived storage: rounds censored in some
    // trial whose messages slot completed.
    assert!(r.cells().iter().any(|c| {
        c.samples
            .iter()
            .any(|row| row[0].is_none() && row[1].is_some())
    }));
}

/// Regenerating the corpus from current code must be a no-op: the
/// golden bytes on disk are exactly what the current writer produces
/// for the documented configurations. For the v1 artifacts this *is*
/// the `dg-sweep/1` freeze test — any writer drift fails here against
/// history even if reader and writer drifted together.
#[test]
fn regeneration_is_a_no_op() {
    let pr4 = Sweep::over(capless_grid())
        .budget(TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)))
        .base_seed(0xD15E_A5E1)
        .run(censoring_trial)
        .unwrap();
    assert_eq!(
        pr4.to_json(),
        include_str!("golden/v1_pr4_capless.json"),
        "current writer no longer reproduces the stored v1 bytes"
    );
    let v2 = multi_metric_sweep()
        .run_metrics(multi_metric_trial)
        .unwrap();
    assert_eq!(
        v2.to_json(),
        include_str!("golden/v2_multi_metric.json"),
        "current writer no longer reproduces the stored v2 bytes"
    );
}
