//! Byte-identity pins for every artifact *shape* that has ever been
//! written, not just the current one.
//!
//! The artifact format (`dg-sweep/1`) has grown by accretion: PR 4
//! artifacts carry no `max_rounds` key, PR 5 artifacts optionally do,
//! checkpoints ship undecided cells with partial sample prefixes, and
//! censored regimes ship all-`null` samples. Resume correctness rests on
//! `to_json -> from_json -> to_json` being the identity for *all* of
//! them — a shape that reloads into a different value would silently
//! rewrite history on the next checkpoint. Every report here is pinned
//! through a double round-trip.

use dg_sweep::{Axis, CiTarget, Sweep, SweepReport, SweepSpec, TrialBudget};

/// Builds a report with the given configuration by actually running a
/// sweep (the only public constructor), then rewrites its cells to the
/// wanted shape via the artifact itself.
fn report_from_parts(
    axes: Vec<Axis>,
    base_seed: u64,
    budget: TrialBudget,
    max_rounds: Option<Vec<u32>>,
    cells: Vec<(Vec<Option<f64>>, bool)>,
) -> SweepReport {
    let mut spec = SweepSpec::new(axes, base_seed, budget);
    if let Some(caps) = max_rounds {
        spec = spec.with_max_rounds(caps);
    }
    let skeleton = spec.sweep().run(|_, _| Some(1.0)).unwrap();
    // Splice the wanted per-cell shapes into the serialized skeleton:
    // cells are the only part of an artifact that is not configuration.
    let json = skeleton.to_json();
    let (head, _) = json.split_once("\"cells\":").expect("cells key");
    let mut out = String::from(head);
    out.push_str("\"cells\": [\n");
    let grid_cells = spec.grid().cells();
    assert_eq!(grid_cells.len(), cells.len(), "one shape per cell");
    for (i, ((samples, decided), cell)) in cells.iter().zip(&grid_cells).enumerate() {
        let values = cell
            .values()
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let samples_txt = samples
            .iter()
            .map(|s| match s {
                Some(v) => format!("{v}"),
                None => "null".to_string(),
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"id\": {i}, \"values\": [{values}], \"decided\": {decided}, \"trials\": 0, \"incomplete\": 0, \"mean\": null, \"p95\": null, \"max\": null, \"ci_lo\": null, \"ci_hi\": null, \"ci_half_width\": null, \"samples\": [{samples_txt}]}}{}\n",
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    // The derived statistics above are deliberately wrong (all null):
    // from_json must ignore them and recompute from the samples.
    SweepReport::from_json(&out).expect("spliced artifact parses")
}

/// The pin: serialize, reload, serialize again — bytes and value agree;
/// and a second lap stays fixed.
fn assert_round_trip(report: &SweepReport, label: &str) {
    let json1 = report.to_json();
    let reloaded = SweepReport::from_json(&json1)
        .unwrap_or_else(|e| panic!("{label}: reload failed: {e}\n{json1}"));
    assert_eq!(&reloaded, report, "{label}: value changed on reload");
    let json2 = reloaded.to_json();
    assert_eq!(json1, json2, "{label}: bytes changed on reload");
    let again = SweepReport::from_json(&json2).unwrap();
    assert_eq!(again.to_json(), json2, "{label}: not a fixed point");
    assert_eq!(reloaded.fingerprint(), report.fingerprint(), "{label}");
}

#[test]
fn pr4_era_shapes_round_trip() {
    // Cap-less artifacts, decided cells, mixed censoring: the shapes
    // BENCH_sweep.json-era sweeps wrote.
    let adaptive = report_from_parts(
        vec![Axis::ints("n", [16, 32]), Axis::log("q", 0.1, 0.4, 2)],
        0xD15E_A5E1,
        TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)),
        None,
        vec![
            (vec![Some(4.0), Some(6.0), Some(5.0)], true),
            (vec![Some(7.0), None, Some(9.0)], true),
            (vec![None, None, None], true),
            (vec![Some(12.5), Some(12.5), Some(12.5)], true),
        ],
    );
    assert!(!adaptive.to_json().contains("max_rounds"));
    assert_round_trip(&adaptive, "pr4 adaptive");

    let fixed = report_from_parts(
        vec![Axis::explicit("noise", vec![0.0, 1.0])],
        11,
        TrialBudget::fixed(2),
        None,
        vec![(vec![Some(1.0), Some(2.0)], true), (vec![Some(3.0)], false)],
    );
    assert!(fixed.to_json().contains("\"ci_target\": null"));
    assert_round_trip(&fixed, "pr4 fixed");

    let absolute = report_from_parts(
        vec![Axis::linear("x", -2.0, 2.0, 3)],
        0,
        TrialBudget::adaptive(2, 8, CiTarget::Absolute(0.25)),
        None,
        vec![
            (vec![Some(-1.5), Some(-1.25)], true),
            (vec![Some(0.0), Some(-0.0)], true),
            (vec![Some(2.0), Some(1.75)], true),
        ],
    );
    assert_round_trip(&absolute, "pr4 absolute target");
}

#[test]
fn pr5_era_capped_shapes_round_trip() {
    let capped = report_from_parts(
        vec![Axis::ints("n", [4, 8])],
        99,
        TrialBudget::adaptive(2, 4, CiTarget::Relative(0.1)),
        Some(vec![400, 800]),
        vec![
            (vec![Some(3.0), Some(4.0)], true),
            // A cell censored by its cap mid-checkpoint.
            (vec![None, Some(7.0), None], false),
        ],
    );
    assert!(capped.to_json().contains("\"max_rounds\": [400, 800]"));
    assert_round_trip(&capped, "pr5 capped");
}

#[test]
fn checkpoint_shapes_round_trip() {
    // Partial checkpoints: undecided cells, empty prefixes, a cell that
    // never ran. Exactly what a killed sweep leaves on disk.
    let partial = report_from_parts(
        vec![Axis::ints("n", [16, 32]), Axis::explicit("q", [0.1, 0.25])],
        u64::MAX - 17,
        TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)),
        None,
        vec![
            (vec![Some(4.0), Some(6.0), Some(5.0)], true),
            (vec![Some(7.0), None], false),
            (vec![Some(1.0 / 3.0)], false),
            (vec![], false),
        ],
    );
    assert!(partial.to_json().contains("\"complete\": false"));
    assert_round_trip(&partial, "partial checkpoint");
}

#[test]
fn degenerate_grids_round_trip() {
    // The empty grid: no axes, one cell.
    let empty = report_from_parts(
        vec![],
        7,
        TrialBudget::fixed(1),
        None,
        vec![(vec![Some(2.0)], true)],
    );
    assert_round_trip(&empty, "empty grid");

    // Single-value axes (fixed parameters encoded as 1-length axes).
    let point = report_from_parts(
        vec![Axis::explicit("p", vec![0.015]), Axis::ints("n", [100])],
        1,
        TrialBudget::fixed(1),
        Some(vec![1]),
        vec![(vec![None], false)],
    );
    assert_round_trip(&point, "point grid");
}

#[test]
fn extreme_values_round_trip() {
    // Subnormals, -0.0, f64::MAX, shortest-form long decimals, huge
    // seeds: everything Display can emit must reload to the same bits.
    let extreme = report_from_parts(
        vec![Axis::explicit(
            "v",
            vec![5e-324, -5e-324, f64::MAX, -f64::MAX, 0.1 + 0.2],
        )],
        u64::MAX,
        TrialBudget::adaptive(1, 3, CiTarget::Absolute(f64::MIN_POSITIVE)),
        None,
        vec![
            (vec![Some(5e-324)], true),
            (vec![Some(-0.0), Some(0.0)], true),
            (vec![Some(f64::MAX), Some(-f64::MAX), None], true),
            (vec![Some(1.0 / 3.0), Some(2.0 / 3.0)], true),
            (vec![Some(1e-300), Some(1e300)], true),
        ],
    );
    assert_round_trip(&extreme, "extreme values");
}

#[test]
fn escaped_axis_names_round_trip() {
    // Names with JSON-escaped and multi-byte characters survive the
    // writer/parser pair.
    let weird = report_from_parts(
        vec![
            Axis::explicit("q\"uote\\slash", vec![1.0]),
            Axis::explicit("tab\there\nnewline", vec![2.0]),
            Axis::explicit("churn-α", vec![3.0]),
        ],
        3,
        TrialBudget::fixed(1),
        None,
        vec![(vec![Some(1.0)], true)],
    );
    assert_round_trip(&weird, "escaped names");
}

#[test]
fn real_sweep_artifacts_round_trip_across_schedules() {
    // End to end: real runner output (serial, parallel, capped) obeys
    // the same pin — no hand-built shape, no splicing.
    let grid = || {
        dg_sweep::Grid::new()
            .axis(Axis::ints("n", [4, 8, 16]))
            .axis(Axis::explicit("q", [0.1, 0.9]))
            .max_rounds(|cell| 100 * cell.usize("n") as u32)
    };
    let trial = |cell: &dg_sweep::Cell, trial: dg_sweep::Trial| {
        let jitter = (trial.seed % 100) as f64 / 100.0;
        (!trial.seed.is_multiple_of(7)).then(|| cell.get("q") * cell.usize("n") as f64 + jitter)
    };
    for threads in [1usize, 4] {
        let report = Sweep::over(grid())
            .budget(TrialBudget::adaptive(3, 16, CiTarget::Relative(0.2)))
            .base_seed(0xFEED)
            .threads(threads)
            .run(trial)
            .unwrap();
        assert_round_trip(&report, &format!("real sweep, {threads} threads"));
    }
}
