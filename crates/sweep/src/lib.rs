//! # dg-sweep — adaptive parameter-sweep orchestration
//!
//! The experiments behind a phase diagram are a product space: a grid of
//! parameter cells, each needing enough Monte-Carlo trials for a tight
//! confidence interval — but *how many* is only known once the samples
//! arrive. This crate turns that into a declarative harness:
//!
//! * [`Grid`] / [`Axis`] — declare the parameter space (linear, log, or
//!   explicit axes); every [`Cell`] gets a stable id and typed access to
//!   its values;
//! * [`Sweep`] — one work pool over all `(cell, trial)` items with a
//!   *sequential stopping rule* per cell ([`TrialBudget`]): run until
//!   the Student-t 95% CI half-width meets a [`CiTarget`] or the trial
//!   cap hits, spending trials where the noise is;
//! * [`Metric`] — optionally declare a *vector* of observables per trial
//!   (rounds, messages, coverage, ...) with per-metric stopping modes:
//!   a cell stops only when every gating metric meets its CI target,
//!   while [`MetricStopping::Observe`] metrics are recorded without
//!   gating ([`Grid::metrics`], [`Sweep::run_metrics`]);
//! * [`SweepReport`] — a machine-readable artifact (JSON + CSV) carrying
//!   per-cell summaries *and* raw samples, so a killed sweep resumes
//!   from its own output file ([`Sweep::checkpoint`]) and finishes with
//!   a byte-identical report. Metric-less sweeps keep the frozen
//!   `dg-sweep/1` bytes; declared metrics opt into `dg-sweep/2`.
//!
//! Determinism is the design invariant: trial `i` of cell `c` is seeded
//! `mix_seed(mix_seed(base_seed, c), i)` and the stopping decision is a
//! pure function of each cell's sample prefix in trial order, so serial,
//! parallel, and resumed executions all produce the same bytes.
//!
//! This crate is self-contained (it only needs `dg-stats`); the
//! `dynagraph::sweep` module re-exports it next to the engine glue that
//! plugs `Simulation::run_trial` in as the trial function.
//!
//! # Example
//!
//! ```
//! use dg_sweep::{Axis, CiTarget, Grid, Sweep, TrialBudget};
//!
//! let grid = Grid::new()
//!     .axis(Axis::ints("n", [16, 32]))
//!     .axis(Axis::log("q", 0.1, 0.4, 3));
//! let report = Sweep::over(grid)
//!     .budget(TrialBudget::adaptive(4, 32, CiTarget::Relative(0.2)))
//!     .base_seed(7)
//!     .run(|cell, trial| {
//!         // A stand-in measurement: any pure function of (cell, seed).
//!         let n = cell.usize("n") as f64;
//!         Some(n * cell.get("q") + (trial.seed % 8) as f64)
//!     })
//!     .unwrap();
//! assert_eq!(report.cells().len(), 6);
//! assert!(report.is_complete());
//! let csv = report.to_csv();
//! assert!(csv.starts_with("n,q,trials,"));
//! let reloaded = dg_sweep::SweepReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(reloaded, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
mod budget;
mod error;
mod instrument;
mod json;
mod report;
mod runner;
mod spec;

pub use axis::{Axis, Cell, Grid, Metric, MetricStopping};
pub use budget::{CiTarget, TrialBudget};
pub use error::SweepError;
pub use report::{CellReport, NearestCell, SweepReport};
pub use runner::{Sweep, Trial, TrialPanic};
pub use spec::SweepSpec;

/// Mixes a base seed with a stream index into an independent-looking
/// seed (SplitMix64 finalizer).
///
/// Bit-for-bit identical to `dynagraph::mix_seed` — the sweep scheduler
/// and the simulation engine must derive the *same* per-trial seeds, so
/// that handing [`Trial::cell_seed`] to `SimulationBuilder::base_seed`
/// and [`Trial::index`] to `SimulationBuilder::run_trial` reproduces
/// [`Trial::seed`] inside the engine. (`dynagraph`'s test suite pins the
/// two implementations together; this crate keeps its own copy only to
/// stay dependency-free below the engine.)
///
/// # Examples
///
/// ```
/// use dg_sweep::mix_seed;
/// assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
/// assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
/// ```
pub fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
