//! Parameter-space declarations: [`Axis`], [`Grid`], the [`Cell`]s
//! handed to trial functions, and the [`Metric`]s a multi-metric sweep
//! samples per trial.

use std::fmt;
use std::sync::Arc;

use crate::budget::CiTarget;

/// How one declared [`Metric`] participates in the sequential stopping
/// rule of a multi-metric sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricStopping {
    /// Gate on the sweep budget's own [`CiTarget`] — the metric must
    /// meet the same 95% half-width target every single-metric sweep
    /// uses. (With a fixed budget this is equivalent to `Observe`.)
    Default,
    /// Gate on this metric-specific target instead of the budget's.
    Target(CiTarget),
    /// Record the metric but never let it gate stopping — for heavy-
    /// tailed observables (a `max`, say) whose CI would never tighten.
    Observe,
}

/// One declared per-trial observable of a multi-metric sweep.
///
/// A [`Grid`] with metrics attached ([`Grid::metrics`]) samples a
/// *vector* per trial — one `Option<f64>` slot per metric, in
/// declaration order — and a cell stops only when **every** gating
/// metric meets its 95% CI half-width target (see
/// [`crate::TrialBudget::stop_at_metrics`]). Censoring is per-metric: a
/// trial may report `messages` while its `rounds` slot is `None`
/// because the round cap hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    name: String,
    stopping: MetricStopping,
}

impl Metric {
    fn validated(name: impl Into<String>, stopping: MetricStopping) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "metric name must be non-empty");
        if let MetricStopping::Target(CiTarget::Absolute(v) | CiTarget::Relative(v)) = stopping {
            assert!(
                v.is_finite() && v > 0.0,
                "metric {name:?} CI target must be strictly positive, got {v}"
            );
        }
        Metric { name, stopping }
    }

    /// A metric gating on the sweep budget's own CI target.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        Metric::validated(name, MetricStopping::Default)
    }

    /// A metric gating on its own CI target.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or the target is not strictly positive.
    pub fn target(name: impl Into<String>, target: CiTarget) -> Self {
        Metric::validated(name, MetricStopping::Target(target))
    }

    /// A recorded-only metric that never gates stopping.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn observe(name: impl Into<String>) -> Self {
        Metric::validated(name, MetricStopping::Observe)
    }

    /// The metric's name (its column in CSV artifacts and its key in
    /// `dg-serve` cell queries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How the metric participates in the stopping rule.
    pub fn stopping(&self) -> MetricStopping {
        self.stopping
    }

    /// The CI target this metric gates on under `budget_target` (the
    /// sweep budget's own target): its override, the budget's for
    /// [`MetricStopping::Default`], or `None` when the metric cannot
    /// stop a cell.
    pub fn effective_target(&self, budget_target: Option<CiTarget>) -> Option<CiTarget> {
        match self.stopping {
            MetricStopping::Default => budget_target,
            MetricStopping::Target(t) => Some(t),
            MetricStopping::Observe => None,
        }
    }
}

/// One named dimension of a parameter grid.
///
/// An axis is a finite, ordered list of `f64` values; integer-valued
/// parameters (node counts, fanouts) are stored exactly as integral
/// floats and read back through [`Cell::usize`].
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    name: String,
    values: Vec<f64>,
}

impl Axis {
    fn validated(name: impl Into<String>, values: Vec<f64>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "axis name must be non-empty");
        assert!(!values.is_empty(), "axis {name:?} has no values");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "axis {name:?} has a non-finite value"
        );
        Axis { name, values }
    }

    /// `steps` evenly spaced values from `lo` to `hi` inclusive
    /// (`steps == 1` yields just `lo`).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or an endpoint is non-finite.
    pub fn linear(name: impl Into<String>, lo: f64, hi: f64, steps: usize) -> Self {
        assert!(steps > 0, "linear axis needs at least one step");
        let mut values = Vec::with_capacity(steps);
        if steps == 1 {
            values.push(lo);
        } else {
            for i in 0..steps {
                values.push(lo + (hi - lo) * i as f64 / (steps - 1) as f64);
            }
            values[steps - 1] = hi;
        }
        Axis::validated(name, values)
    }

    /// `steps` geometrically spaced values from `lo` to `hi` inclusive —
    /// the natural spacing for densities `p` and churn rates `q` whose
    /// interesting regimes span orders of magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or an endpoint is not strictly positive.
    pub fn log(name: impl Into<String>, lo: f64, hi: f64, steps: usize) -> Self {
        assert!(steps > 0, "log axis needs at least one step");
        assert!(
            lo > 0.0 && hi > 0.0,
            "log axis endpoints must be strictly positive"
        );
        let mut values = Vec::with_capacity(steps);
        if steps == 1 {
            values.push(lo);
        } else {
            let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
            let mut v = lo;
            for _ in 0..steps {
                values.push(v);
                v *= ratio;
            }
            values[steps - 1] = hi;
        }
        Axis::validated(name, values)
    }

    /// An explicit list of values, in sweep order.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or contains a non-finite value.
    pub fn explicit(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        Axis::validated(name, values.into_iter().collect())
    }

    /// An explicit list of integer values (stored as exact floats; read
    /// back via [`Cell::usize`]).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty.
    pub fn ints(name: impl Into<String>, values: impl IntoIterator<Item = usize>) -> Self {
        Axis::validated(name, values.into_iter().map(|v| v as f64).collect())
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis values, in sweep order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A declared parameter space: the Cartesian product of its axes.
///
/// Cells are enumerated row-major with the **last** axis varying
/// fastest, and every cell gets a stable integer id in that order — the
/// id (not scheduling order) drives per-cell seed derivation, so reports
/// are byte-identical however the sweep is executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Grid {
    axes: Vec<Axis>,
    /// Per-cell round caps by cell id (see [`Grid::max_rounds`]).
    max_rounds: Option<Vec<u32>>,
    /// Declared per-trial metrics (see [`Grid::metrics`]); `None` for
    /// classic single-scalar sweeps.
    metrics: Option<Vec<Metric>>,
}

impl Grid {
    /// An empty grid (a single cell with no parameters, until axes are
    /// added).
    pub fn new() -> Self {
        Grid::default()
    }

    /// Adds an axis.
    ///
    /// # Panics
    ///
    /// Panics if an axis with the same name was already added, or if a
    /// [`Grid::max_rounds`] policy was already attached (the policy is
    /// evaluated per cell, so it must come after every axis).
    pub fn axis(mut self, axis: Axis) -> Self {
        assert!(
            self.axes.iter().all(|a| a.name() != axis.name()),
            "duplicate axis {:?}",
            axis.name()
        );
        assert!(
            self.max_rounds.is_none(),
            "declare every axis before attaching a max_rounds policy"
        );
        self.axes.push(axis);
        self
    }

    /// Attaches a per-cell round-cap policy: `policy(cell)` is evaluated
    /// once per cell, in cell-id order, and the result travels with the
    /// cell ([`Cell::max_rounds`]) into the trial function — so the
    /// censored tail of a sweep (cells whose trials routinely hit the
    /// cap) stops burning rounds past *its* configured budget instead of
    /// a grid-wide worst-case one.
    ///
    /// The caps are part of the sweep's identity: they enter the
    /// artifact and its resume fingerprint, so a checkpoint written
    /// under one policy cannot silently resume under another. Uniform
    /// caps are just `|_| cap`.
    ///
    /// # Panics
    ///
    /// Panics if a policy is already attached (declare all axes first),
    /// or if the policy yields `u32::MAX` for some cell — the engine
    /// rejects that value (it is the uninformed sentinel), and failing
    /// here names the offending cell instead of aborting a worker
    /// thread mid-sweep.
    pub fn max_rounds(mut self, policy: impl Fn(&Cell) -> u32) -> Self {
        assert!(
            self.max_rounds.is_none(),
            "max_rounds policy already attached"
        );
        let caps: Vec<u32> = self
            .cells()
            .iter()
            .map(|cell| {
                let cap = policy(cell);
                assert!(
                    cap < u32::MAX,
                    "max_rounds policy returned u32::MAX for cell {cell} (id {})",
                    cell.id()
                );
                cap
            })
            .collect();
        self.max_rounds = Some(caps);
        self
    }

    /// The per-cell round caps, by cell id, when a [`Grid::max_rounds`]
    /// policy is attached.
    pub fn max_rounds_table(&self) -> Option<&[u32]> {
        self.max_rounds.as_deref()
    }

    /// Declares the per-trial metrics this grid's sweeps sample.
    ///
    /// With metrics attached, the sweep runs through
    /// [`crate::Sweep::run_metrics`]: the trial function returns one
    /// `Option<f64>` per declared metric (in this order), the artifact
    /// is written in the `dg-sweep/2` format, and a cell stops only
    /// once every gating metric meets its CI target. Without metrics
    /// the grid stays a classic single-scalar (`dg-sweep/1`) sweep —
    /// existing artifacts keep their exact bytes and fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty, contains a duplicate name, or
    /// metrics were already declared.
    pub fn metrics(mut self, metrics: impl IntoIterator<Item = Metric>) -> Self {
        assert!(self.metrics.is_none(), "metrics already declared");
        let metrics: Vec<Metric> = metrics.into_iter().collect();
        assert!(!metrics.is_empty(), "declare at least one metric");
        for (i, m) in metrics.iter().enumerate() {
            assert!(
                metrics[..i].iter().all(|o| o.name() != m.name()),
                "duplicate metric {:?}",
                m.name()
            );
        }
        self.metrics = Some(metrics);
        self
    }

    /// The declared metrics, in declaration order, when attached.
    pub fn metrics_table(&self) -> Option<&[Metric]> {
        self.metrics.as_deref()
    }

    /// The declared axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cells (product of axis lengths; 1 for an empty grid).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values().len()).product()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= cell_count()`.
    pub fn cell(&self, id: usize) -> Cell {
        assert!(id < self.cell_count(), "cell id {id} out of range");
        let names: Arc<Vec<String>> =
            Arc::new(self.axes.iter().map(|a| a.name().to_string()).collect());
        self.cell_with_names(id, names)
    }

    fn cell_with_names(&self, id: usize, names: Arc<Vec<String>>) -> Cell {
        let mut values = Vec::with_capacity(self.axes.len());
        let mut rest = id;
        for axis in self.axes.iter().rev() {
            let len = axis.values().len();
            values.push(axis.values()[rest % len]);
            rest /= len;
        }
        values.reverse();
        Cell {
            id,
            names,
            values,
            max_rounds: self.max_rounds.as_ref().map(|caps| caps[id]),
        }
    }

    /// All cells, ordered by id.
    pub fn cells(&self) -> Vec<Cell> {
        let names: Arc<Vec<String>> =
            Arc::new(self.axes.iter().map(|a| a.name().to_string()).collect());
        (0..self.cell_count())
            .map(|id| self.cell_with_names(id, Arc::clone(&names)))
            .collect()
    }
}

/// One point of a [`Grid`]: a stable id plus one value per axis.
///
/// Handed to the trial function of a sweep; cheap to clone and safe to
/// move across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    id: usize,
    names: Arc<Vec<String>>,
    values: Vec<f64>,
    max_rounds: Option<u32>,
}

impl Cell {
    /// The cell's stable id (row-major index into the grid, last axis
    /// fastest). Seed derivation uses this, never the scheduling order.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This cell's round cap under the grid's [`Grid::max_rounds`]
    /// policy; `None` when no policy is attached (trial functions fall
    /// back to their own default).
    pub fn max_rounds(&self) -> Option<u32> {
        self.max_rounds
    }

    /// The cell's axis values, in axis-declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value of the named axis, or `None` if the grid has no axis of
    /// that name — the non-panicking sibling of [`Cell::get`], for trial
    /// functions whose parameters are optional (a workload that treats a
    /// missing `p` axis as "derive `p` from `n`", say).
    pub fn try_get(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// The value of the named axis.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn get(&self, name: &str) -> f64 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => self.values[i],
            None => panic!("no axis named {name:?} (axes: {:?})", self.names),
        }
    }

    /// The value of the named axis as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name or the value is not a
    /// representable non-negative integer.
    pub fn usize(&self, name: &str) -> usize {
        let v = self.get(name);
        assert!(
            v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64,
            "axis {name:?} value {v} is not a usize"
        );
        v as usize
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.names.iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_endpoints() {
        let a = Axis::linear("x", 1.0, 3.0, 5);
        assert_eq!(a.values(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(Axis::linear("x", 2.0, 9.0, 1).values(), &[2.0]);
    }

    #[test]
    fn log_is_geometric_and_hits_endpoints() {
        let a = Axis::log("p", 0.01, 1.0, 3);
        assert_eq!(a.values().len(), 3);
        assert_eq!(a.values()[0], 0.01);
        assert!((a.values()[1] - 0.1).abs() < 1e-12);
        assert_eq!(a.values()[2], 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn log_rejects_zero() {
        let _ = Axis::log("p", 0.0, 1.0, 3);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn explicit_rejects_empty() {
        let _ = Axis::explicit("q", []);
    }

    #[test]
    fn grid_enumerates_row_major_last_axis_fastest() {
        let grid = Grid::new()
            .axis(Axis::ints("n", [16, 32]))
            .axis(Axis::explicit("q", [0.1, 0.2, 0.3]));
        assert_eq!(grid.cell_count(), 6);
        let cells = grid.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].values(), &[16.0, 0.1]);
        assert_eq!(cells[1].values(), &[16.0, 0.2]);
        assert_eq!(cells[3].values(), &[32.0, 0.1]);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id(), i);
            assert_eq!(c, &grid.cell(i));
        }
        assert_eq!(cells[4].usize("n"), 32);
        assert_eq!(cells[4].get("q"), 0.2);
        assert_eq!(cells[4].to_string(), "n=32 q=0.2");
    }

    #[test]
    fn empty_grid_has_one_cell() {
        let grid = Grid::new();
        assert_eq!(grid.cell_count(), 1);
        assert_eq!(grid.cells()[0].values(), &[] as &[f64]);
    }

    #[test]
    fn max_rounds_policy_travels_with_cells() {
        let grid = Grid::new()
            .axis(Axis::ints("n", [16, 32]))
            .axis(Axis::explicit("q", [0.1, 0.2]))
            .max_rounds(|cell| if cell.get("q") < 0.15 { 50_000 } else { 2_000 });
        assert_eq!(
            grid.max_rounds_table(),
            Some(&[50_000, 2_000, 50_000, 2_000][..])
        );
        for cell in grid.cells() {
            let expected = if cell.get("q") < 0.15 { 50_000 } else { 2_000 };
            assert_eq!(cell.max_rounds(), Some(expected), "cell {}", cell.id());
            assert_eq!(grid.cell(cell.id()).max_rounds(), Some(expected));
        }
        // Without a policy, cells carry no cap.
        let bare = Grid::new().axis(Axis::ints("n", [4]));
        assert_eq!(bare.max_rounds_table(), None);
        assert_eq!(bare.cells()[0].max_rounds(), None);
    }

    #[test]
    #[should_panic(expected = "before attaching")]
    fn axis_after_max_rounds_rejected() {
        let _ = Grid::new()
            .axis(Axis::ints("n", [4]))
            .max_rounds(|_| 10)
            .axis(Axis::ints("m", [2]));
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_max_rounds_rejected() {
        let _ = Grid::new()
            .axis(Axis::ints("n", [4]))
            .max_rounds(|_| 10)
            .max_rounds(|_| 20);
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_rejected() {
        let _ = Grid::new()
            .axis(Axis::ints("n", [1]))
            .axis(Axis::explicit("n", [2.0]));
    }

    #[test]
    #[should_panic(expected = "not a usize")]
    fn fractional_usize_rejected() {
        let grid = Grid::new().axis(Axis::explicit("q", [0.5]));
        let _ = grid.cell(0).usize("q");
    }

    #[test]
    fn metrics_declaration_travels_with_grid() {
        let grid = Grid::new().axis(Axis::ints("n", [4])).metrics([
            Metric::new("rounds"),
            Metric::target("messages", CiTarget::Relative(0.1)),
            Metric::observe("coverage"),
        ]);
        let table = grid.metrics_table().unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].name(), "rounds");
        assert_eq!(table[0].stopping(), MetricStopping::Default);
        assert_eq!(
            table[1].stopping(),
            MetricStopping::Target(CiTarget::Relative(0.1))
        );
        assert_eq!(table[2].stopping(), MetricStopping::Observe);
        // Metric-less grids stay metric-less.
        assert!(Grid::new()
            .axis(Axis::ints("n", [4]))
            .metrics_table()
            .is_none());
    }

    #[test]
    fn effective_target_resolves_against_budget() {
        let budget_target = Some(CiTarget::Relative(0.05));
        assert_eq!(
            Metric::new("rounds").effective_target(budget_target),
            budget_target
        );
        assert_eq!(Metric::new("rounds").effective_target(None), None);
        assert_eq!(
            Metric::target("messages", CiTarget::Absolute(2.0)).effective_target(budget_target),
            Some(CiTarget::Absolute(2.0))
        );
        assert_eq!(
            Metric::observe("coverage").effective_target(budget_target),
            None
        );
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_metric_rejected() {
        let _ = Grid::new().metrics([Metric::new("m"), Metric::observe("m")]);
    }

    #[test]
    #[should_panic(expected = "at least one metric")]
    fn empty_metrics_rejected() {
        let _ = Grid::new().metrics([]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn nonpositive_metric_target_rejected() {
        let _ = Metric::target("m", CiTarget::Relative(0.0));
    }
}
