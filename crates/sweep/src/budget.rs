//! Trial budgets: how many trials a cell gets, and when to stop early.

use dg_stats::{mean_ci95_t, Summary};

use crate::axis::Metric;

/// Target on the 95% Student-t confidence-interval half-width of a
/// cell's mean, used by the sequential stopping rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CiTarget {
    /// Stop once the half-width is at most this many rounds (or whatever
    /// unit the samples are in).
    Absolute(f64),
    /// Stop once the half-width is at most this fraction of the absolute
    /// sample mean — scale-free, the usual choice for flooding times
    /// that range from a handful to tens of thousands of rounds.
    Relative(f64),
}

/// Per-cell trial budget: a minimum, a cap, and an optional CI target
/// that lets well-behaved cells stop before the cap.
///
/// The stopping decision for a cell is a pure function of its sample
/// *prefix* in trial order: the final trial count is the smallest
/// `k >= min_trials` whose first `k` samples meet the target (or the
/// cap). Samples are pure functions of per-`(cell, trial)` seeds, so the
/// count — and therefore the whole report — is independent of how trials
/// were scheduled across threads or resumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialBudget {
    /// Trials every cell runs before the stopping rule is consulted.
    pub min_trials: usize,
    /// Hard per-cell cap (the full budget when no target is set, or when
    /// a cell's variance never lets the target be met).
    pub max_trials: usize,
    /// Early-stopping target; `None` means a fixed budget of exactly
    /// `max_trials` per cell.
    pub ci_target: Option<CiTarget>,
}

impl TrialBudget {
    /// A fixed budget: exactly `trials` per cell, no early stopping.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn fixed(trials: usize) -> Self {
        assert!(trials > 0, "budget needs at least one trial");
        TrialBudget {
            min_trials: trials,
            max_trials: trials,
            ci_target: None,
        }
    }

    /// An adaptive budget: at least `min_trials`, at most `max_trials`,
    /// stopping as soon as the Student-t 95% CI half-width over a cell's
    /// completed samples meets `target`. The CI can only stop a cell
    /// once at least `min_trials` trials *completed* — censored trials
    /// spend budget but contribute no stopping evidence, so a mostly
    /// censored cell keeps running toward the cap instead of "deciding"
    /// on a handful of lucky survivors.
    ///
    /// # Panics
    ///
    /// Panics if `min_trials == 0`, `min_trials > max_trials`, or the
    /// target value is not strictly positive.
    pub fn adaptive(min_trials: usize, max_trials: usize, target: CiTarget) -> Self {
        assert!(min_trials > 0, "budget needs at least one trial");
        assert!(min_trials <= max_trials, "min_trials must be <= max_trials");
        let v = match target {
            CiTarget::Absolute(v) | CiTarget::Relative(v) => v,
        };
        assert!(v > 0.0, "CI target must be strictly positive");
        TrialBudget {
            min_trials,
            max_trials,
            ci_target: Some(target),
        }
    }

    /// The stopping decision over a *complete* sample prefix: `true` if a
    /// cell whose first `samples.len()` trials produced exactly `samples`
    /// (`None` = trial censored/incomplete) should stop there.
    ///
    /// This is the pure function behind scheduling determinism; the
    /// runner calls it for `k = min_trials, min_trials + 1, ...` as
    /// prefixes complete and fixes the first `k` it accepts.
    pub fn stop_at(&self, samples: &[Option<f64>]) -> bool {
        let k = samples.len();
        if k < self.min_trials {
            return false;
        }
        if k >= self.max_trials {
            return true;
        }
        let Some(target) = self.ci_target else {
            return false;
        };
        let completed: Summary = samples.iter().filter_map(|s| *s).collect();
        if completed.len() < self.min_trials {
            // Censored trials count toward the cap but not the evidence:
            // a CI over the lucky survivors must not stop a cell whose
            // data is mostly "didn't finish".
            return false;
        }
        let Some(ci) = mean_ci95_t(&completed) else {
            return false; // fewer than two completed trials: keep going
        };
        match target {
            CiTarget::Absolute(a) => ci.half_width() <= a,
            CiTarget::Relative(r) => ci.half_width() <= r * ci.mean.abs(),
        }
    }

    /// The multi-metric stopping decision: like [`TrialBudget::stop_at`]
    /// but over per-trial metric *rows* (`samples[t][m]` is trial `t`'s
    /// slot for metric `m`, `None` = that metric was censored in that
    /// trial), stopping only when **every** gating metric meets its
    /// effective CI target.
    ///
    /// A metric gates when [`Metric::effective_target`] resolves to a
    /// target under this budget; each gating metric independently needs
    /// at least `min_trials` completed slots (per-metric censoring
    /// spends budget but contributes no evidence, the same survivorship
    /// rule as the single-metric path) and a Student-t 95% CI half-width
    /// within its target. With no gating metric at all — a fixed budget,
    /// or every metric [`crate::MetricStopping::Observe`] — only the
    /// trial cap stops a cell. Like `stop_at`, this is a pure function
    /// of the sample prefix, so scheduling cannot leak into reports.
    pub fn stop_at_metrics(&self, metrics: &[Metric], samples: &[Vec<Option<f64>>]) -> bool {
        let k = samples.len();
        if k < self.min_trials {
            return false;
        }
        if k >= self.max_trials {
            return true;
        }
        let mut gating = 0usize;
        for (m, metric) in metrics.iter().enumerate() {
            let Some(target) = metric.effective_target(self.ci_target) else {
                continue;
            };
            gating += 1;
            let completed: Summary = samples.iter().filter_map(|row| row[m]).collect();
            if completed.len() < self.min_trials {
                return false;
            }
            let Some(ci) = mean_ci95_t(&completed) else {
                return false;
            };
            let met = match target {
                CiTarget::Absolute(a) => ci.half_width() <= a,
                CiTarget::Relative(r) => ci.half_width() <= r * ci.mean.abs(),
            };
            if !met {
                return false;
            }
        }
        gating > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_budget_stops_only_at_cap() {
        let b = TrialBudget::fixed(4);
        assert!(!b.stop_at(&[Some(1.0); 3]));
        assert!(b.stop_at(&[Some(1.0); 4]));
    }

    #[test]
    fn adaptive_stops_when_tight() {
        let b = TrialBudget::adaptive(3, 100, CiTarget::Absolute(0.5));
        // Zero variance: CI collapses at min_trials.
        assert!(b.stop_at(&[Some(7.0); 3]));
        // High variance: keeps going.
        assert!(!b.stop_at(&[Some(0.0), Some(100.0), Some(50.0)]));
        // The cap always stops.
        assert!(b.stop_at(&vec![Some(0.0); 100]));
    }

    #[test]
    fn censored_trials_do_not_fake_precision() {
        let b = TrialBudget::adaptive(3, 100, CiTarget::Relative(0.1));
        // One completed sample among three: no CI, keep going.
        assert!(!b.stop_at(&[None, Some(5.0), None]));
        // Two agreeing survivors would make a zero-width CI, but fewer
        // than min_trials trials completed: survivorship is not evidence.
        assert!(!b.stop_at(&[Some(5.0), Some(5.0), None]));
        // With min_trials completions the same CI does stop the cell.
        assert!(b.stop_at(&[Some(5.0), Some(5.0), None, Some(5.0)]));
    }

    #[test]
    fn min_trials_always_run() {
        let b = TrialBudget::adaptive(5, 100, CiTarget::Absolute(1e9));
        assert!(!b.stop_at(&[Some(1.0); 4]));
        assert!(b.stop_at(&[Some(1.0); 5]));
    }

    #[test]
    #[should_panic(expected = "min_trials must be <= max_trials")]
    fn inverted_budget_rejected() {
        let _ = TrialBudget::adaptive(5, 4, CiTarget::Absolute(1.0));
    }

    fn rows(rows: &[&[Option<f64>]]) -> Vec<Vec<Option<f64>>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn metrics_stop_only_when_every_gating_metric_is_tight() {
        let b = TrialBudget::adaptive(3, 100, CiTarget::Absolute(0.5));
        let ms = [Metric::new("rounds"), Metric::new("messages")];
        // Both metrics zero-variance: stops at min_trials.
        let tight = rows(&[&[Some(7.0), Some(40.0)][..]; 3]);
        assert!(b.stop_at_metrics(&ms, &tight));
        // The second metric is noisy: the cell keeps running even
        // though the first met its target long ago.
        let noisy = rows(&[
            &[Some(7.0), Some(0.0)],
            &[Some(7.0), Some(100.0)],
            &[Some(7.0), Some(50.0)],
        ]);
        assert!(!b.stop_at_metrics(&ms, &noisy));
        // Demoting the noisy metric to observe-only lets the cell stop.
        let observed = [Metric::new("rounds"), Metric::observe("messages")];
        assert!(b.stop_at_metrics(&observed, &noisy));
        // A per-metric target override gates on its own threshold.
        let loose = [
            Metric::new("rounds"),
            Metric::target("messages", CiTarget::Absolute(1000.0)),
        ];
        assert!(b.stop_at_metrics(&loose, &noisy));
        // The cap always stops, whatever the metrics say.
        let capped = TrialBudget::adaptive(1, 3, CiTarget::Absolute(1e-9));
        assert!(capped.stop_at_metrics(&ms, &noisy));
    }

    #[test]
    fn per_metric_censoring_gates_evidence_per_metric() {
        let b = TrialBudget::adaptive(3, 100, CiTarget::Relative(0.1));
        let ms = [Metric::new("rounds"), Metric::new("messages")];
        // `rounds` censored in one trial (cap hit) while `messages` has
        // three agreeing completions: rounds has only 2 < min_trials
        // completed slots, so survivorship must not stop the cell.
        let mixed = rows(&[
            &[Some(5.0), Some(40.0)],
            &[None, Some(40.0)],
            &[Some(5.0), Some(40.0)],
        ]);
        assert!(!b.stop_at_metrics(&ms, &mixed));
        // One more trial completes rounds' evidence; now both gate.
        let enough = rows(&[
            &[Some(5.0), Some(40.0)],
            &[None, Some(40.0)],
            &[Some(5.0), Some(40.0)],
            &[Some(5.0), Some(40.0)],
        ]);
        assert!(b.stop_at_metrics(&ms, &enough));
    }

    #[test]
    fn all_observe_metrics_run_to_the_cap() {
        let b = TrialBudget::adaptive(2, 5, CiTarget::Absolute(100.0));
        let ms = [Metric::observe("a"), Metric::observe("b")];
        let flat = rows(&[&[Some(1.0), Some(1.0)][..]; 4]);
        assert!(!b.stop_at_metrics(&ms, &flat));
        assert!(b.stop_at_metrics(&ms, &rows(&[&[Some(1.0), Some(1.0)][..]; 5])));
        // Same for a fixed budget with Default metrics: no target, no
        // early stop.
        let fixed = TrialBudget::fixed(5);
        let defaults = [Metric::new("a"), Metric::new("b")];
        assert!(!fixed.stop_at_metrics(&defaults, &flat));
    }
}
