//! Error type for artifact IO and checkpoint resumption.

use std::fmt;

/// Everything that can go wrong loading, parsing, or resuming a sweep
/// artifact. (Invalid sweep *configurations* panic at build time, like
/// the engine builder.)
#[derive(Debug)]
pub enum SweepError {
    /// Reading or writing an artifact file failed.
    Io(std::io::Error),
    /// An artifact was not valid `dg-sweep` JSON.
    Parse(String),
    /// An artifact does not belong to this sweep (different grid, seed,
    /// or budget — resuming from it would silently mix experiments).
    Mismatch(String),
    /// A cell query against a report was malformed: an unknown, missing,
    /// or duplicated axis name, or a non-finite query value.
    Query(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep artifact io error: {e}"),
            SweepError::Parse(msg) => write!(f, "sweep artifact parse error: {msg}"),
            SweepError::Mismatch(msg) => write!(f, "sweep artifact mismatch: {msg}"),
            SweepError::Query(msg) => write!(f, "sweep cell query error: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}
