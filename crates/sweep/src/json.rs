//! Minimal hand-rolled JSON reader/writer.
//!
//! The build environment has no crates.io access (no `serde`), and the
//! sweep artifact layer needs to *reload* what it wrote — so this module
//! implements the small JSON subset the artifacts use: objects, arrays,
//! strings, numbers, booleans, `null`.
//!
//! Numbers keep their raw token ([`Json::Num`] stores the source text):
//! `u64` seeds/fingerprints round-trip exactly instead of being squeezed
//! through an `f64`, and `f64`s parse back to the bit pattern that
//! produced their shortest decimal form — which is what makes resumed
//! reports byte-identical to uninterrupted ones.

use crate::error::SweepError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Result<&Json, SweepError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| SweepError::Parse(format!("missing key {key:?}"))),
            _ => Err(SweepError::Parse(format!(
                "expected object while looking up {key:?}"
            ))),
        }
    }

    pub(crate) fn as_f64(&self) -> Result<f64, SweepError> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| SweepError::Parse(format!("bad number {raw:?}"))),
            _ => Err(SweepError::Parse("expected number".into())),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, SweepError> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| SweepError::Parse(format!("bad u64 {raw:?}"))),
            _ => Err(SweepError::Parse("expected integer".into())),
        }
    }

    pub(crate) fn as_usize(&self) -> Result<usize, SweepError> {
        Ok(self.as_u64()? as usize)
    }

    pub(crate) fn as_bool(&self) -> Result<bool, SweepError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(SweepError::Parse("expected bool".into())),
        }
    }

    pub(crate) fn as_str(&self) -> Result<&str, SweepError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(SweepError::Parse("expected string".into())),
        }
    }

    pub(crate) fn as_arr(&self) -> Result<&[Json], SweepError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(SweepError::Parse("expected array".into())),
        }
    }

    pub(crate) fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub(crate) fn parse(text: &str) -> Result<Json, SweepError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SweepError::Parse(format!(
            "trailing input at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, SweepError> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| SweepError::Parse("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), SweepError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(SweepError::Parse(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, SweepError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(SweepError::Parse(format!(
                "bad literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, SweepError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(SweepError::Parse(format!(
                "unexpected {:?} at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, SweepError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => {
                    return Err(SweepError::Parse(format!(
                        "expected ',' or '}}', got {:?} at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, SweepError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => {
                    return Err(SweepError::Parse(format!(
                        "expected ',' or ']', got {:?} at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, SweepError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    SweepError::Parse(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos
                                    ))
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        c => {
                            return Err(SweepError::Parse(format!(
                                "bad escape {:?} at byte {}",
                                c as char, self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| SweepError::Parse("invalid utf-8".into()))?;
                    let ch = s.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SweepError> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii")
            .to_string();
        // Validate now so `Num` tokens are always parseable later.
        raw.parse::<f64>()
            .map_err(|_| SweepError::Parse(format!("bad number {raw:?} at byte {start}")))?;
        Ok(Json::Num(raw))
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub(crate) fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number token.
///
/// Rust's shortest-roundtrip `Display` guarantees `token.parse::<f64>()`
/// recovers the exact bit pattern, which the resume path relies on.
///
/// # Panics
///
/// Panics on non-finite values — artifacts never contain them (absent
/// statistics are `null`).
pub(crate) fn fmt_f64(x: f64) -> String {
    assert!(x.is_finite(), "artifacts only hold finite numbers");
    format!("{x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_it_writes() {
        let doc = r#"{"a": [1, 2.5, null, true, "x\"y"], "b": {"c": -3e-2}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[0].as_u64().unwrap(),
            1
        );
        assert!(v.get("a").unwrap().as_arr().unwrap()[2].is_null());
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[4].as_str().unwrap(),
            "x\"y"
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_f64().unwrap(),
            -0.03
        );
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        let v = parse(&format!("{{\"s\": {big}}}")).unwrap();
        assert_eq!(v.get("s").unwrap().as_u64().unwrap(), big);
    }

    #[test]
    fn f64_shortest_form_round_trips_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 123456.789, 2e-13, f64::MAX] {
            let token = fmt_f64(x);
            let v = parse(&token).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escapes_survive() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd\u{1}");
    }
}
