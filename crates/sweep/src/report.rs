//! The machine-readable artifact layer: per-cell summaries plus the raw
//! sample prefixes that make sweeps resumable.

use std::path::Path;

use dg_stats::{mean_ci95_t, ConfidenceInterval, Quantiles, Summary};

use crate::axis::{Axis, Metric, MetricStopping};
use crate::budget::{CiTarget, TrialBudget};
use crate::error::SweepError;
use crate::json::{self, fmt_f64, push_str_escaped};

/// Format tag of classic single-metric artifacts. Frozen: metric-less
/// reports must keep producing these exact bytes forever.
const FORMAT: &str = "dg-sweep/1";

/// Format tag of multi-metric artifacts (declared [`Metric`]s, one
/// sample row per trial).
const FORMAT_V2: &str = "dg-sweep/2";

/// Results of one cell: the raw sample rows in trial order plus whether
/// the stopping rule has fixed this cell's final trial count.
///
/// `samples[t][m]` is trial `t`'s slot for metric `m` (in the report's
/// metric-declaration order); `None` means that metric was censored in
/// that trial — censoring is **per-metric**, so a trial whose round cap
/// hit can report `messages` while its `rounds` slot is `None`.
/// Single-metric (`dg-sweep/1`) reports use rows of width 1.
///
/// All statistics are derived from `samples` on demand, never stored —
/// so a report reloaded from JSON is the same value as the report that
/// wrote it.
///
/// # All-censored statistics
///
/// Every scalar statistic (`mean`, `p95`, `max`, `ci` and their
/// per-metric `*_of` forms) returns `None` exactly when the metric has
/// **zero completed samples** in this cell (the CI additionally needs
/// two); [`CellReport::summary`] returns the empty [`Summary`] in that
/// same case — `summary_of(m).is_empty()` and `mean_of(m).is_none()`
/// are always equivalent.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Stable cell id (row-major grid index).
    pub id: usize,
    /// The cell's axis values, in axis-declaration order.
    pub values: Vec<f64>,
    /// Sample rows in trial order; `samples[t][m]` came from trial `t`,
    /// metric `m`.
    pub samples: Vec<Vec<Option<f64>>>,
    /// `true` once the stopping rule fixed this cell's trial count (the
    /// samples are final); `false` in partial checkpoints.
    pub decided: bool,
}

impl CellReport {
    /// Trials run so far.
    pub fn trials(&self) -> usize {
        self.samples.len()
    }

    /// The given metric's slot of each trial, in trial order.
    fn slots(&self, metric: usize) -> impl Iterator<Item = Option<f64>> + '_ {
        self.samples
            .iter()
            .map(move |row| row.get(metric).copied().flatten())
    }

    /// Trials whose slot for metric `metric` was censored (`None`).
    pub fn incomplete_of(&self, metric: usize) -> usize {
        self.slots(metric).filter(Option::is_none).count()
    }

    /// Completed values of metric `metric`, in trial order.
    pub fn completed_of(&self, metric: usize) -> Vec<f64> {
        self.slots(metric).flatten().collect()
    }

    /// Streaming summary over completed samples of metric `metric`
    /// (empty exactly when every trial censored that metric).
    pub fn summary_of(&self, metric: usize) -> Summary {
        self.slots(metric).flatten().collect()
    }

    /// Mean of metric `metric`; `None` if every trial censored it.
    pub fn mean_of(&self, metric: usize) -> Option<f64> {
        let s = self.summary_of(metric);
        (!s.is_empty()).then(|| s.mean())
    }

    /// Empirical 95th percentile of metric `metric`; `None` if every
    /// trial censored it.
    pub fn p95_of(&self, metric: usize) -> Option<f64> {
        Quantiles::try_new(self.completed_of(metric)).map(|q| q.p95())
    }

    /// Largest completed sample of metric `metric`; `None` if every
    /// trial censored it.
    pub fn max_of(&self, metric: usize) -> Option<f64> {
        Quantiles::try_new(self.completed_of(metric)).map(|q| q.max())
    }

    /// Student-t 95% CI of metric `metric`'s mean; `None` for fewer
    /// than two completed samples.
    pub fn ci_of(&self, metric: usize) -> Option<ConfidenceInterval> {
        mean_ci95_t(&self.summary_of(metric))
    }

    /// Trials whose first metric was censored — [`CellReport::incomplete_of`]
    /// of metric 0, the whole story for single-metric reports.
    pub fn incomplete(&self) -> usize {
        self.incomplete_of(0)
    }

    /// Completed samples of the first metric, in trial order.
    pub fn completed(&self) -> Vec<f64> {
        self.completed_of(0)
    }

    /// Streaming summary over the first metric's completed samples.
    pub fn summary(&self) -> Summary {
        self.summary_of(0)
    }

    /// Mean of the first metric; `None` if every trial was censored.
    pub fn mean(&self) -> Option<f64> {
        self.mean_of(0)
    }

    /// Empirical 95th percentile of the first metric.
    pub fn p95(&self) -> Option<f64> {
        self.p95_of(0)
    }

    /// Largest completed sample of the first metric.
    pub fn max(&self) -> Option<f64> {
        self.max_of(0)
    }

    /// Student-t 95% CI of the first metric's mean; `None` for fewer
    /// than two completed trials.
    pub fn ci(&self) -> Option<ConfidenceInterval> {
        self.ci_of(0)
    }
}

/// Result of a [`SweepReport::nearest_cell`] lookup: the winning cell
/// plus how far the query was from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestCell<'a> {
    /// The nearest cell (ties broken toward earlier axis values, so the
    /// outcome is deterministic).
    pub cell: &'a CellReport,
    /// Euclidean distance over per-axis offsets, each normalized by its
    /// axis's value span (un-normalized for single-value axes). Zero
    /// exactly when the query hit a grid point.
    pub distance: f64,
    /// `true` when the query matched the cell's coordinates exactly
    /// (`distance == 0.0`).
    pub exact: bool,
}

/// A sweep's results: configuration echo + per-cell reports, ordered by
/// cell id.
///
/// Serializes to JSON ([`SweepReport::to_json`], the resumable artifact)
/// and CSV ([`SweepReport::to_csv`], one row per cell for plotting). The
/// JSON form reloads with [`SweepReport::from_json`]; because samples
/// round-trip exactly and all statistics are derived, a killed-and-
/// resumed sweep serializes to the same bytes as an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    pub(crate) axes: Vec<Axis>,
    pub(crate) base_seed: u64,
    pub(crate) budget: TrialBudget,
    /// Per-cell round caps when the grid carried a
    /// [`crate::Grid::max_rounds`] policy; part of the sweep's identity
    /// (serialized and fingerprinted only when present, so artifacts
    /// from cap-less sweeps keep their exact bytes).
    pub(crate) max_rounds: Option<Vec<u32>>,
    /// Declared metrics for `dg-sweep/2` sweeps; `None` keeps the
    /// report on the frozen `dg-sweep/1` wire format.
    pub(crate) metrics: Option<Vec<Metric>>,
    pub(crate) cells: Vec<CellReport>,
}

impl SweepReport {
    /// The grid axes the sweep ran over.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The per-cell round caps, by cell id, when the sweep's grid
    /// carried a [`crate::Grid::max_rounds`] policy.
    pub fn max_rounds_table(&self) -> Option<&[u32]> {
        self.max_rounds.as_deref()
    }

    /// The declared metrics, in declaration order, for multi-metric
    /// (`dg-sweep/2`) reports; `None` for classic single-metric ones.
    pub fn metrics(&self) -> Option<&[Metric]> {
        self.metrics.as_deref()
    }

    /// The index of the named metric in this report's sample rows, or
    /// `None` when the report declares no such metric (including every
    /// metric-less `dg-sweep/1` report).
    pub fn metric_index(&self, name: &str) -> Option<usize> {
        self.metrics
            .as_deref()?
            .iter()
            .position(|m| m.name() == name)
    }

    /// Width of each cell's sample rows: the declared metric count, or
    /// 1 for single-metric reports.
    pub fn metric_count(&self) -> usize {
        self.metrics.as_deref().map_or(1, <[Metric]>::len)
    }

    /// The sweep's base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The trial budget the sweep ran under.
    pub fn budget(&self) -> TrialBudget {
        self.budget
    }

    /// Per-cell reports, ordered by cell id.
    pub fn cells(&self) -> &[CellReport] {
        &self.cells
    }

    /// The cell with the given id.
    pub fn cell(&self, id: usize) -> &CellReport {
        &self.cells[id]
    }

    /// The named axis value of `cell` — the report-side counterpart of
    /// [`crate::Cell::get`].
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name.
    pub fn axis_value(&self, cell: &CellReport, name: &str) -> f64 {
        match self.axes.iter().position(|a| a.name() == name) {
            Some(i) => cell.values[i],
            None => panic!("no axis named {name:?}"),
        }
    }

    /// The named axis value of `cell` as a `usize` — the report-side
    /// counterpart of [`crate::Cell::usize`].
    ///
    /// # Panics
    ///
    /// Panics if no axis has that name or the value is not a
    /// representable non-negative integer.
    pub fn axis_usize(&self, cell: &CellReport, name: &str) -> usize {
        let v = self.axis_value(cell, name);
        assert!(
            v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64,
            "axis {name:?} value {v} is not a usize"
        );
        v as usize
    }

    /// `true` once every cell's trial count is final.
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| c.decided)
    }

    /// Total trials recorded across all cells — the work metric the
    /// adaptive scheduler minimizes.
    pub fn total_trials(&self) -> usize {
        self.cells.iter().map(|c| c.trials()).sum()
    }

    /// Largest CI half-width over cells with a defined CI — "how noisy
    /// is the worst cell".
    pub fn max_ci_half_width(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.ci())
            .map(|ci| ci.half_width())
            .fold(None, |acc, hw| Some(acc.map_or(hw, |a: f64| a.max(hw))))
    }

    /// The report's identity fingerprint — the FNV-1a hash over its
    /// configuration (axes, round caps, metrics, seed, budget) that
    /// names the artifact in content-addressed stores and gates
    /// checkpoint resume.
    pub fn fingerprint(&self) -> u64 {
        fingerprint(
            &self.axes,
            self.max_rounds.as_deref(),
            self.metrics.as_deref(),
            self.base_seed,
            &self.budget,
        )
    }

    /// Resolves a cell query (`(axis name, value)` pairs) into per-axis
    /// target values in axis-declaration order.
    ///
    /// Every axis must be named exactly once with a finite value; the
    /// daemon-facing lookups below share this validation so a malformed
    /// query is a [`SweepError::Query`], never a panic.
    fn query_targets(&self, query: &[(&str, f64)]) -> Result<Vec<f64>, SweepError> {
        let mut targets = vec![None; self.axes.len()];
        for &(name, value) in query {
            let Some(i) = self.axes.iter().position(|a| a.name() == name) else {
                return Err(SweepError::Query(format!(
                    "no axis named {name:?} (axes: {:?})",
                    self.axes.iter().map(Axis::name).collect::<Vec<_>>()
                )));
            };
            if targets[i].is_some() {
                return Err(SweepError::Query(format!("axis {name:?} given twice")));
            }
            if !value.is_finite() {
                return Err(SweepError::Query(format!(
                    "non-finite value {value} for axis {name:?}"
                )));
            }
            targets[i] = Some(value);
        }
        targets
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                t.ok_or_else(|| {
                    SweepError::Query(format!("axis {:?} missing from query", self.axes[i].name()))
                })
            })
            .collect()
    }

    /// The cell id for per-axis value indices (row-major, last axis
    /// fastest — the same enumeration as [`crate::Grid::cells`]).
    fn cell_id(&self, indices: &[usize]) -> usize {
        self.axes
            .iter()
            .zip(indices)
            .fold(0, |id, (axis, &i)| id * axis.values().len() + i)
    }

    /// Exact cell lookup by axis values: `cell_at(&[("n", 64.0), ("q",
    /// 0.1)])` returns the cell whose coordinates equal the query on
    /// every axis, or `None` when some coordinate is not a grid value.
    ///
    /// # Errors
    ///
    /// [`SweepError::Query`] if the query does not name every axis
    /// exactly once with finite values.
    pub fn cell_at(&self, query: &[(&str, f64)]) -> Result<Option<&CellReport>, SweepError> {
        let targets = self.query_targets(query)?;
        let mut indices = Vec::with_capacity(self.axes.len());
        for (axis, target) in self.axes.iter().zip(&targets) {
            match axis.values().iter().position(|v| v == target) {
                Some(i) => indices.push(i),
                None => return Ok(None),
            }
        }
        Ok(self.cells.get(self.cell_id(&indices)))
    }

    /// Nearest-cell lookup by axis values: the grid cell minimizing the
    /// Euclidean distance over per-axis offsets, each normalized by its
    /// axis's value span (axes with a single value, or an exact hit,
    /// contribute zero; out-of-range queries clamp to the nearest
    /// endpoint with the overshoot reported in the distance).
    ///
    /// Because the grid is a full Cartesian product, the minimizer is
    /// separable: each axis picks its nearest value independently, ties
    /// broken toward the *earlier* axis value — so the winning cell id is
    /// deterministic and the lookup is `O(Σ axis length)`, not
    /// `O(cell count)`.
    ///
    /// # Errors
    ///
    /// [`SweepError::Query`] if the query does not name every axis
    /// exactly once with finite values, or the artifact is missing the
    /// resolved cell.
    pub fn nearest_cell(&self, query: &[(&str, f64)]) -> Result<NearestCell<'_>, SweepError> {
        let targets = self.query_targets(query)?;
        let mut indices = Vec::with_capacity(self.axes.len());
        let mut dist2 = 0.0f64;
        for (axis, &target) in self.axes.iter().zip(&targets) {
            let values = axis.values();
            let (mut best, mut best_gap) = (0usize, f64::INFINITY);
            for (i, &v) in values.iter().enumerate() {
                let gap = (v - target).abs();
                if gap < best_gap {
                    (best, best_gap) = (i, gap);
                }
            }
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let span = hi - lo;
            let d = if span > 0.0 {
                best_gap / span
            } else {
                best_gap
            };
            dist2 += d * d;
            indices.push(best);
        }
        let id = self.cell_id(&indices);
        let cell = self.cells.get(id).ok_or_else(|| {
            SweepError::Query(format!("artifact has no cell {id} for nearest lookup"))
        })?;
        let distance = dist2.sqrt();
        Ok(NearestCell {
            cell,
            distance,
            exact: distance == 0.0,
        })
    }

    /// Serializes the full resumable artifact (configuration, per-cell
    /// summaries, raw samples) as JSON.
    ///
    /// Metric-less reports write the frozen `dg-sweep/1` form, byte-
    /// identical to every artifact that format has ever produced;
    /// reports with declared metrics write `dg-sweep/2`, whose cells
    /// carry one sample *row* per trial and per-metric derived-
    /// statistic arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"format\": \"{}\",\n",
            if self.metrics.is_some() {
                FORMAT_V2
            } else {
                FORMAT
            }
        ));
        out.push_str(&format!("  \"complete\": {},\n", self.is_complete()));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"fingerprint\": {},\n", self.fingerprint()));
        if let Some(metrics) = &self.metrics {
            out.push_str("  \"metrics\": [");
            for (i, m) in metrics.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"name\": ");
                push_str_escaped(&mut out, m.name());
                out.push_str(", \"stopping\": ");
                out.push_str(&stopping_json(m.stopping()));
                out.push('}');
            }
            out.push_str("],\n");
        }
        if let Some(caps) = &self.max_rounds {
            out.push_str("  \"max_rounds\": [");
            for (i, cap) in caps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&cap.to_string());
            }
            out.push_str("],\n");
        }
        out.push_str(&format!(
            "  \"budget\": {{\"min_trials\": {}, \"max_trials\": {}, \"ci_target\": {}}},\n",
            self.budget.min_trials,
            self.budget.max_trials,
            match self.budget.ci_target {
                None => "null".to_string(),
                Some(CiTarget::Absolute(v)) => format!("{{\"absolute\": {}}}", fmt_f64(v)),
                Some(CiTarget::Relative(v)) => format!("{{\"relative\": {}}}", fmt_f64(v)),
            }
        ));
        out.push_str("  \"axes\": [\n");
        for (i, axis) in self.axes.iter().enumerate() {
            out.push_str("    {\"name\": ");
            push_str_escaped(&mut out, axis.name());
            out.push_str(", \"values\": [");
            for (j, v) in axis.values().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_f64(*v));
            }
            out.push_str(if i + 1 < self.axes.len() {
                "]},\n"
            } else {
                "]}\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"cells\": [\n");
        let width = self.metric_count();
        for (i, cell) in self.cells.iter().enumerate() {
            // One pass over the samples per statistic family (to_json
            // reruns on every cell decision when checkpointing).
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            let values = cell
                .values
                .iter()
                .map(|v| fmt_f64(*v))
                .collect::<Vec<_>>()
                .join(", ");
            if self.metrics.is_none() {
                let quantiles = Quantiles::try_new(cell.completed());
                let ci = cell.ci();
                out.push_str(&format!(
                    "    {{\"id\": {}, \"values\": [{}], \"decided\": {}, \"trials\": {}, \"incomplete\": {}, \"mean\": {}, \"p95\": {}, \"max\": {}, \"ci_lo\": {}, \"ci_hi\": {}, \"ci_half_width\": {}, \"samples\": [{}]}}{sep}\n",
                    cell.id,
                    values,
                    cell.decided,
                    cell.trials(),
                    cell.incomplete(),
                    opt_stat(cell.mean()),
                    opt_stat(quantiles.as_ref().map(|q| q.p95())),
                    opt_stat(quantiles.as_ref().map(|q| q.max())),
                    opt_stat(ci.map(|ci| ci.lo)),
                    opt_stat(ci.map(|ci| ci.hi)),
                    opt_stat(ci.map(|ci| ci.half_width())),
                    cell.samples
                        .iter()
                        .map(|row| opt_num(row.first().copied().flatten()))
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
            } else {
                // Per-metric derived-statistic arrays, aligned with the
                // declared metric order.
                let stat_arr =
                    |f: &dyn Fn(usize) -> String| (0..width).map(f).collect::<Vec<_>>().join(", ");
                out.push_str(&format!(
                    "    {{\"id\": {}, \"values\": [{}], \"decided\": {}, \"trials\": {}, \"incomplete\": [{}], \"mean\": [{}], \"p95\": [{}], \"max\": [{}], \"ci_lo\": [{}], \"ci_hi\": [{}], \"ci_half_width\": [{}], \"samples\": [{}]}}{sep}\n",
                    cell.id,
                    values,
                    cell.decided,
                    cell.trials(),
                    stat_arr(&|m| cell.incomplete_of(m).to_string()),
                    stat_arr(&|m| opt_stat(cell.mean_of(m))),
                    stat_arr(&|m| opt_stat(cell.p95_of(m))),
                    stat_arr(&|m| opt_stat(cell.max_of(m))),
                    stat_arr(&|m| opt_stat(cell.ci_of(m).map(|ci| ci.lo))),
                    stat_arr(&|m| opt_stat(cell.ci_of(m).map(|ci| ci.hi))),
                    stat_arr(&|m| opt_stat(cell.ci_of(m).map(|ci| ci.half_width()))),
                    cell.samples
                        .iter()
                        .map(|row| {
                            format!(
                                "[{}]",
                                row.iter()
                                    .map(|s| opt_num(*s))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes one CSV row per cell: the axis columns (by name), then
    /// the statistic columns. Undefined statistics are empty fields.
    ///
    /// Single-metric reports keep the classic header
    /// `trials,incomplete,mean,p95,max,ci_lo,ci_hi,ci_half_width`;
    /// multi-metric reports write `trials` once and then a
    /// `<name>_incomplete,<name>_mean,<name>_p95,<name>_max,<name>_ci_lo,<name>_ci_hi,<name>_ci_half_width`
    /// group per declared metric — one file feeds a phase diagram per
    /// metric.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for axis in &self.axes {
            out.push_str(axis.name());
            out.push(',');
        }
        match self.metrics.as_deref() {
            None => out.push_str("trials,incomplete,mean,p95,max,ci_lo,ci_hi,ci_half_width\n"),
            Some(metrics) => {
                out.push_str("trials");
                for m in metrics {
                    let n = m.name();
                    out.push_str(&format!(
                        ",{n}_incomplete,{n}_mean,{n}_p95,{n}_max,{n}_ci_lo,{n}_ci_hi,{n}_ci_half_width"
                    ));
                }
                out.push('\n');
            }
        }
        for cell in &self.cells {
            for v in &cell.values {
                out.push_str(&fmt_f64(*v));
                out.push(',');
            }
            out.push_str(&cell.trials().to_string());
            if self.metrics.is_none() {
                out.push(',');
            }
            for m in 0..self.metric_count() {
                let quantiles = Quantiles::try_new(cell.completed_of(m));
                let ci = cell.ci_of(m);
                let row = format!(
                    "{},{},{},{},{},{},{}",
                    cell.incomplete_of(m),
                    opt_csv(cell.mean_of(m)),
                    opt_csv(quantiles.as_ref().map(|q| q.p95())),
                    opt_csv(quantiles.as_ref().map(|q| q.max())),
                    opt_csv(ci.map(|c| c.lo)),
                    opt_csv(ci.map(|c| c.hi)),
                    opt_csv(ci.map(|c| c.half_width())),
                );
                if self.metrics.is_some() {
                    out.push(',');
                }
                out.push_str(&row);
            }
            out.push('\n');
        }
        out
    }

    /// Writes [`SweepReport::to_json`] to `path` (atomically: a `.tmp`
    /// sibling is written first, then renamed over the target).
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), SweepError> {
        write_atomic(path.as_ref(), self.to_json().as_bytes())
    }

    /// Writes [`SweepReport::to_csv`] to `path` (atomically, like
    /// [`SweepReport::write_json`]).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), SweepError> {
        write_atomic(path.as_ref(), self.to_csv().as_bytes())
    }

    /// Reloads an artifact written by [`SweepReport::to_json`] — either
    /// format: every `dg-sweep/1` shape ever written parses (and
    /// re-serializes to its exact bytes), and `dg-sweep/2` adds the
    /// metric declarations and per-trial sample rows.
    ///
    /// Statistics are recomputed from the samples; the embedded
    /// fingerprint is verified against the reloaded *configuration*
    /// (axes, metrics, seed, budget), so a truncated artifact or one
    /// from a different sweep is rejected instead of quietly resuming
    /// the wrong experiment. Sample values themselves are data, not
    /// configuration — they are validated structurally (finite numbers
    /// or `null`, rows exactly one slot per declared metric) but
    /// otherwise trusted as written.
    pub fn from_json(text: &str) -> Result<Self, SweepError> {
        let doc = json::parse(text)?;
        let format = doc.get("format")?.as_str()?;
        if format != FORMAT && format != FORMAT_V2 {
            return Err(SweepError::Mismatch(format!(
                "artifact format {format:?}, expected {FORMAT:?} or {FORMAT_V2:?}"
            )));
        }
        let metrics = if format == FORMAT_V2 {
            let mut metrics: Vec<Metric> = Vec::new();
            for m in doc.get("metrics")?.as_arr()? {
                let metric = parse_metric(m)?;
                if metrics.iter().any(|o| o.name() == metric.name()) {
                    return Err(SweepError::Parse(format!(
                        "duplicate metric {:?}",
                        metric.name()
                    )));
                }
                metrics.push(metric);
            }
            if metrics.is_empty() {
                return Err(SweepError::Parse(
                    "dg-sweep/2 artifact declares no metrics".into(),
                ));
            }
            Some(metrics)
        } else {
            None
        };
        let base_seed = doc.get("base_seed")?.as_u64()?;
        let budget_doc = doc.get("budget")?;
        let target_doc = budget_doc.get("ci_target")?;
        let ci_target = if target_doc.is_null() {
            None
        } else if let Ok(v) = target_doc.get("absolute") {
            Some(CiTarget::Absolute(v.as_f64()?))
        } else {
            Some(CiTarget::Relative(target_doc.get("relative")?.as_f64()?))
        };
        let budget = TrialBudget {
            min_trials: budget_doc.get("min_trials")?.as_usize()?,
            max_trials: budget_doc.get("max_trials")?.as_usize()?,
            ci_target,
        };
        // Reject malformed values with an Err here — the Axis/serializer
        // constructors downstream assert on them (a library panic is the
        // wrong response to a corrupted file).
        let finite = |v: f64, what: &str| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(SweepError::Parse(format!("non-finite {what}: {v}")))
            }
        };
        let mut axes = Vec::new();
        for axis in doc.get("axes")?.as_arr()? {
            let name = axis.get("name")?.as_str()?.to_string();
            if name.is_empty() {
                return Err(SweepError::Parse("empty axis name".into()));
            }
            let mut values = Vec::new();
            for v in axis.get("values")?.as_arr()? {
                values.push(finite(v.as_f64()?, "axis value")?);
            }
            if values.is_empty() {
                return Err(SweepError::Parse(format!("axis {name:?} has no values")));
            }
            axes.push(Axis::explicit(name, values));
        }
        // Optional: sweeps without a max_rounds policy omit the key.
        let max_rounds = match doc.get("max_rounds") {
            Ok(arr) => {
                let mut caps = Vec::new();
                for v in arr.as_arr()? {
                    let cap = v.as_u64()?;
                    caps.push(u32::try_from(cap).map_err(|_| {
                        SweepError::Parse(format!("max_rounds cap {cap} exceeds u32"))
                    })?);
                }
                Some(caps)
            }
            Err(_) => None,
        };
        let mut cells = Vec::new();
        for (i, cell) in doc.get("cells")?.as_arr()?.iter().enumerate() {
            let id = cell.get("id")?.as_usize()?;
            if id != i {
                return Err(SweepError::Parse(format!(
                    "cell {i} has out-of-order id {id}"
                )));
            }
            let mut values = Vec::new();
            for v in cell.get("values")?.as_arr()? {
                values.push(finite(v.as_f64()?, "cell value")?);
            }
            let mut samples = Vec::new();
            for s in cell.get("samples")?.as_arr()? {
                let slot = |s: &json::Json| -> Result<Option<f64>, SweepError> {
                    Ok(if s.is_null() {
                        None
                    } else {
                        Some(finite(s.as_f64()?, "sample")?)
                    })
                };
                match &metrics {
                    // v1: a flat scalar per trial — a width-1 row.
                    None => samples.push(vec![slot(s)?]),
                    // v2: one row per trial, one slot per declared metric.
                    Some(metrics) => {
                        let row = s.as_arr()?;
                        if row.len() != metrics.len() {
                            return Err(SweepError::Parse(format!(
                                "sample row has {} slots for {} metrics",
                                row.len(),
                                metrics.len()
                            )));
                        }
                        samples.push(row.iter().map(slot).collect::<Result<_, _>>()?);
                    }
                }
            }
            cells.push(CellReport {
                id,
                values,
                samples,
                decided: cell.get("decided")?.as_bool()?,
            });
        }
        let report = SweepReport {
            axes,
            base_seed,
            budget,
            max_rounds,
            metrics,
            cells,
        };
        let expected = doc.get("fingerprint")?.as_u64()?;
        let actual = report.fingerprint();
        if expected != actual {
            return Err(SweepError::Mismatch(format!(
                "artifact fingerprint {expected} != recomputed {actual}"
            )));
        }
        Ok(report)
    }
}

/// Serializes a [`MetricStopping`] (shared by artifact and spec
/// writers, so the two stay in canonical agreement).
pub(crate) fn stopping_json(stopping: MetricStopping) -> String {
    match stopping {
        MetricStopping::Default => "\"default\"".to_string(),
        MetricStopping::Target(CiTarget::Absolute(v)) => {
            format!("{{\"absolute\": {}}}", fmt_f64(v))
        }
        MetricStopping::Target(CiTarget::Relative(v)) => {
            format!("{{\"relative\": {}}}", fmt_f64(v))
        }
        MetricStopping::Observe => "\"observe\"".to_string(),
    }
}

/// Parses one metric declaration: the canonical object form
/// `{"name": ..., "stopping": ...}` (stopping `"default"`, `"observe"`,
/// `{"absolute": v}` or `{"relative": v}`), or — for forgiving wire
/// specs — a bare name string meaning default stopping.
pub(crate) fn parse_metric(m: &json::Json) -> Result<Metric, SweepError> {
    if let Ok(name) = m.as_str() {
        if name.is_empty() {
            return Err(SweepError::Parse("empty metric name".into()));
        }
        return Ok(Metric::new(name));
    }
    let name = m.get("name")?.as_str()?;
    if name.is_empty() {
        return Err(SweepError::Parse("empty metric name".into()));
    }
    let stopping = m.get("stopping")?;
    if let Ok(tag) = stopping.as_str() {
        return match tag {
            "default" => Ok(Metric::new(name)),
            "observe" => Ok(Metric::observe(name)),
            other => Err(SweepError::Parse(format!(
                "metric {name:?} has unknown stopping {other:?}"
            ))),
        };
    }
    let (tag, v) = if let Ok(v) = stopping.get("absolute") {
        ("absolute", v.as_f64()?)
    } else {
        ("relative", stopping.get("relative")?.as_f64()?)
    };
    if !(v.is_finite() && v > 0.0) {
        return Err(SweepError::Parse(format!(
            "metric {name:?} {tag} target must be strictly positive, got {v}"
        )));
    }
    Ok(Metric::target(
        name,
        if tag == "absolute" {
            CiTarget::Absolute(v)
        } else {
            CiTarget::Relative(v)
        },
    ))
}

/// Serializes a *sample*: `null` for censored, strict otherwise — a
/// non-finite sample is corrupted data and must not be written.
fn opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

/// Serializes a *derived statistic*: unlike samples, these can overflow
/// to non-finite even over finite samples (the variance of `{f64::MAX,
/// -f64::MAX}`, say), and they are recomputed from the samples on
/// reload — so an overflowed statistic serializes as absent instead of
/// panicking the writer on an artifact `from_json` accepts.
fn opt_stat(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => fmt_f64(v),
        _ => "null".to_string(),
    }
}

fn opt_csv(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => fmt_f64(v),
        _ => String::new(),
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SweepError> {
    // The `store.write.err` injection site: a transient failure here
    // exercises the bounded retry every checkpoint/artifact writer
    // wraps around this function. Injected *before* the write, so a
    // fired fault never leaves a torn temporary behind.
    dg_fault::io_check("store.write.err")?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// FNV-1a fingerprint over a sweep's identity: format, axes (names and
/// exact value bits), the per-cell round caps (when a policy is
/// attached — cap-less sweeps hash exactly as before, so their old
/// artifacts stay resumable), the declared metrics (when present — the
/// format tag changes with them, so no metric-less fingerprint can
/// collide with a multi-metric one), base seed, and budget. Two sweeps
/// share a fingerprint exactly when their per-`(cell, trial)` seed
/// streams, round caps, sampled metrics and stopping rules coincide —
/// the precondition for resuming from an artifact.
pub(crate) fn fingerprint(
    axes: &[Axis],
    max_rounds: Option<&[u32]>,
    metrics: Option<&[Metric]>,
    base_seed: u64,
    budget: &TrialBudget,
) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
    };
    eat(if metrics.is_some() { FORMAT_V2 } else { FORMAT }.as_bytes());
    for axis in axes {
        eat(axis.name().as_bytes());
        eat(&[0]);
        for v in axis.values() {
            eat(&v.to_bits().to_le_bytes());
        }
        eat(&[1]);
    }
    if let Some(caps) = max_rounds {
        eat(&[2]);
        for cap in caps {
            eat(&cap.to_le_bytes());
        }
    }
    if let Some(metrics) = metrics {
        eat(&[3]);
        for m in metrics {
            eat(m.name().as_bytes());
            eat(&[0]);
            match m.stopping() {
                MetricStopping::Default => eat(&[0]),
                MetricStopping::Target(CiTarget::Absolute(v)) => {
                    eat(&[1]);
                    eat(&v.to_bits().to_le_bytes());
                }
                MetricStopping::Target(CiTarget::Relative(v)) => {
                    eat(&[2]);
                    eat(&v.to_bits().to_le_bytes());
                }
                MetricStopping::Observe => eat(&[3]),
            }
        }
    }
    eat(&base_seed.to_le_bytes());
    eat(&(budget.min_trials as u64).to_le_bytes());
    eat(&(budget.max_trials as u64).to_le_bytes());
    match budget.ci_target {
        None => eat(&[0]),
        Some(CiTarget::Absolute(v)) => {
            eat(&[1]);
            eat(&v.to_bits().to_le_bytes());
        }
        Some(CiTarget::Relative(v)) => {
            eat(&[2]);
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Width-1 rows from a flat list — the single-metric sample shape.
    fn rows1(samples: Vec<Option<f64>>) -> Vec<Vec<Option<f64>>> {
        samples.into_iter().map(|s| vec![s]).collect()
    }

    fn sample_report() -> SweepReport {
        SweepReport {
            axes: vec![Axis::ints("n", [16, 32]), Axis::explicit("q", [0.1, 0.25])],
            base_seed: u64::MAX - 17,
            budget: TrialBudget::adaptive(3, 9, CiTarget::Relative(0.05)),
            max_rounds: None,
            metrics: None,
            cells: vec![
                CellReport {
                    id: 0,
                    values: vec![16.0, 0.1],
                    samples: rows1(vec![Some(4.0), Some(6.0), Some(5.0)]),
                    decided: true,
                },
                CellReport {
                    id: 1,
                    values: vec![16.0, 0.25],
                    samples: rows1(vec![Some(7.0), None, Some(9.0)]),
                    decided: true,
                },
                CellReport {
                    id: 2,
                    values: vec![32.0, 0.1],
                    samples: rows1(vec![Some(1.0 / 3.0)]),
                    decided: false,
                },
                CellReport {
                    id: 3,
                    values: vec![32.0, 0.25],
                    samples: vec![],
                    decided: false,
                },
            ],
        }
    }

    /// A two-metric report in the shapes a flooding sweep produces:
    /// per-metric censoring (rounds `None`, messages counted), an
    /// undecided cell, an empty cell.
    fn metric_report() -> SweepReport {
        SweepReport {
            axes: vec![Axis::ints("n", [16]), Axis::explicit("q", [0.1, 0.25])],
            base_seed: 99,
            budget: TrialBudget::adaptive(2, 6, CiTarget::Relative(0.1)),
            max_rounds: None,
            metrics: Some(vec![
                Metric::new("rounds"),
                Metric::target("messages", CiTarget::Relative(0.2)),
                Metric::observe("coverage"),
            ]),
            cells: vec![
                CellReport {
                    id: 0,
                    values: vec![16.0, 0.1],
                    samples: vec![
                        vec![Some(12.0), Some(480.0), Some(1.0)],
                        vec![None, Some(520.0), Some(0.75)],
                        vec![Some(13.0), Some(470.0), Some(1.0)],
                    ],
                    decided: true,
                },
                CellReport {
                    id: 1,
                    values: vec![16.0, 0.25],
                    samples: vec![vec![None, Some(610.0), Some(0.5)]],
                    decided: false,
                },
            ],
        }
    }

    #[test]
    fn derived_statistics() {
        let r = sample_report();
        let c = r.cell(0);
        assert_eq!(c.trials(), 3);
        assert_eq!(c.incomplete(), 0);
        assert_eq!(c.mean(), Some(5.0));
        assert_eq!(c.max(), Some(6.0));
        assert!(c.ci().is_some());
        let censored = r.cell(1);
        assert_eq!(censored.incomplete(), 1);
        assert_eq!(censored.mean(), Some(8.0));
        let empty = r.cell(3);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.p95(), None);
        assert!(empty.ci().is_none());
        assert!(!r.is_complete());
        assert_eq!(r.total_trials(), 7);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let r = sample_report();
        let json = r.to_json();
        let reloaded = SweepReport::from_json(&json).unwrap();
        assert_eq!(reloaded, r);
        assert_eq!(reloaded.to_json(), json);
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let r = sample_report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.cells().len());
        assert!(lines[0].starts_with("n,q,trials,incomplete,mean"));
        assert!(lines[1].starts_with("16,0.1,3,0,5,"));
        // Undefined stats serialize as empty fields, not NaN.
        assert!(lines[4].contains(",,"));
        assert!(!csv.contains("NaN"));
    }

    #[test]
    fn tampered_artifact_rejected() {
        let r = sample_report();
        let json = r.to_json();
        let tampered = json.replace("\"base_seed\": 18446744073709551598", "\"base_seed\": 7");
        assert_ne!(json, tampered);
        assert!(matches!(
            SweepReport::from_json(&tampered),
            Err(SweepError::Mismatch(_))
        ));
        assert!(matches!(
            SweepReport::from_json("{\"format\": \"other/9\"}"),
            Err(SweepError::Mismatch(_))
        ));
        assert!(SweepReport::from_json("not json").is_err());
    }

    #[test]
    fn corrupted_artifacts_error_instead_of_panicking() {
        let json = sample_report().to_json();
        // An emptied axis would trip Axis::validated's assert; the
        // loader must surface Parse instead.
        let empty_axis = json.replace("\"values\": [16, 32]", "\"values\": []");
        assert!(matches!(
            SweepReport::from_json(&empty_axis),
            Err(SweepError::Parse(_))
        ));
        // An overflowing token parses to infinity on its own (Rust f64
        // saturates); as a sample it must be rejected up front, not
        // panic the next serialization.
        let inf_sample = json.replace("\"samples\": [4, 6, 5]", "\"samples\": [4, 1e999, 5]");
        assert_ne!(json, inf_sample);
        assert!(matches!(
            SweepReport::from_json(&inf_sample),
            Err(SweepError::Parse(_))
        ));
    }

    #[test]
    fn fingerprint_sensitive_to_config() {
        let r = sample_report();
        let base = fingerprint(&r.axes, None, None, r.base_seed, &r.budget);
        assert_ne!(
            base,
            fingerprint(&r.axes, None, None, r.base_seed ^ 1, &r.budget)
        );
        assert_ne!(
            base,
            fingerprint(&r.axes[..1], None, None, r.base_seed, &r.budget)
        );
        let mut other = r.budget;
        other.max_trials += 1;
        assert_ne!(base, fingerprint(&r.axes, None, None, r.base_seed, &other));
        // A max_rounds policy changes the trials' outcomes, so it must
        // change the fingerprint — per cap value, not just presence.
        let caps = [10u32, 20, 30, 40];
        let with_caps = fingerprint(&r.axes, Some(&caps), None, r.base_seed, &r.budget);
        assert_ne!(base, with_caps);
        let other_caps = [10u32, 20, 30, 41];
        assert_ne!(
            with_caps,
            fingerprint(&r.axes, Some(&other_caps), None, r.base_seed, &r.budget)
        );
    }

    #[test]
    fn fingerprint_sensitive_to_metrics() {
        let r = sample_report();
        let base = fingerprint(&r.axes, None, None, r.base_seed, &r.budget);
        let one = vec![Metric::new("rounds")];
        let with_metrics = fingerprint(&r.axes, None, Some(&one), r.base_seed, &r.budget);
        assert_ne!(base, with_metrics);
        // Name, order, and stopping mode all enter the hash.
        for other in [
            vec![Metric::new("messages")],
            vec![Metric::new("rounds"), Metric::new("messages")],
            vec![Metric::observe("rounds")],
            vec![Metric::target("rounds", CiTarget::Relative(0.1))],
            vec![Metric::target("rounds", CiTarget::Absolute(0.1))],
        ] {
            assert_ne!(
                with_metrics,
                fingerprint(&r.axes, None, Some(&other), r.base_seed, &r.budget),
                "{other:?}"
            );
        }
        let two = vec![Metric::new("rounds"), Metric::new("messages")];
        let swapped = vec![Metric::new("messages"), Metric::new("rounds")];
        assert_ne!(
            fingerprint(&r.axes, None, Some(&two), r.base_seed, &r.budget),
            fingerprint(&r.axes, None, Some(&swapped), r.base_seed, &r.budget)
        );
    }

    #[test]
    fn max_rounds_round_trips_and_stays_optional() {
        // Cap-less artifacts serialize without the key at all (old
        // artifacts keep their exact bytes and fingerprints)...
        let bare = sample_report();
        assert!(!bare.to_json().contains("max_rounds"));
        // ...and capped ones round-trip caps and fingerprint.
        let mut capped = sample_report();
        capped.max_rounds = Some(vec![100, 200, 300, 400]);
        let json = capped.to_json();
        assert!(json.contains("\"max_rounds\": [100, 200, 300, 400]"));
        let reloaded = SweepReport::from_json(&json).unwrap();
        assert_eq!(reloaded, capped);
        assert_eq!(
            reloaded.max_rounds_table(),
            Some(&[100u32, 200, 300, 400][..])
        );
        assert_eq!(reloaded.to_json(), json);
        // A tampered cap is a fingerprint mismatch, not a silent resume.
        let tampered = json.replace("[100, 200, 300, 400]", "[100, 200, 300, 999]");
        assert!(matches!(
            SweepReport::from_json(&tampered),
            Err(SweepError::Mismatch(_))
        ));
    }

    #[test]
    fn cell_at_is_exact_or_none() {
        let r = sample_report();
        // Grid: n in [16, 32] x q in [0.1, 0.25], ids row-major.
        let hit = r.cell_at(&[("n", 32.0), ("q", 0.1)]).unwrap().unwrap();
        assert_eq!(hit.id, 2);
        // Order of query pairs is irrelevant.
        let hit = r.cell_at(&[("q", 0.25), ("n", 16.0)]).unwrap().unwrap();
        assert_eq!(hit.id, 1);
        // Off-grid coordinates are a miss, not an error.
        assert!(r.cell_at(&[("n", 20.0), ("q", 0.1)]).unwrap().is_none());
        // Malformed queries are Query errors, never panics.
        assert!(matches!(
            r.cell_at(&[("n", 16.0)]),
            Err(SweepError::Query(_))
        ));
        assert!(matches!(
            r.cell_at(&[("n", 16.0), ("q", 0.1), ("z", 1.0)]),
            Err(SweepError::Query(_))
        ));
        assert!(matches!(
            r.cell_at(&[("n", 16.0), ("n", 32.0)]),
            Err(SweepError::Query(_))
        ));
        assert!(matches!(
            r.cell_at(&[("n", f64::NAN), ("q", 0.1)]),
            Err(SweepError::Query(_))
        ));
    }

    #[test]
    fn nearest_cell_reports_distance_and_clamps() {
        let r = sample_report();
        // An exact hit has distance zero.
        let hit = r.nearest_cell(&[("n", 16.0), ("q", 0.25)]).unwrap();
        assert_eq!(hit.cell.id, 1);
        assert!(hit.exact);
        assert_eq!(hit.distance, 0.0);
        // n = 20 is 4/16 of the n-span from 16; q exact.
        let near = r.nearest_cell(&[("n", 20.0), ("q", 0.1)]).unwrap();
        assert_eq!(near.cell.id, 0);
        assert!(!near.exact);
        assert!((near.distance - 0.25).abs() < 1e-12, "{}", near.distance);
        // Out-of-range queries clamp to the nearest endpoint, overshoot
        // reported: n = 48 is one full n-span past 32.
        let clamped = r.nearest_cell(&[("n", 48.0), ("q", 0.25)]).unwrap();
        assert_eq!(clamped.cell.id, 3);
        assert!((clamped.distance - 1.0).abs() < 1e-12);
        // Distances combine across axes (Euclidean).
        let diag = r.nearest_cell(&[("n", 20.0), ("q", 0.13)]).unwrap();
        assert_eq!(diag.cell.id, 0);
        let expected = (0.25f64.powi(2) + (0.03f64 / 0.15).powi(2)).sqrt();
        assert!((diag.distance - expected).abs() < 1e-12);
    }

    #[test]
    fn nearest_cell_ties_break_toward_earlier_values() {
        let r = sample_report();
        // n = 24 is equidistant from 16 and 32: the earlier value wins.
        let tie = r.nearest_cell(&[("n", 24.0), ("q", 0.1)]).unwrap();
        assert_eq!(tie.cell.id, 0);
        assert!((tie.distance - 0.5).abs() < 1e-12);
        // Same on the q axis: 0.175 is the midpoint of 0.1 and 0.25.
        let tie = r.nearest_cell(&[("n", 32.0), ("q", 0.175)]).unwrap();
        assert_eq!(tie.cell.id, 2);
    }

    #[test]
    fn lookups_on_single_value_and_empty_grids() {
        // A single-value axis has zero span: distance stays raw.
        let one = SweepReport {
            axes: vec![Axis::explicit("p", [0.5])],
            base_seed: 1,
            budget: TrialBudget::fixed(1),
            max_rounds: None,
            metrics: None,
            cells: vec![CellReport {
                id: 0,
                values: vec![0.5],
                samples: rows1(vec![Some(2.0)]),
                decided: true,
            }],
        };
        let near = one.nearest_cell(&[("p", 0.75)]).unwrap();
        assert_eq!(near.cell.id, 0);
        assert!((near.distance - 0.25).abs() < 1e-12);
        assert!(one.cell_at(&[("p", 0.75)]).unwrap().is_none());
        assert!(one.cell_at(&[("p", 0.5)]).unwrap().is_some());
        // The empty grid's single cell answers the empty query.
        let empty = SweepReport {
            axes: vec![],
            base_seed: 1,
            budget: TrialBudget::fixed(1),
            max_rounds: None,
            metrics: None,
            cells: vec![CellReport {
                id: 0,
                values: vec![],
                samples: vec![],
                decided: false,
            }],
        };
        assert_eq!(empty.cell_at(&[]).unwrap().unwrap().id, 0);
        let near = empty.nearest_cell(&[]).unwrap();
        assert!(near.exact);
        assert_eq!(near.distance, 0.0);
    }

    #[test]
    fn fingerprint_accessor_matches_serialized_fingerprint() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.contains(&format!("\"fingerprint\": {}", r.fingerprint())));
        assert_eq!(
            SweepReport::from_json(&json).unwrap().fingerprint(),
            r.fingerprint()
        );
    }

    #[test]
    fn max_ci_half_width_spans_cells() {
        let r = sample_report();
        let hw = r.max_ci_half_width().unwrap();
        // Cell 1 (7 and 9, df = 1) is the noisiest: 12.706 * std_err.
        assert!((hw - 12.706).abs() < 1e-9, "hw = {hw}");
    }

    #[test]
    fn per_metric_statistics_index_the_rows() {
        let r = metric_report();
        let c = r.cell(0);
        assert_eq!(r.metric_count(), 3);
        assert_eq!(r.metric_index("messages"), Some(1));
        assert_eq!(r.metric_index("delivery_p95"), None);
        assert_eq!(c.trials(), 3);
        // rounds: one censored trial; messages: all three counted.
        assert_eq!(c.incomplete_of(0), 1);
        assert_eq!(c.incomplete_of(1), 0);
        assert_eq!(c.mean_of(0), Some(12.5));
        assert_eq!(c.mean_of(1), Some(490.0));
        assert_eq!(c.max_of(1), Some(520.0));
        // The metric-0 shorthands agree with the indexed forms.
        assert_eq!(c.mean(), c.mean_of(0));
        assert_eq!(c.incomplete(), c.incomplete_of(0));
        // A single-metric report answers no metric names.
        assert_eq!(sample_report().metric_index("rounds"), None);
        assert_eq!(sample_report().metric_count(), 1);
    }

    #[test]
    fn v2_json_round_trip_is_byte_identical() {
        let r = metric_report();
        let json = r.to_json();
        assert!(json.contains("\"format\": \"dg-sweep/2\""));
        assert!(json.contains(
            "\"metrics\": [{\"name\": \"rounds\", \"stopping\": \"default\"}, \
             {\"name\": \"messages\", \"stopping\": {\"relative\": 0.2}}, \
             {\"name\": \"coverage\", \"stopping\": \"observe\"}]"
        ));
        assert!(json.contains("[null, 520, 0.75]"));
        let reloaded = SweepReport::from_json(&json).unwrap();
        assert_eq!(reloaded, r);
        assert_eq!(reloaded.to_json(), json);
        assert_eq!(reloaded.fingerprint(), r.fingerprint());
    }

    #[test]
    fn v2_rejects_malformed_metric_artifacts() {
        let json = metric_report().to_json();
        // A row that is narrower than the declaration.
        let narrow = json.replace("[null, 520, 0.75]", "[null, 520]");
        assert!(matches!(
            SweepReport::from_json(&narrow),
            Err(SweepError::Parse(_))
        ));
        // Flat v1-style samples under a v2 header.
        let flat = json.replace("[null, 520, 0.75]", "520");
        assert!(SweepReport::from_json(&flat).is_err());
        // A tampered metric declaration is a fingerprint mismatch.
        let renamed = json.replace("\"name\": \"messages\"", "\"name\": \"transmissions\"");
        assert!(matches!(
            SweepReport::from_json(&renamed),
            Err(SweepError::Mismatch(_))
        ));
        // A v1 artifact must not carry nested rows.
        let v1 = sample_report().to_json();
        let nested = v1.replace("\"samples\": [4, 6, 5]", "\"samples\": [[4], [6], [5]]");
        assert!(SweepReport::from_json(&nested).is_err());
    }

    #[test]
    fn v2_csv_has_per_metric_column_groups() {
        let r = metric_report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "n,q,trials,\
             rounds_incomplete,rounds_mean,rounds_p95,rounds_max,rounds_ci_lo,rounds_ci_hi,rounds_ci_half_width,\
             messages_incomplete,messages_mean,messages_p95,messages_max,messages_ci_lo,messages_ci_hi,messages_ci_half_width,\
             coverage_incomplete,coverage_mean,coverage_p95,coverage_max,coverage_ci_lo,coverage_ci_hi,coverage_ci_half_width"
        );
        assert_eq!(lines.len(), 1 + r.cells().len());
        assert!(lines[1].starts_with("16,0.1,3,1,12.5,"));
        // The all-censored rounds column of cell 1 is empty fields.
        assert!(lines[2].starts_with("16,0.25,1,1,,,,"));
    }

    #[test]
    fn all_censored_statistics_agree_across_accessors() {
        // The documented contract: summary() empty <=> every scalar
        // statistic None — no accessor may disagree about whether an
        // all-censored cell "has" statistics.
        let all_censored = CellReport {
            id: 0,
            values: vec![1.0],
            samples: rows1(vec![None, None, None]),
            decided: true,
        };
        let no_trials = CellReport {
            id: 1,
            values: vec![2.0],
            samples: vec![],
            decided: false,
        };
        let mixed_metrics = CellReport {
            id: 2,
            values: vec![3.0],
            // Metric 0 all-censored, metric 1 fully sampled.
            samples: vec![vec![None, Some(7.0)], vec![None, Some(9.0)]],
            decided: true,
        };
        for (cell, m) in [(&all_censored, 0), (&no_trials, 0), (&mixed_metrics, 0)] {
            assert!(cell.summary_of(m).is_empty());
            assert_eq!(cell.mean_of(m), None);
            assert_eq!(cell.p95_of(m), None);
            assert_eq!(cell.max_of(m), None);
            assert!(cell.ci_of(m).is_none());
            assert_eq!(cell.completed_of(m), Vec::<f64>::new());
            assert_eq!(cell.incomplete_of(m), cell.trials());
        }
        // ...and a metric with data is unaffected by its neighbor.
        assert!(!mixed_metrics.summary_of(1).is_empty());
        assert_eq!(mixed_metrics.mean_of(1), Some(8.0));
        assert!(mixed_metrics.p95_of(1).is_some());
        assert_eq!(mixed_metrics.max_of(1), Some(9.0));
    }
}
