//! Sweep *specifications*: the configuration half of an artifact,
//! parseable on its own.
//!
//! A [`SweepSpec`] is exactly the identity a [`crate::SweepReport`]
//! fingerprints — axes, per-cell round caps, base seed, trial budget —
//! without any samples. It exists so a sweep can be *named before it is
//! run*: a client posts a spec, the server fingerprints it, and either
//! finds the artifact in a content-addressed store or schedules the
//! sweep — with [`SweepSpec::fingerprint`] guaranteed equal to the
//! fingerprint the finished report will carry.
//!
//! ```
//! use dg_sweep::{SweepSpec, TrialBudget};
//!
//! let spec = SweepSpec::from_json(
//!     r#"{"axes": [{"name": "n", "values": [16, 32]}],
//!         "base_seed": 7,
//!         "budget": {"min_trials": 2, "max_trials": 2, "ci_target": null}}"#,
//! )
//! .unwrap();
//! let report = spec.sweep().run(|cell, trial| {
//!     Some(cell.get("n") + (trial.seed % 3) as f64)
//! }).unwrap();
//! assert_eq!(report.fingerprint(), spec.fingerprint());
//! assert_eq!(SweepSpec::of_report(&report), spec);
//! ```

use crate::axis::{Axis, Grid, Metric};
use crate::budget::{CiTarget, TrialBudget};
use crate::error::SweepError;
use crate::json::{self, fmt_f64, push_str_escaped};
use crate::report::{fingerprint, parse_metric, stopping_json, SweepReport};
use crate::runner::Sweep;

/// The configuration of one sweep: everything that enters its resume
/// fingerprint, and nothing else.
///
/// Construct programmatically ([`SweepSpec::new`]), from a finished
/// report ([`SweepSpec::of_report`]), or from the wire
/// ([`SweepSpec::from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    axes: Vec<Axis>,
    base_seed: u64,
    budget: TrialBudget,
    /// Per-cell round caps by cell id, when the sweep runs capped.
    max_rounds: Option<Vec<u32>>,
    /// Declared metrics, when the sweep records multi-metric rows
    /// (`dg-sweep/2`); `None` is the metric-less `dg-sweep/1` shape.
    metrics: Option<Vec<Metric>>,
}

impl SweepSpec {
    /// A spec over `axes` with the given seed and budget, uncapped.
    ///
    /// # Panics
    ///
    /// Panics on duplicate axis names (same rule as [`Grid::axis`]).
    pub fn new(axes: Vec<Axis>, base_seed: u64, budget: TrialBudget) -> Self {
        for (i, axis) in axes.iter().enumerate() {
            assert!(
                axes[..i].iter().all(|a| a.name() != axis.name()),
                "duplicate axis {:?}",
                axis.name()
            );
        }
        SweepSpec {
            axes,
            base_seed,
            budget,
            max_rounds: None,
            metrics: None,
        }
    }

    /// Attaches a per-cell round-cap table (by cell id).
    ///
    /// # Panics
    ///
    /// Panics if the table length is not the cell count, or any cap is
    /// `0` or `u32::MAX` (the engine's uninformed sentinel).
    pub fn with_max_rounds(mut self, caps: Vec<u32>) -> Self {
        assert_eq!(caps.len(), self.cell_count(), "one cap per cell");
        assert!(
            caps.iter().all(|&c| c > 0 && c < u32::MAX),
            "caps must be in 1..u32::MAX"
        );
        self.max_rounds = Some(caps);
        self
    }

    /// Declares the metric vector every trial records, switching the
    /// sweep to the multi-metric `dg-sweep/2` shape (same rules as
    /// [`Grid::metrics`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty metric list or duplicate metric names.
    pub fn with_metrics(mut self, metrics: Vec<Metric>) -> Self {
        assert!(!metrics.is_empty(), "declare at least one metric");
        for (i, m) in metrics.iter().enumerate() {
            assert!(
                metrics[..i].iter().all(|o| o.name() != m.name()),
                "duplicate metric {:?}",
                m.name()
            );
        }
        self.metrics = Some(metrics);
        self
    }

    /// The configuration of an existing report — the spec that, run with
    /// the same trial function, reproduces it.
    pub fn of_report(report: &SweepReport) -> Self {
        SweepSpec {
            axes: report.axes().to_vec(),
            base_seed: report.base_seed(),
            budget: report.budget(),
            max_rounds: report.max_rounds_table().map(<[u32]>::to_vec),
            metrics: report.metrics().map(<[Metric]>::to_vec),
        }
    }

    /// The spec's axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The spec's base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The spec's trial budget.
    pub fn budget(&self) -> TrialBudget {
        self.budget
    }

    /// The per-cell round caps, when attached.
    pub fn max_rounds(&self) -> Option<&[u32]> {
        self.max_rounds.as_deref()
    }

    /// The declared metrics, when the spec is multi-metric.
    pub fn metrics(&self) -> Option<&[Metric]> {
        self.metrics.as_deref()
    }

    /// Number of grid cells (product of axis lengths; 1 when empty).
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(|a| a.values().len()).product()
    }

    /// Rebuilds the [`Grid`] this spec describes (caps reattached).
    pub fn grid(&self) -> Grid {
        let mut grid = Grid::new();
        for axis in &self.axes {
            grid = grid.axis(axis.clone());
        }
        if let Some(caps) = &self.max_rounds {
            grid = grid.max_rounds(|cell| caps[cell.id()]);
        }
        if let Some(metrics) = &self.metrics {
            grid = grid.metrics(metrics.iter().cloned());
        }
        grid
    }

    /// A [`Sweep`] configured from this spec (grid, budget, seed) —
    /// attach a checkpoint and run.
    pub fn sweep(&self) -> Sweep {
        Sweep::over(self.grid())
            .budget(self.budget)
            .base_seed(self.base_seed)
    }

    /// The identity fingerprint — bit-identical to the fingerprint of
    /// the report this spec's sweep will produce
    /// ([`SweepReport::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint(
            &self.axes,
            self.max_rounds.as_deref(),
            self.metrics.as_deref(),
            self.base_seed,
            &self.budget,
        )
    }

    /// Serializes the spec (canonical form: every field explicit, caps
    /// only when attached).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"axes\": [\n");
        for (i, axis) in self.axes.iter().enumerate() {
            out.push_str("    {\"name\": ");
            push_str_escaped(&mut out, axis.name());
            out.push_str(", \"values\": [");
            for (j, v) in axis.values().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_f64(*v));
            }
            out.push_str(if i + 1 < self.axes.len() {
                "]},\n"
            } else {
                "]}\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!(
            "  \"budget\": {{\"min_trials\": {}, \"max_trials\": {}, \"ci_target\": {}}}",
            self.budget.min_trials,
            self.budget.max_trials,
            match self.budget.ci_target {
                None => "null".to_string(),
                Some(CiTarget::Absolute(v)) => format!("{{\"absolute\": {}}}", fmt_f64(v)),
                Some(CiTarget::Relative(v)) => format!("{{\"relative\": {}}}", fmt_f64(v)),
            }
        ));
        if let Some(metrics) = &self.metrics {
            out.push_str(",\n  \"metrics\": [\n");
            for (i, m) in metrics.iter().enumerate() {
                out.push_str("    {\"name\": ");
                push_str_escaped(&mut out, m.name());
                out.push_str(", \"stopping\": ");
                out.push_str(&stopping_json(m.stopping()));
                out.push_str(if i + 1 < metrics.len() { "},\n" } else { "}\n" });
            }
            out.push_str("  ]");
        }
        if let Some(caps) = &self.max_rounds {
            out.push_str(",\n  \"max_rounds\": [");
            for (i, cap) in caps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&cap.to_string());
            }
            out.push(']');
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a spec.
    ///
    /// The wire form is forgiving where that cannot change the sweep's
    /// identity: `base_seed` and `budget` may be omitted (defaulting to
    /// the [`Sweep::over`] defaults, seed `0xD15E_A5E1` and an adaptive
    /// 8–64-trial budget at 5% relative CI), `max_rounds` accepts
    /// either a single uniform cap or a full per-cell table, and each
    /// `metrics` entry accepts either the canonical
    /// `{"name": ..., "stopping": ...}` object or a bare name string
    /// (default stopping). Everything is validated here — a malformed
    /// spec is an `Err`, never a panic in a worker thread later.
    pub fn from_json(text: &str) -> Result<Self, SweepError> {
        let doc = json::parse(text)?;
        let mut axes: Vec<Axis> = Vec::new();
        for axis in doc.get("axes")?.as_arr()? {
            let name = axis.get("name")?.as_str()?.to_string();
            if name.is_empty() {
                return Err(SweepError::Parse("empty axis name".into()));
            }
            if axes.iter().any(|a| a.name() == name) {
                return Err(SweepError::Parse(format!("duplicate axis {name:?}")));
            }
            let mut values = Vec::new();
            for v in axis.get("values")?.as_arr()? {
                let v = v.as_f64()?;
                if !v.is_finite() {
                    return Err(SweepError::Parse(format!(
                        "non-finite value {v} on axis {name:?}"
                    )));
                }
                values.push(v);
            }
            if values.is_empty() {
                return Err(SweepError::Parse(format!("axis {name:?} has no values")));
            }
            axes.push(Axis::explicit(name, values));
        }
        let base_seed = match doc.get("base_seed") {
            Ok(v) => v.as_u64()?,
            Err(_) => 0xD15E_A5E1,
        };
        let budget = match doc.get("budget") {
            Ok(budget_doc) => {
                let min_trials = budget_doc.get("min_trials")?.as_usize()?;
                let max_trials = budget_doc.get("max_trials")?.as_usize()?;
                if min_trials == 0 || min_trials > max_trials {
                    return Err(SweepError::Parse(format!(
                        "budget must satisfy 1 <= min_trials <= max_trials, got {min_trials}..{max_trials}"
                    )));
                }
                let target_doc = budget_doc.get("ci_target")?;
                let ci_target = if target_doc.is_null() {
                    None
                } else {
                    let (tag, v) = if let Ok(v) = target_doc.get("absolute") {
                        ("absolute", v.as_f64()?)
                    } else {
                        ("relative", target_doc.get("relative")?.as_f64()?)
                    };
                    if !(v.is_finite() && v > 0.0) {
                        return Err(SweepError::Parse(format!(
                            "ci_target {tag} must be strictly positive, got {v}"
                        )));
                    }
                    Some(if tag == "absolute" {
                        CiTarget::Absolute(v)
                    } else {
                        CiTarget::Relative(v)
                    })
                };
                TrialBudget {
                    min_trials,
                    max_trials,
                    ci_target,
                }
            }
            Err(_) => TrialBudget::adaptive(8, 64, CiTarget::Relative(0.05)),
        };
        let metrics = match doc.get("metrics") {
            Ok(v) => {
                let mut metrics: Vec<Metric> = Vec::new();
                for m in v.as_arr()? {
                    let m = parse_metric(m)?;
                    if metrics.iter().any(|o| o.name() == m.name()) {
                        return Err(SweepError::Parse(format!(
                            "duplicate metric {:?}",
                            m.name()
                        )));
                    }
                    metrics.push(m);
                }
                if metrics.is_empty() {
                    return Err(SweepError::Parse("empty metrics list".into()));
                }
                Some(metrics)
            }
            Err(_) => None,
        };
        let spec = SweepSpec {
            axes,
            base_seed,
            budget,
            max_rounds: None,
            metrics,
        };
        let max_rounds = match doc.get("max_rounds") {
            Ok(v) => {
                let caps = match v.as_arr() {
                    Ok(arr) => {
                        let mut caps = Vec::with_capacity(arr.len());
                        for c in arr {
                            caps.push(parse_cap(c)?);
                        }
                        if caps.len() != spec.cell_count() {
                            return Err(SweepError::Parse(format!(
                                "max_rounds table has {} entries for {} cells",
                                caps.len(),
                                spec.cell_count()
                            )));
                        }
                        caps
                    }
                    // A bare number is a uniform cap for every cell.
                    Err(_) => vec![parse_cap(v)?; spec.cell_count()],
                };
                Some(caps)
            }
            Err(_) => None,
        };
        Ok(SweepSpec { max_rounds, ..spec })
    }
}

fn parse_cap(v: &json::Json) -> Result<u32, SweepError> {
    let cap = v.as_u64()?;
    match u32::try_from(cap) {
        Ok(cap) if cap > 0 && cap < u32::MAX => Ok(cap),
        _ => Err(SweepError::Parse(format!(
            "max_rounds cap {cap} out of range 1..u32::MAX"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, Trial};

    fn synthetic(cell: &Cell, trial: Trial) -> Option<f64> {
        Some(cell.values().iter().sum::<f64>() + (trial.seed % 5) as f64)
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(
            vec![Axis::ints("n", [8, 16]), Axis::explicit("q", [0.1, 0.2])],
            42,
            TrialBudget::adaptive(2, 4, CiTarget::Relative(0.5)),
        )
    }

    #[test]
    fn spec_fingerprint_matches_report_fingerprint() {
        for s in [spec(), spec().with_max_rounds(vec![10, 20, 30, 40])] {
            let report = s.sweep().run(synthetic).unwrap();
            assert_eq!(report.fingerprint(), s.fingerprint());
            assert_eq!(SweepSpec::of_report(&report), s);
            assert_eq!(report.max_rounds_table(), s.max_rounds());
        }
    }

    #[test]
    fn spec_json_round_trips_byte_identically() {
        for s in [
            spec(),
            spec().with_max_rounds(vec![10, 20, 30, 40]),
            SweepSpec::new(vec![], 7, TrialBudget::fixed(3)),
        ] {
            let json = s.to_json();
            let reloaded = SweepSpec::from_json(&json).unwrap();
            assert_eq!(reloaded, s);
            assert_eq!(reloaded.to_json(), json);
        }
    }

    #[test]
    fn wire_form_defaults_and_uniform_caps() {
        let s = SweepSpec::from_json(
            r#"{"axes": [{"name": "n", "values": [4, 8]}], "max_rounds": 500}"#,
        )
        .unwrap();
        assert_eq!(s.base_seed(), 0xD15E_A5E1);
        assert_eq!(
            s.budget(),
            TrialBudget::adaptive(8, 64, CiTarget::Relative(0.05))
        );
        assert_eq!(s.max_rounds(), Some(&[500u32, 500][..]));
        // The canonical re-serialization is explicit about all of it.
        let canon = SweepSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(canon, s);
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        let bad = [
            // No axes key at all.
            r#"{"base_seed": 1}"#,
            // Empty axis.
            r#"{"axes": [{"name": "n", "values": []}]}"#,
            // Duplicate axis.
            r#"{"axes": [{"name": "n", "values": [1]}, {"name": "n", "values": [2]}]}"#,
            // Non-finite axis value.
            r#"{"axes": [{"name": "n", "values": [1e999]}]}"#,
            // Inverted budget.
            r#"{"axes": [{"name": "n", "values": [1]}], "budget": {"min_trials": 5, "max_trials": 2, "ci_target": null}}"#,
            // Zero-trial budget.
            r#"{"axes": [{"name": "n", "values": [1]}], "budget": {"min_trials": 0, "max_trials": 2, "ci_target": null}}"#,
            // Negative CI target.
            r#"{"axes": [{"name": "n", "values": [1]}], "budget": {"min_trials": 1, "max_trials": 2, "ci_target": {"relative": -0.1}}}"#,
            // Cap table of the wrong size.
            r#"{"axes": [{"name": "n", "values": [1, 2]}], "max_rounds": [5]}"#,
            // Cap out of range.
            r#"{"axes": [{"name": "n", "values": [1]}], "max_rounds": 0}"#,
            r#"{"axes": [{"name": "n", "values": [1]}], "max_rounds": 4294967295}"#,
        ];
        for text in bad {
            assert!(SweepSpec::from_json(text).is_err(), "accepted: {text}");
        }
    }

    fn metric_spec() -> SweepSpec {
        spec().with_metrics(vec![
            Metric::new("rounds"),
            Metric::target("messages", CiTarget::Relative(0.2)),
            Metric::observe("coverage"),
        ])
    }

    #[test]
    fn metric_spec_fingerprint_matches_report_fingerprint() {
        let s = metric_spec();
        let report = s
            .sweep()
            .run_metrics(|cell, trial| {
                let base = cell.values().iter().sum::<f64>();
                vec![
                    Some(base + (trial.seed % 5) as f64),
                    Some(10.0 * base),
                    Some(0.5),
                ]
            })
            .unwrap();
        assert_eq!(report.fingerprint(), s.fingerprint());
        assert_ne!(s.fingerprint(), spec().fingerprint());
        assert_eq!(SweepSpec::of_report(&report), s);
        assert_eq!(report.metrics(), s.metrics());
    }

    #[test]
    fn metric_spec_json_round_trips_byte_identically() {
        for s in [
            metric_spec(),
            spec()
                .with_max_rounds(vec![10, 20, 30, 40])
                .with_metrics(vec![Metric::new("rounds")]),
        ] {
            let json = s.to_json();
            let reloaded = SweepSpec::from_json(&json).unwrap();
            assert_eq!(reloaded, s);
            assert_eq!(reloaded.to_json(), json);
        }
    }

    #[test]
    fn wire_form_accepts_bare_metric_names() {
        let s = SweepSpec::from_json(
            r#"{"axes": [{"name": "n", "values": [4, 8]}],
                "metrics": ["rounds", {"name": "messages", "stopping": "observe"}]}"#,
        )
        .unwrap();
        assert_eq!(
            s.metrics(),
            Some(&[Metric::new("rounds"), Metric::observe("messages")][..])
        );
        // The canonical re-serialization is the explicit object form.
        let canon = SweepSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(canon, s);
    }

    #[test]
    fn malformed_metric_specs_error_instead_of_panicking() {
        let bad = [
            // Empty metrics list.
            r#"{"axes": [{"name": "n", "values": [1]}], "metrics": []}"#,
            // Duplicate metric.
            r#"{"axes": [{"name": "n", "values": [1]}], "metrics": ["a", "a"]}"#,
            // Empty metric name.
            r#"{"axes": [{"name": "n", "values": [1]}], "metrics": [""]}"#,
            // Unknown stopping tag.
            r#"{"axes": [{"name": "n", "values": [1]}], "metrics": [{"name": "a", "stopping": "maybe"}]}"#,
            // Non-positive per-metric target.
            r#"{"axes": [{"name": "n", "values": [1]}], "metrics": [{"name": "a", "stopping": {"relative": 0}}]}"#,
        ];
        for text in bad {
            assert!(SweepSpec::from_json(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn checkpoint_resume_accepts_spec_built_sweeps() {
        // A spec-built sweep writes an artifact at its own fingerprint;
        // re-running the same spec against that artifact resumes it.
        let dir = std::env::temp_dir().join(format!("dg_sweep_spec_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = spec();
        let path = dir.join(format!("{}.json", s.fingerprint()));
        let _ = std::fs::remove_file(&path);
        let first = s.sweep().checkpoint(&path).run(synthetic).unwrap();
        let resumed = s.sweep().checkpoint(&path).run(synthetic).unwrap();
        assert_eq!(resumed.to_json(), first.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
