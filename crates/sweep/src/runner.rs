//! The adaptive `(cell × trial)` scheduler.
//!
//! One shared work pool flattens every cell's trials together: workers
//! steal whichever `(cell, trial)` item is runnable next, so small cells
//! never leave cores idle the way per-cell trial parallelism does. The
//! price of adaptivity under parallelism is paid by *bounded
//! speculation*: a cell may run a few trials past the point where the
//! stopping rule would have cut it off, and those extra samples are
//! simply discarded — the report only ever contains the deterministic
//! prefix, so scheduling order can never leak into results.

use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dg_stats::{mean_ci95_t, Summary};

use crate::axis::{Axis, Cell, Grid, Metric};
use crate::budget::{CiTarget, TrialBudget};
use crate::error::SweepError;
use crate::instrument::sweep_obs;
use crate::mix_seed;
use crate::report::{fingerprint, CellReport, SweepReport};

/// Minimum spacing between progress heartbeats (`DG_LOG=info`).
const HEARTBEAT_EVERY: Duration = Duration::from_secs(2);

/// Bounded attempts for checkpoint reads/writes that fail transiently
/// (`std::io::ErrorKind::Interrupted` and friends — the class
/// `dg_fault::io_check` injects), with deterministic backoff between
/// tries. Non-transient I/O errors still fail on the first attempt.
const IO_ATTEMPTS: u32 = 4;

/// What the scheduler does when the trial function panics.
///
/// The default, [`TrialPanic::Propagate`], preserves the historical
/// behavior: the panic unwinds out of [`Sweep::run`] (the pool drains
/// first, so it cannot deadlock). The other two policies make a sweep
/// survive faulty trials — the `dg-fault` site `sweep.trial.panic`
/// exists precisely to prove they work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialPanic {
    /// Unwind out of the sweep (default).
    Propagate,
    /// Re-run the panicked trial in place, up to `max` extra attempts
    /// per claimed trial, with its *original* seed — so a sweep that
    /// recovers from transient panics produces an artifact
    /// byte-identical to a fault-free run. Exhausting the attempts
    /// propagates the last panic.
    ///
    /// Retried trials re-enter the trial function with the same
    /// per-worker state; the state contract already requires observable
    /// behavior to be seed-determined (the engine re-randomizes cached
    /// models per trial), which is exactly what makes an in-place rerun
    /// sound.
    Retry {
        /// Extra attempts per claimed trial before giving up.
        max: u32,
    },
    /// Record the trial as fully censored (`None` in every metric slot)
    /// and keep going. Degrades gracefully at the cost of bytes: unlike
    /// [`TrialPanic::Retry`], the artifact differs from a fault-free
    /// run exactly where trials were lost.
    Censor,
}

/// Identity of one scheduled trial, handed to the trial function.
///
/// `seed == mix_seed(cell_seed, index)` and
/// `cell_seed == mix_seed(base_seed, cell.id())` — the same SplitMix64
/// derivation as `dynagraph::mix_seed`, so a trial function can hand
/// `cell_seed` to `SimulationBuilder::base_seed` and `index` to
/// `SimulationBuilder::run_trial` and the engine derives exactly `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Trial index within the cell (0-based, dense).
    pub index: usize,
    /// The cell's derived seed, `mix_seed(base_seed, cell.id())`.
    pub cell_seed: u64,
    /// This trial's derived seed, `mix_seed(cell_seed, index)`.
    pub seed: u64,
}

/// Builder-driven sweep runner: a [`Grid`] × a trial function, scheduled
/// adaptively. Construct with [`Sweep::over`].
#[derive(Debug, Clone)]
pub struct Sweep {
    grid: Grid,
    budget: TrialBudget,
    base_seed: u64,
    parallel: bool,
    threads: Option<usize>,
    lookahead: usize,
    run_budget: Option<usize>,
    checkpoint: Option<PathBuf>,
    on_trial_panic: TrialPanic,
}

impl Sweep {
    /// Starts configuring a sweep over `grid`. Defaults: adaptive budget
    /// (8–64 trials per cell, 5% relative CI target), base seed
    /// `0xD15E_A5E1`, parallel execution on all available cores,
    /// speculation lookahead 2, no run budget, no checkpoint, panics
    /// propagate ([`TrialPanic::Propagate`]).
    pub fn over(grid: Grid) -> Sweep {
        Sweep {
            grid,
            budget: TrialBudget::adaptive(8, 64, crate::CiTarget::Relative(0.05)),
            base_seed: 0xD15E_A5E1,
            parallel: true,
            threads: None,
            lookahead: 2,
            run_budget: None,
            checkpoint: None,
            on_trial_panic: TrialPanic::Propagate,
        }
    }

    /// Sets the per-cell trial budget (see [`TrialBudget`]).
    pub fn budget(mut self, budget: TrialBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Base seed; cell `c` uses `mix_seed(base_seed, c)` and its trial
    /// `i` uses `mix_seed(mix_seed(base_seed, c), i)`.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Enables/disables the worker pool (default enabled; results are
    /// byte-identical either way).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the exact worker count (default: all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Caps how many trials a cell may run *past* the earliest point the
    /// stopping rule could cut it off (default 2). Larger values keep
    /// more workers busy near the end of a cell at the cost of more
    /// discarded speculative trials; zero serializes each cell's
    /// stopping decision exactly.
    pub fn lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Stops scheduling new trials after `trials` completions in *this
    /// run* and returns a partial report (cells keep their complete
    /// sample prefixes, `decided` only where the rule already fired).
    /// With a [`Sweep::checkpoint`], this time-boxes a long sweep: rerun
    /// with the same configuration to continue where it stopped.
    pub fn run_budget(mut self, trials: usize) -> Self {
        self.run_budget = Some(trials);
        self
    }

    /// Makes the sweep resumable: if `path` holds an artifact written by
    /// a sweep with this exact configuration (grid, seed, budget), its
    /// samples are reloaded and only missing trials run; the artifact is
    /// rewritten (atomically) as cells finish and once more on return.
    ///
    /// An artifact from a *different* configuration is an error, not a
    /// silent restart.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the panic policy for the trial function (see
    /// [`TrialPanic`]; default [`TrialPanic::Propagate`]). The policy
    /// never changes *which* `(cell, trial)` seeds run, only what
    /// happens when one of them unwinds — under
    /// [`TrialPanic::Retry`] the recovered artifact is byte-identical
    /// to a fault-free run.
    pub fn on_trial_panic(mut self, policy: TrialPanic) -> Self {
        self.on_trial_panic = policy;
        self
    }

    /// Runs the sweep: every cell of the grid gets between
    /// `budget.min_trials` and `budget.max_trials` trials, stopping
    /// early per cell once the Student-t 95% CI half-width over its
    /// completed samples meets the budget's target.
    ///
    /// `trial_fn(cell, trial)` must be a pure function of `(cell,
    /// trial.seed)`; it returns `Some(sample)` (finite) or `None` for a
    /// censored trial (e.g. a round cap hit). The report is
    /// byte-identical however the sweep is scheduled — serial, parallel,
    /// or resumed.
    ///
    /// # Errors
    ///
    /// Only checkpoint IO/validation can fail; a sweep without
    /// [`Sweep::checkpoint`] always returns `Ok`.
    ///
    /// # Panics
    ///
    /// Panics if `trial_fn` panics or returns a non-finite sample
    /// (censor with `None` instead — `NaN`/`inf` would silently defeat
    /// the stopping rule and have no artifact representation), or if
    /// the grid declares [`crate::Grid::metrics`] (a multi-metric sweep
    /// must sample every declared metric: use [`Sweep::run_metrics`]).
    pub fn run<F>(self, trial_fn: F) -> Result<SweepReport, SweepError>
    where
        F: Fn(&Cell, Trial) -> Option<f64> + Sync,
    {
        self.run_with_state(|| (), |cell, trial, ()| trial_fn(cell, trial))
    }

    /// Runs a multi-metric sweep: `trial_fn(cell, trial)` returns one
    /// `Option<f64>` slot per metric the grid declares
    /// ([`crate::Grid::metrics`]), in declaration order — `None` marks
    /// that metric censored *in that trial* (a round cap can censor
    /// `rounds` while `messages` is still counted). A cell stops once
    /// every gating metric meets its CI target
    /// ([`TrialBudget::stop_at_metrics`]) or the trial cap hits, and the
    /// artifact is written in the `dg-sweep/2` format. The
    /// byte-determinism contract is identical to [`Sweep::run`].
    ///
    /// # Errors
    ///
    /// Same as [`Sweep::run`].
    ///
    /// # Panics
    ///
    /// Panics if `trial_fn` panics, returns a row whose length differs
    /// from the declared metric count, returns a non-finite slot, or if
    /// the grid declares no metrics (use [`Sweep::run`]).
    pub fn run_metrics<F>(self, trial_fn: F) -> Result<SweepReport, SweepError>
    where
        F: Fn(&Cell, Trial) -> Vec<Option<f64>> + Sync,
    {
        self.run_metrics_with_state(|| (), |cell, trial, ()| trial_fn(cell, trial))
    }

    /// [`Sweep::run_metrics`] with per-worker state — the multi-metric
    /// form of [`Sweep::run_with_state`], with the same reuse and
    /// determinism contracts.
    ///
    /// # Errors
    ///
    /// Same as [`Sweep::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Sweep::run_metrics`].
    pub fn run_metrics_with_state<S, I, F>(
        self,
        worker_state: I,
        trial_fn: F,
    ) -> Result<SweepReport, SweepError>
    where
        I: Fn() -> S + Sync,
        F: Fn(&Cell, Trial, &mut S) -> Vec<Option<f64>> + Sync,
    {
        assert!(
            self.grid.metrics_table().is_some(),
            "run_metrics on a grid without declared metrics: attach Grid::metrics, or use Sweep::run"
        );
        self.run_rows(worker_state, trial_fn)
    }

    /// [`Sweep::run`] with per-worker state — the zero-rebuild hook.
    ///
    /// Each worker thread calls `worker_state()` once and hands the
    /// resulting value mutably to every trial it executes, so expensive
    /// per-trial setup (model construction, buffer allocation) can be
    /// paid once per worker and reused: hold a per-cell model cache plus
    /// an engine `TrialScratch` in `S` and drive trials through
    /// `SimulationBuilder::run_trial_with`. A cell's model is then
    /// constructed once per worker per cell and merely re-randomized
    /// (`reset`) for the cell's remaining trials.
    ///
    /// The determinism contract is unchanged: `trial_fn(cell, trial,
    /// state)` must return a pure function of `(cell, trial.seed)` —
    /// state may only carry *reusable* resources whose observable
    /// behavior is seed-determined (exactly what the engine's model
    /// reuse contract guarantees), never results. The report stays
    /// byte-identical however the `(cell × trial)` items are scheduled.
    ///
    /// # Errors
    ///
    /// Same as [`Sweep::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Sweep::run`].
    pub fn run_with_state<S, I, F>(
        self,
        worker_state: I,
        trial_fn: F,
    ) -> Result<SweepReport, SweepError>
    where
        I: Fn() -> S + Sync,
        F: Fn(&Cell, Trial, &mut S) -> Option<f64> + Sync,
    {
        assert!(
            self.grid.metrics_table().is_none(),
            "this grid declares metrics; sample them with Sweep::run_metrics"
        );
        self.run_rows(worker_state, |cell, trial, state| {
            vec![trial_fn(cell, trial, state)]
        })
    }

    /// The one scheduler: every sample is a row (`width` slots, width 1
    /// for classic scalar sweeps), and the stopping rule is dispatched
    /// on whether the grid declares metrics. Both public entry points
    /// funnel here, so scalar and multi-metric sweeps share scheduling,
    /// checkpointing, and determinism behavior exactly.
    fn run_rows<S, I, F>(self, worker_state: I, trial_fn: F) -> Result<SweepReport, SweepError>
    where
        I: Fn() -> S + Sync,
        F: Fn(&Cell, Trial, &mut S) -> Vec<Option<f64>> + Sync,
    {
        let cells = self.grid.cells();
        let cell_seeds: Vec<u64> = cells
            .iter()
            .map(|c| mix_seed(self.base_seed, c.id() as u64))
            .collect();

        let metrics = self.grid.metrics_table();
        let mut states: Vec<CellState> =
            cells.iter().map(|_| CellState::new(&self.budget)).collect();
        if let Some(path) = &self.checkpoint {
            if path.exists() {
                let text = dg_fault::retry(IO_ATTEMPTS, transient, || {
                    dg_fault::io_check("store.read.err")?;
                    Ok(std::fs::read_to_string(path)?)
                })?;
                let prior = SweepReport::from_json(&text)?;
                let ours = fingerprint(
                    self.grid.axes(),
                    self.grid.max_rounds_table(),
                    metrics,
                    self.base_seed,
                    &self.budget,
                );
                let theirs = prior.fingerprint();
                if ours != theirs {
                    return Err(SweepError::Mismatch(format!(
                        "checkpoint {} belongs to a different sweep (fingerprint {theirs} != {ours})",
                        path.display()
                    )));
                }
                for (state, cell) in states.iter_mut().zip(prior.cells) {
                    state.preload(cell.samples, &self.budget, metrics);
                }
            }
        }

        let obs = sweep_obs();
        obs.cells_total.set(cells.len() as i64);
        obs.cells_decided
            .set(states.iter().filter(|c| c.decided.is_some()).count() as i64);

        let shared = Shared {
            state: Mutex::new(State {
                cells: states,
                cursor: 0,
                spent: 0,
                stopped: false,
                aborted: false,
                io_error: None,
            }),
            cond: Condvar::new(),
            checkpoint_io: Mutex::new(()),
            heartbeat: Mutex::new(Instant::now()),
            cells: &cells,
            cell_seeds: &cell_seeds,
            budget: self.budget,
            lookahead: self.lookahead,
            run_budget: self.run_budget,
            checkpoint: self.checkpoint.as_deref(),
            on_trial_panic: self.on_trial_panic,
            axes: self.grid.axes(),
            max_rounds: self.grid.max_rounds_table(),
            metrics,
            base_seed: self.base_seed,
        };

        let workers = self.worker_count(cells.len());
        if workers <= 1 {
            worker(&shared, &worker_state, &trial_fn);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| worker(&shared, &worker_state, &trial_fn));
                }
            });
        }

        let state = shared.state.into_inner().expect("no worker held the lock");
        if let Some(e) = state.io_error {
            return Err(e);
        }
        let report = build_report(
            self.grid.axes(),
            self.grid.max_rounds_table(),
            metrics,
            self.base_seed,
            &self.budget,
            &cells,
            &state.cells,
        );
        if let Some(path) = &self.checkpoint {
            dg_fault::retry(IO_ATTEMPTS, transient, || report.write_json(path))?;
        }
        Ok(report)
    }

    fn worker_count(&self, cells: usize) -> usize {
        if !self.parallel {
            return 1;
        }
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let upper = cells.saturating_mul(self.budget.max_trials).max(1);
        self.threads.unwrap_or(available).min(upper).max(1)
    }
}

/// One trial slot: claimed-but-running or a recorded sample row.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Running,
    Done(Vec<Option<f64>>),
}

#[derive(Debug)]
struct CellState {
    /// Trials claimed so far (`slots.len() == issued`).
    issued: usize,
    slots: Vec<Slot>,
    /// The contiguous completed prefix of sample rows, in trial order.
    samples: Vec<Vec<Option<f64>>>,
    /// First prefix length the stopping rule has not yet ruled out.
    next_check: usize,
    /// Final trial count, once the rule fires.
    decided: Option<usize>,
}

impl CellState {
    fn new(budget: &TrialBudget) -> Self {
        CellState {
            issued: 0,
            slots: Vec::new(),
            samples: Vec::new(),
            next_check: budget.min_trials,
            decided: None,
        }
    }

    /// Adopts a checkpointed sample prefix, re-deriving the stopping
    /// decision (a pure function of the samples, so this matches what
    /// the interrupted run had concluded).
    fn preload(
        &mut self,
        samples: Vec<Vec<Option<f64>>>,
        budget: &TrialBudget,
        metrics: Option<&[Metric]>,
    ) {
        self.slots = samples.iter().map(|s| Slot::Done(s.clone())).collect();
        self.issued = self.slots.len();
        self.samples = samples;
        self.advance(budget, metrics);
    }

    /// The stopping decision over the first `k` sample rows — the
    /// single-metric rule for metric-less sweeps (byte-compatible with
    /// every `dg-sweep/1` artifact), the every-gating-metric rule
    /// otherwise.
    fn stops(&self, k: usize, budget: &TrialBudget, metrics: Option<&[Metric]>) -> bool {
        match metrics {
            Some(metrics) => budget.stop_at_metrics(metrics, &self.samples[..k]),
            None => {
                let flat: Vec<Option<f64>> = self.samples[..k]
                    .iter()
                    .map(|row| row.first().copied().flatten())
                    .collect();
                budget.stop_at(&flat)
            }
        }
    }

    /// Advances the contiguous prefix and the stopping decision.
    fn advance(&mut self, budget: &TrialBudget, metrics: Option<&[Metric]>) -> bool {
        while self.samples.len() < self.issued {
            match &self.slots[self.samples.len()] {
                Slot::Done(s) => self.samples.push(s.clone()),
                Slot::Running => break,
            }
        }
        while self.decided.is_none() && self.next_check <= self.samples.len() {
            if self.stops(self.next_check, budget, metrics) {
                self.decided = Some(self.next_check);
                // Speculative trials past the decision point are
                // discarded: the report holds the deterministic prefix.
                self.samples.truncate(self.next_check);
                self.slots.truncate(self.next_check);
                self.issued = self.issued.min(self.next_check);
                return true;
            }
            self.next_check += 1;
        }
        false
    }

    fn claimable(&self, budget: &TrialBudget, lookahead: usize) -> bool {
        self.decided.is_none()
            && self.issued
                < budget
                    .max_trials
                    .min(self.next_check.saturating_add(lookahead))
    }
}

struct State {
    cells: Vec<CellState>,
    /// Rotating scan start, so workers spread across cells instead of
    /// piling onto cell 0.
    cursor: usize,
    /// Trials completed in this run (speculative ones included — they
    /// consumed work).
    spent: usize,
    /// Run budget exhausted: stop claiming, finish in-flight trials.
    stopped: bool,
    /// A worker panicked mid-trial: everyone drains out so the panic can
    /// propagate instead of deadlocking the pool.
    aborted: bool,
    io_error: Option<SweepError>,
}

impl State {
    fn all_decided(&self) -> bool {
        self.cells.iter().all(|c| c.decided.is_some())
    }
}

struct Shared<'a> {
    state: Mutex<State>,
    cond: Condvar,
    /// Serializes checkpoint writes: snapshotting the state and renaming
    /// the artifact happen under this lock, so concurrent cell decisions
    /// can neither interleave on the shared `.tmp` sibling nor rename an
    /// older snapshot over a newer one.
    checkpoint_io: Mutex<()>,
    /// Last progress heartbeat, rate-limiting the `DG_LOG=info` line.
    heartbeat: Mutex<Instant>,
    cells: &'a [Cell],
    cell_seeds: &'a [u64],
    budget: TrialBudget,
    lookahead: usize,
    run_budget: Option<usize>,
    checkpoint: Option<&'a Path>,
    on_trial_panic: TrialPanic,
    axes: &'a [Axis],
    max_rounds: Option<&'a [u32]>,
    metrics: Option<&'a [Metric]>,
    base_seed: u64,
}

/// The transient-I/O class worth a bounded retry: exactly what
/// [`dg_fault::is_transient`] accepts, lifted over [`SweepError`].
fn transient(e: &SweepError) -> bool {
    matches!(e, SweepError::Io(io) if dg_fault::is_transient(io))
}

fn lock<'a>(shared: &'a Shared<'_>) -> MutexGuard<'a, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sets the abort flag if dropped while armed — i.e. if the trial
/// function unwinds — so waiting workers drain instead of deadlocking.
struct AbortOnPanic<'a, 'b> {
    shared: &'a Shared<'b>,
    armed: bool,
}

impl Drop for AbortOnPanic<'_, '_> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.shared).aborted = true;
            self.shared.cond.notify_all();
        }
    }
}

fn worker<S, I, F>(shared: &Shared<'_>, worker_state: &I, trial_fn: &F)
where
    I: Fn() -> S + Sync,
    F: Fn(&Cell, Trial, &mut S) -> Vec<Option<f64>> + Sync,
{
    // One state per worker thread, for the whole drain: per-cell model
    // caches and scratch buffers live exactly as long as the worker.
    let mut state = worker_state();
    loop {
        // Claim the next runnable (cell, trial) item, or exit.
        let claimed = {
            let mut st = lock(shared);
            loop {
                if st.stopped || st.aborted || st.all_decided() {
                    break None;
                }
                let n = st.cells.len();
                let start = st.cursor;
                let mut found = None;
                for off in 0..n {
                    let ci = (start + off) % n;
                    if st.cells[ci].claimable(&shared.budget, shared.lookahead) {
                        found = Some(ci);
                        break;
                    }
                }
                match found {
                    Some(ci) => {
                        let cell = &mut st.cells[ci];
                        let ti = cell.issued;
                        cell.issued += 1;
                        cell.slots.push(Slot::Running);
                        st.cursor = (ci + 1) % n;
                        break Some((ci, ti));
                    }
                    None => {
                        // Everything runnable is in flight; wait for a
                        // completion to open new work or settle a cell.
                        st = shared
                            .cond
                            .wait(st)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
            }
        };
        let Some((ci, ti)) = claimed else { return };
        sweep_obs().claims.inc();

        let cell_seed = shared.cell_seeds[ci];
        let trial = Trial {
            index: ti,
            cell_seed,
            seed: mix_seed(cell_seed, ti as u64),
        };
        let mut guard = AbortOnPanic {
            shared,
            armed: true,
        };
        let width = shared.metrics.map_or(1, <[Metric]>::len);
        // Run the trial under the panic policy. `AssertUnwindSafe` is
        // justified by the per-worker state contract: observable
        // behavior must be seed-determined, so a rerun (same `trial`,
        // same seed) after an unwind cannot depend on what the aborted
        // attempt left behind.
        let mut attempts = 0u32;
        let sample = loop {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dg_fault::fail_point("sweep.trial.panic");
                trial_fn(&shared.cells[ci], trial, &mut state)
            }));
            match result {
                Ok(row) => break row,
                Err(payload) => match shared.on_trial_panic {
                    TrialPanic::Retry { max } if attempts < max => {
                        attempts += 1;
                        sweep_obs().retries.inc();
                        dg_obs::dg_debug!(
                            "dg-sweep: trial {ti} of cell {} panicked; retry {attempts}/{max} with its original seed",
                            shared.cells[ci]
                        );
                    }
                    TrialPanic::Censor => {
                        dg_obs::dg_debug!(
                            "dg-sweep: trial {ti} of cell {} panicked; censored",
                            shared.cells[ci]
                        );
                        break vec![None; width];
                    }
                    // Propagate, or Retry out of attempts: unwind. The
                    // armed guard flips `aborted` so the pool drains.
                    _ => std::panic::resume_unwind(payload),
                },
            }
        };
        // Reject bad rows here, where the cell and trial are still
        // known — not rounds later inside artifact serialization.
        assert!(
            sample.len() == width,
            "trial function returned {} slots for {} declared metrics (cell {}, trial {ti})",
            sample.len(),
            width,
            shared.cells[ci]
        );
        for v in sample.iter().flatten() {
            assert!(
                v.is_finite(),
                "trial function returned non-finite sample {v} for cell {} trial {ti}",
                shared.cells[ci]
            );
        }
        guard.armed = false;

        let newly_decided = {
            let obs = sweep_obs();
            let mut st = lock(shared);
            st.spent += 1;
            obs.trials.inc();
            let cell = &mut st.cells[ci];
            let newly_decided = match cell.decided {
                // A speculative result past the decision point: discard.
                Some(d) if ti >= d => {
                    obs.discarded.inc();
                    false
                }
                _ => {
                    cell.slots[ti] = Slot::Done(sample);
                    cell.advance(&shared.budget, shared.metrics)
                }
            };
            if newly_decided {
                obs.cells_decided.add(1);
                if let Some(k) = st.cells[ci].decided {
                    obs.cell_trials.observe(k as f64);
                }
            }
            if shared.run_budget.is_some_and(|b| st.spent >= b) {
                st.stopped = true;
            }
            shared.cond.notify_all();
            newly_decided
        };

        // Durable progress: rewrite the artifact whenever a cell's
        // results become final (outside the lock; serialization is pure).
        if newly_decided && shared.checkpoint.is_some() {
            write_checkpoint(shared);
        }
        maybe_heartbeat(shared);
    }
}

/// Periodic human-readable progress (opt-in via `DG_LOG=info`): cells
/// decided, trials spent this run, and — for adaptive budgets — how far
/// the worst undecided cell is from each gating metric's CI target. The
/// CI math runs only here, rate-limited, never on the per-sample path,
/// and reads the same pure prefix statistics the stopping rule uses, so
/// it cannot perturb scheduling or results.
fn maybe_heartbeat(shared: &Shared<'_>) {
    if !dg_obs::log::enabled(dg_obs::log::Level::Info) {
        return;
    }
    {
        let mut last = shared
            .heartbeat
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if last.elapsed() < HEARTBEAT_EVERY {
            return;
        }
        *last = Instant::now();
    }
    let st = lock(shared);
    let decided = st.cells.iter().filter(|c| c.decided.is_some()).count();
    let spent = st.spent;
    let gaps = ci_gaps(shared, &st);
    drop(st);
    let mut line = format!(
        "dg-sweep: {decided}/{} cells decided, {spent} trials this run",
        shared.cells.len()
    );
    for (name, gap) in &gaps {
        crate::instrument::ci_gap_gauge(name).set((gap * 1000.0) as i64);
        line.push_str(&format!(", {name} CI at {:.0}% of target", gap * 100.0));
    }
    dg_obs::dg_info!("{line}");
}

/// Worst half-width-over-target ratio across undecided cells, per gating
/// metric (`("sample", …)` for scalar sweeps). Empty when nothing gates
/// (fixed budgets) or nothing is undecided.
fn ci_gaps(shared: &Shared<'_>, st: &State) -> Vec<(String, f64)> {
    let gating: Vec<(usize, String, CiTarget)> = match shared.metrics {
        Some(metrics) => metrics
            .iter()
            .enumerate()
            .filter_map(|(m, metric)| {
                metric
                    .effective_target(shared.budget.ci_target)
                    .map(|t| (m, metric.name().to_string(), t))
            })
            .collect(),
        None => shared
            .budget
            .ci_target
            .map(|t| (0, "sample".to_string(), t))
            .into_iter()
            .collect(),
    };
    let mut gaps = Vec::new();
    for (m, name, target) in gating {
        let mut worst: Option<f64> = None;
        for cell in st.cells.iter().filter(|c| c.decided.is_none()) {
            let completed: Summary = cell.samples.iter().filter_map(|row| row[m]).collect();
            let Some(ci) = mean_ci95_t(&completed) else {
                continue;
            };
            let width = match target {
                CiTarget::Absolute(a) => a,
                CiTarget::Relative(r) => r * ci.mean.abs(),
            };
            if width > 0.0 {
                let gap = ci.half_width() / width;
                worst = Some(worst.map_or(gap, |w: f64| w.max(gap)));
            }
        }
        if let Some(w) = worst {
            gaps.push((name, w));
        }
    }
    gaps
}

fn write_checkpoint(shared: &Shared<'_>) {
    let io_guard = shared
        .checkpoint_io
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let report = {
        let st = lock(shared);
        build_report(
            shared.axes,
            shared.max_rounds,
            shared.metrics,
            shared.base_seed,
            &shared.budget,
            shared.cells,
            &st.cells,
        )
    };
    let path = shared.checkpoint.expect("caller checked");
    let result = dg_fault::retry(IO_ATTEMPTS, transient, || report.write_json(path));
    sweep_obs().checkpoints.inc();
    drop(io_guard);
    if let Err(e) = result {
        let mut st = lock(shared);
        if st.io_error.is_none() {
            st.io_error = Some(e);
        }
        st.stopped = true;
        shared.cond.notify_all();
    }
}

fn build_report(
    axes: &[Axis],
    max_rounds: Option<&[u32]>,
    metrics: Option<&[Metric]>,
    base_seed: u64,
    budget: &TrialBudget,
    cells: &[Cell],
    states: &[CellState],
) -> SweepReport {
    let cells = cells
        .iter()
        .zip(states)
        .map(|(cell, state)| CellReport {
            id: cell.id(),
            values: cell.values().to_vec(),
            samples: state.samples.clone(),
            decided: state.decided.is_some(),
        })
        .collect();
    SweepReport {
        axes: axes.to_vec(),
        base_seed,
        budget: *budget,
        max_rounds: max_rounds.map(|caps| caps.to_vec()),
        metrics: metrics.map(|m| m.to_vec()),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CiTarget, Grid};

    /// A deterministic noisy "measurement": variance grows with `noise`,
    /// so adaptive budgets stop low-noise cells earlier.
    fn synthetic(cell: &Cell, trial: Trial) -> Option<f64> {
        let noise = cell.get("noise");
        let jitter = (trial.seed % 1000) as f64 / 1000.0 - 0.5;
        Some(10.0 + noise * jitter)
    }

    fn grid() -> Grid {
        Grid::new().axis(Axis::explicit("noise", [0.0, 1.0, 8.0]))
    }

    #[test]
    fn fixed_budget_runs_exactly_max_trials() {
        let report = Sweep::over(grid())
            .budget(TrialBudget::fixed(7))
            .base_seed(11)
            .run(synthetic)
            .unwrap();
        assert!(report.is_complete());
        for cell in report.cells() {
            assert_eq!(cell.trials(), 7);
        }
    }

    #[test]
    fn adaptive_budget_spends_where_noise_is() {
        let report = Sweep::over(grid())
            .budget(TrialBudget::adaptive(4, 64, CiTarget::Absolute(0.2)))
            .base_seed(11)
            .run(synthetic)
            .unwrap();
        assert!(report.is_complete());
        let trials: Vec<usize> = report.cells().iter().map(|c| c.trials()).collect();
        // Zero noise stops at min_trials; the noisiest cell needs more.
        assert_eq!(trials[0], 4);
        assert!(trials[2] > trials[0], "trials = {trials:?}");
    }

    #[test]
    fn serial_parallel_and_lookahead_agree_byte_for_byte() {
        let run = |parallel: bool, threads: usize, lookahead: usize| {
            Sweep::over(grid())
                .budget(TrialBudget::adaptive(3, 32, CiTarget::Absolute(0.5)))
                .base_seed(99)
                .parallel(parallel)
                .threads(threads)
                .lookahead(lookahead)
                .run(synthetic)
                .unwrap()
                .to_json()
        };
        let serial = run(false, 1, 0);
        assert_eq!(serial, run(true, 4, 2));
        assert_eq!(serial, run(true, 7, 5));
    }

    #[test]
    fn run_budget_stops_early_and_resume_completes() {
        let dir = std::env::temp_dir().join(format!("dg_sweep_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.json");
        let _ = std::fs::remove_file(&path);

        let config = |s: Sweep| {
            s.budget(TrialBudget::adaptive(4, 32, CiTarget::Absolute(0.3)))
                .base_seed(5)
        };
        let full = config(Sweep::over(grid())).run(synthetic).unwrap();

        let partial = config(Sweep::over(grid()))
            .checkpoint(&path)
            .run_budget(5)
            // One worker: with a pool, in-flight speculative trials could
            // outrun the budget and complete the sweep anyway.
            .threads(1)
            .run(synthetic)
            .unwrap();
        assert!(!partial.is_complete());
        assert!(partial.total_trials() < full.total_trials());

        let resumed = config(Sweep::over(grid()))
            .checkpoint(&path)
            .run(synthetic)
            .unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.to_json(), full.to_json());
        // The artifact on disk is the final report.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, full.to_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_checkpoint_rejected() {
        let dir = std::env::temp_dir().join(format!("dg_sweep_test_mm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("other.json");
        let first = Sweep::over(grid())
            .base_seed(1)
            .budget(TrialBudget::fixed(3))
            .checkpoint(&path)
            .run(synthetic)
            .unwrap();
        assert!(first.is_complete());
        let err = Sweep::over(grid())
            .base_seed(2) // different seed stream: resuming would lie
            .budget(TrialBudget::fixed(3))
            .checkpoint(&path)
            .run(synthetic)
            .unwrap_err();
        assert!(matches!(err, SweepError::Mismatch(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_with_state_is_byte_identical_to_stateless_run() {
        // Per-worker state (a counter standing in for a model cache)
        // must not leak into results; scheduling and worker counts vary,
        // the artifact doesn't.
        let stateless = Sweep::over(grid())
            .budget(TrialBudget::adaptive(3, 32, CiTarget::Absolute(0.5)))
            .base_seed(99)
            .parallel(false)
            .run(synthetic)
            .unwrap()
            .to_json();
        for threads in [1usize, 4] {
            let stateful = Sweep::over(grid())
                .budget(TrialBudget::adaptive(3, 32, CiTarget::Absolute(0.5)))
                .base_seed(99)
                .threads(threads)
                .run_with_state(
                    || 0usize,
                    |cell, trial, reused| {
                        *reused += 1; // worker-local bookkeeping only
                        synthetic(cell, trial)
                    },
                )
                .unwrap()
                .to_json();
            assert_eq!(stateful, stateless, "threads {threads}");
        }
    }

    #[test]
    fn per_cell_round_caps_reach_trials_and_checkpoints() {
        let capped_grid = || {
            Grid::new()
                .axis(Axis::ints("n", [4, 8]))
                .max_rounds(|cell| 100 * cell.usize("n") as u32)
        };
        let flat = |_: &Cell, trial: Trial| Some(10.0 + (trial.seed % 7) as f64);
        let report = Sweep::over(capped_grid())
            .budget(TrialBudget::fixed(2))
            .run(|cell, trial| {
                assert_eq!(cell.max_rounds(), Some(100 * cell.usize("n") as u32));
                flat(cell, trial)
            })
            .unwrap();
        assert_eq!(report.max_rounds_table(), Some(&[400u32, 800][..]));
        // The artifact round-trips the caps...
        let json = report.to_json();
        assert_eq!(
            SweepReport::from_json(&json).unwrap().max_rounds_table(),
            Some(&[400u32, 800][..])
        );
        // ...and a checkpoint from a different policy is rejected.
        let dir = std::env::temp_dir().join(format!("dg_sweep_caps_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("caps.json");
        report.write_json(&path).unwrap();
        let err = Sweep::over(Grid::new().axis(Axis::ints("n", [4, 8])))
            .budget(TrialBudget::fixed(2))
            .checkpoint(&path)
            .run(flat)
            .unwrap_err();
        assert!(matches!(err, SweepError::Mismatch(_)));
        let resumed = Sweep::over(capped_grid())
            .budget(TrialBudget::fixed(2))
            .checkpoint(&path)
            .run(flat)
            .unwrap();
        assert_eq!(resumed.to_json(), json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn censored_trials_reach_the_report() {
        let grid = Grid::new().axis(Axis::ints("n", [4]));
        let report = Sweep::over(grid)
            .budget(TrialBudget::fixed(6))
            .run(|_, trial| (trial.index % 2 == 0).then_some(3.0))
            .unwrap();
        assert_eq!(report.cell(0).trials(), 6);
        assert_eq!(report.cell(0).incomplete(), 3);
        assert_eq!(report.cell(0).mean(), Some(3.0));
    }

    fn metric_grid() -> Grid {
        Grid::new().axis(Axis::ints("n", [4])).metrics([
            Metric::new("rounds"),
            Metric::new("messages"),
            Metric::observe("coverage"),
        ])
    }

    #[test]
    fn per_metric_censoring_reaches_the_report() {
        // One trial censors `rounds` only (the round-cap shape): the
        // other metrics keep their slots, and per-metric statistics see
        // per-metric evidence — not a whole-trial blackout.
        let report = Sweep::over(metric_grid())
            .budget(TrialBudget::fixed(4))
            .run_metrics(|_, trial| {
                let capped = trial.index == 1;
                vec![
                    (!capped).then_some(10.0 + trial.index as f64),
                    Some(100.0),
                    Some(if capped { 0.5 } else { 1.0 }),
                ]
            })
            .unwrap();
        let cell = report.cell(0);
        assert_eq!(cell.trials(), 4);
        assert_eq!(cell.incomplete_of(0), 1);
        assert_eq!(cell.incomplete_of(1), 0);
        assert_eq!(cell.completed_of(0).len(), 3);
        assert_eq!(cell.mean_of(1), Some(100.0));
        // The censored trial's row survives storage slot-for-slot.
        assert_eq!(cell.samples[1], vec![None, Some(100.0), Some(0.5)]);
        let reloaded = SweepReport::from_json(&report.to_json()).unwrap();
        assert_eq!(reloaded, report);
    }

    #[test]
    fn per_metric_stopping_needs_every_gating_metric() {
        // `rounds` is constant (tight immediately); `messages` censors
        // until trial 5 and needs min_trials completions of its own, so
        // the cell runs past min_trials even though metric 0 was ready.
        let report = Sweep::over(
            Grid::new()
                .axis(Axis::ints("n", [4]))
                .metrics([Metric::new("rounds"), Metric::new("messages")]),
        )
        .budget(TrialBudget::adaptive(3, 32, CiTarget::Relative(0.05)))
        .run_metrics(|_, trial| vec![Some(7.0), (trial.index >= 5).then_some(40.0)])
        .unwrap();
        let cell = report.cell(0);
        // 5 censored trials + 3 completions for messages' evidence.
        assert_eq!(cell.trials(), 8);
        assert_eq!(cell.completed_of(1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "declares metrics")]
    fn scalar_run_rejects_metric_grids() {
        let _ = Sweep::over(metric_grid())
            .budget(TrialBudget::fixed(2))
            .run(|_, _| Some(1.0));
    }

    #[test]
    #[should_panic(expected = "without declared metrics")]
    fn run_metrics_rejects_scalar_grids() {
        let _ = Sweep::over(grid())
            .budget(TrialBudget::fixed(2))
            .run_metrics(|_, _| vec![Some(1.0)]);
    }

    #[test]
    #[should_panic(expected = "1 slots for 3 declared metrics")]
    fn mismatched_row_width_panics() {
        let _ = Sweep::over(metric_grid())
            .budget(TrialBudget::fixed(2))
            .parallel(false)
            .run_metrics(|_, _| vec![Some(1.0)]);
    }

    #[test]
    fn trial_seeds_follow_the_documented_derivation() {
        let grid = Grid::new().axis(Axis::ints("n", [4, 5]));
        let report = Sweep::over(grid)
            .budget(TrialBudget::fixed(2))
            .base_seed(77)
            .run(|cell, trial| {
                assert_eq!(trial.cell_seed, mix_seed(77, cell.id() as u64));
                assert_eq!(trial.seed, mix_seed(trial.cell_seed, trial.index as u64));
                Some(0.0)
            })
            .unwrap();
        assert_eq!(report.total_trials(), 4);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn trial_panic_propagates_without_deadlock() {
        let _ = Sweep::over(grid())
            .budget(TrialBudget::fixed(4))
            .threads(3)
            .run(|_, trial| {
                if trial.index == 1 {
                    panic!("boom");
                }
                Some(1.0)
            });
    }

    #[test]
    fn retry_policy_recovers_to_fault_free_bytes() {
        use std::sync::atomic::{AtomicU32, Ordering};

        let config = |s: Sweep| {
            s.budget(TrialBudget::adaptive(3, 32, CiTarget::Absolute(0.5)))
                .base_seed(99)
        };
        let fault_free = config(Sweep::over(grid())).run(synthetic).unwrap();
        // The first `faults` trial executions panic — whichever worker
        // picks them up — and each is retried in place with its
        // original seed, so the artifact comes out byte-identical.
        for (threads, faults) in [(1usize, 3u32), (4, 5)] {
            let remaining = AtomicU32::new(faults);
            let report = config(Sweep::over(grid()))
                .threads(threads)
                .on_trial_panic(TrialPanic::Retry { max: 8 })
                .run(|cell, trial| {
                    if remaining
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1))
                        .is_ok()
                    {
                        panic!("injected test fault");
                    }
                    synthetic(cell, trial)
                })
                .unwrap();
            assert_eq!(remaining.load(Ordering::SeqCst), 0);
            assert_eq!(
                report.to_json(),
                fault_free.to_json(),
                "threads={threads} faults={faults}"
            );
        }
    }

    #[test]
    fn censor_policy_records_fully_censored_trials() {
        let report = Sweep::over(grid())
            .budget(TrialBudget::fixed(4))
            .parallel(false)
            .on_trial_panic(TrialPanic::Censor)
            .run(|cell, trial| {
                if trial.index == 1 {
                    panic!("boom");
                }
                synthetic(cell, trial)
            })
            .unwrap();
        assert!(report.is_complete());
        for cell in report.cells() {
            assert_eq!(cell.trials(), 4);
            assert_eq!(cell.incomplete(), 1, "cell {}", cell.id);
            assert_eq!(cell.samples[1], vec![None]);
        }
        // The censored artifact round-trips like any other.
        let reloaded = SweepReport::from_json(&report.to_json()).unwrap();
        assert_eq!(reloaded, report);
    }

    #[test]
    #[should_panic(expected = "persistent boom")]
    fn retry_exhaustion_propagates_the_last_panic() {
        let _ = Sweep::over(grid())
            .budget(TrialBudget::fixed(2))
            .parallel(false)
            .on_trial_panic(TrialPanic::Retry { max: 2 })
            .run(|_, _| -> Option<f64> { panic!("persistent boom") });
    }
}
