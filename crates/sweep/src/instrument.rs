//! Sweep-scheduler metric handles on the process-wide `dg-obs` registry.
//!
//! All handles are process-global (two concurrent sweeps share them) and
//! strictly write-only from the scheduler's perspective: they never feed
//! back into claiming, stopping, or artifacts, so reports stay
//! byte-identical with recording on or off.

use dg_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::OnceLock;

pub(crate) struct SweepObs {
    /// `dg_sweep_trials_total` — trials completed (speculative included).
    pub trials: Counter,
    /// `dg_sweep_claims_total` — `(cell × trial)` work items claimed from
    /// the shared pool (the steal counter).
    pub claims: Counter,
    /// `dg_sweep_speculation_discarded_total` — completed trials thrown
    /// away because their cell had already decided on a shorter prefix.
    pub discarded: Counter,
    /// `dg_sweep_cells_total` / `dg_sweep_cells_decided` — sweep
    /// progress, set at sweep start and on every cell decision.
    pub cells_total: Gauge,
    /// See [`SweepObs::cells_total`].
    pub cells_decided: Gauge,
    /// `dg_sweep_cell_trials` — distribution of final per-cell trial
    /// counts, observed when a cell decides.
    pub cell_trials: Histogram,
    /// `dg_sweep_checkpoint_writes_total` — artifact rewrites.
    pub checkpoints: Counter,
    /// `dg_sweep_trial_retries_total` — panicked trials re-run in place
    /// under `TrialPanic::Retry` (each rerun uses its original seed).
    pub retries: Counter,
}

pub(crate) fn sweep_obs() -> &'static SweepObs {
    static OBS: OnceLock<SweepObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = Registry::global();
        SweepObs {
            trials: reg.counter("dg_sweep_trials_total"),
            claims: reg.counter("dg_sweep_claims_total"),
            discarded: reg.counter("dg_sweep_speculation_discarded_total"),
            cells_total: reg.gauge("dg_sweep_cells_total"),
            cells_decided: reg.gauge("dg_sweep_cells_decided"),
            cell_trials: reg.histogram(
                "dg_sweep_cell_trials",
                &dg_obs::exponential_bounds(1.0, 2.0, 10),
            ),
            checkpoints: reg.counter("dg_sweep_checkpoint_writes_total"),
            retries: reg.counter("dg_sweep_trial_retries_total"),
        }
    })
}

/// `dg_sweep_ci_gap_permille{metric="…"}` — how far the worst undecided
/// cell is from its CI target for one gating metric: half-width over
/// target width, in thousandths (≤ 1000 means the target is met).
pub(crate) fn ci_gap_gauge(metric: &str) -> Gauge {
    Registry::global().gauge(&dg_obs::label("dg_sweep_ci_gap_permille", "metric", metric))
}
