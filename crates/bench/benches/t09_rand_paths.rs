//! T9 bench: random L-paths on grids (Corollary 5) — family construction
//! and engine flooding.

use dg_bench::{Harness, SeedTape};
use dg_mobility::{PathFamily, RandomPathModel};
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    for &m in &[4usize, 6] {
        h.bench(&format!("t09_rand_paths/build_family/{m}"), || {
            let (_, family) = PathFamily::grid_l_paths(m, m);
            family.delta_regularity()
        });
        let (_, family) = PathFamily::grid_l_paths(m, m);
        let n = 4 * family.point_count();
        h.bench(&format!("t09_rand_paths/flood/{m}"), || {
            let family = family.clone();
            Simulation::builder()
                .model(move |seed| {
                    RandomPathModel::stationary_lazy(family.clone(), n, 0.25, seed).unwrap()
                })
                .trials(2)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
