//! T9 bench: random L-paths on grids (Corollary 5) — family construction
//! and flooding.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_mobility::{PathFamily, RandomPathModel};
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t09_rand_paths");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    for &m in &[4usize, 6] {
        group.bench_with_input(BenchmarkId::new("build_family", m), &m, |b, &m| {
            b.iter(|| {
                let (_, family) = PathFamily::grid_l_paths(m, m);
                family.delta_regularity()
            });
        });
        group.bench_with_input(BenchmarkId::new("flood", m), &m, |b, &m| {
            let (_, family) = PathFamily::grid_l_paths(m, m);
            let n = 4 * family.point_count();
            b.iter(|| {
                let mut model = RandomPathModel::stationary_lazy(
                    family.clone(),
                    n,
                    0.25,
                    tape.next_seed(),
                )
                .unwrap();
                flood(&mut model, 0, 500_000).flooding_time()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
