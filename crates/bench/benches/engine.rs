//! Engine micro-benchmarks: snapshot construction, flooding sweeps, and
//! the cell-list vs naive pair-scan ablation called out in DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_bench::SeedTape;
use dg_mobility::{CellList, Point};
use dynagraph::flooding::flood;
use dynagraph::{EvolvingGraph, Snapshot, StaticEvolvingGraph};

fn bench_snapshot_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/snapshot_rebuild");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &m in &[1_000usize, 10_000, 100_000] {
        let n = 2 * (m as f64).sqrt() as usize + 10;
        let mut rng = SmallRng::seed_from_u64(1);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                (u.min(v), u.max(v))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut snap = Snapshot::empty(n);
            b.iter(|| {
                snap.rebuild_from_edges(&edges);
                snap.edge_count()
            });
        });
    }
    group.finish();
}

fn bench_flood_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/flood_static_grid");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &side in &[16usize, 32, 64] {
        let graph = dg_graph::generators::grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &side, |b, _| {
            let mut g = StaticEvolvingGraph::new(graph.clone());
            b.iter(|| flood(&mut g, 0, 100_000).flooding_time());
        });
    }
    group.finish();
}

fn bench_cell_list_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pairs_within_radius");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let tape = SeedTape::new();
    for &n in &[256usize, 1024, 4096] {
        let side = (n as f64).sqrt();
        let r = 1.0;
        let mut rng = SmallRng::seed_from_u64(tape.next_seed());
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        group.bench_with_input(BenchmarkId::new("cell_list", n), &n, |b, _| {
            let mut cells = CellList::new(side, r);
            b.iter(|| {
                cells.rebuild(&points);
                let mut count = 0u32;
                cells.for_each_pair_within(&points, r, |_, _| count += 1);
                count
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0u32;
                for i in 0..n {
                    for j in (i + 1)..n {
                        if points[i].distance_sq(points[j]) <= r * r {
                            count += 1;
                        }
                    }
                }
                count
            });
        });
    }
    group.finish();
}

fn bench_edge_meg_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/edge_meg_step");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let tape = SeedTape::new();
    for &n in &[256usize, 1024] {
        let p = 2.0 / n as f64;
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            let mut g =
                dg_edge_meg::TwoStateEdgeMeg::stationary(n, p, 0.3, tape.next_seed()).unwrap();
            b.iter(|| g.step().edge_count());
        });
        group.bench_with_input(BenchmarkId::new("sparse_event_driven", n), &n, |b, _| {
            let mut g =
                dg_edge_meg::SparseTwoStateEdgeMeg::stationary(n, p, 0.3, tape.next_seed())
                    .unwrap();
            b.iter(|| g.step().edge_count());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_rebuild,
    bench_flood_static,
    bench_cell_list_vs_naive,
    bench_edge_meg_step
);
criterion_main!(benches);
