//! Engine micro-benchmarks: snapshot construction, builder-driven
//! flooding, parallel-vs-serial trial execution, and the cell-list vs
//! naive pair-scan ablation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_bench::{Harness, SeedTape};
use dg_mobility::{CellList, Point};
use dynagraph::engine::Simulation;
use dynagraph::{EvolvingGraph, Snapshot, StaticEvolvingGraph};

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();

    for &m in &[1_000usize, 10_000, 100_000] {
        let n = 2 * (m as f64).sqrt() as usize + 10;
        let mut rng = SmallRng::seed_from_u64(1);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let mut v = rng.gen_range(0..n as u32);
                while v == u {
                    v = rng.gen_range(0..n as u32);
                }
                (u.min(v), u.max(v))
            })
            .collect();
        let mut snap = Snapshot::empty(n);
        h.bench(&format!("engine/snapshot_rebuild/{m}"), || {
            snap.rebuild_from_edges(&edges);
            snap.edge_count()
        });
    }

    for &side in &[16usize, 32, 64] {
        let graph = dg_graph::generators::grid(side, side);
        h.bench(&format!("engine/flood_static_grid/{}", side * side), || {
            Simulation::builder()
                .model(|_| StaticEvolvingGraph::new(graph.clone()))
                .trials(1)
                .max_rounds(100_000)
                .run()
                .mean()
        });
    }

    // Parallel-vs-serial engine on a trial batch large enough to matter.
    let n = 192;
    let p = 1.5 / n as f64;
    for (label, parallel) in [("serial", false), ("parallel", true)] {
        h.bench(&format!("engine/trial_batch_16/{label}"), || {
            Simulation::builder()
                .model(move |seed| {
                    dg_edge_meg::SparseTwoStateEdgeMeg::stationary(n, p, 0.4, seed).unwrap()
                })
                .trials(16)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .parallel(parallel)
                .run()
                .mean()
        });
    }

    for &n in &[256usize, 1024, 4096] {
        let side = (n as f64).sqrt();
        let r = 1.0;
        let mut rng = SmallRng::seed_from_u64(tape.next_seed());
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        let mut cells = CellList::new(side, r);
        h.bench(&format!("engine/pairs_within_radius/cell_list/{n}"), || {
            cells.rebuild(&points);
            let mut count = 0u32;
            cells.for_each_pair_within(&points, r, |_, _| count += 1);
            count
        });
        h.bench(&format!("engine/pairs_within_radius/naive/{n}"), || {
            let mut count = 0u32;
            for i in 0..n {
                for j in (i + 1)..n {
                    if points[i].distance_sq(points[j]) <= r * r {
                        count += 1;
                    }
                }
            }
            count
        });
    }

    for &n in &[256usize, 1024] {
        let p = 2.0 / n as f64;
        let mut dense =
            dg_edge_meg::TwoStateEdgeMeg::stationary(n, p, 0.3, tape.next_seed()).unwrap();
        h.bench(&format!("engine/edge_meg_step/dense/{n}"), || {
            dense.step().edge_count()
        });
        let mut sparse =
            dg_edge_meg::SparseTwoStateEdgeMeg::stationary(n, p, 0.3, tape.next_seed()).unwrap();
        h.bench(
            &format!("engine/edge_meg_step/sparse_event_driven/{n}"),
            || sparse.step().edge_count(),
        );
    }
}
