//! T5 bench: estimating the waypoint positional occupancy and its
//! (δ, λ) constants.

use dg_bench::Harness;
use dg_mobility::{positional, RandomWaypoint};

fn main() {
    let h = Harness::from_args();
    let wp = RandomWaypoint::new(16.0, 1.0, 1.0).unwrap();
    h.bench("t05_wp_density/stationary_occupancy_40k", || {
        positional::stationary_occupancy(&wp, 8, 500, 40_000, 0x5)
    });
    let occ = positional::stationary_occupancy(&wp, 8, 500, 40_000, 0x5);
    h.bench("t05_wp_density/delta_lambda_extraction", || {
        positional::estimate_delta_lambda(&occ, 16.0, 1.0)
    });
}
