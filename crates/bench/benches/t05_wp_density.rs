//! T5 bench: estimating the waypoint positional occupancy and its
//! (δ, λ) constants.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dg_mobility::{positional, RandomWaypoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t05_wp_density");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let wp = RandomWaypoint::new(16.0, 1.0, 1.0).unwrap();
    group.bench_function("stationary_occupancy_40k", |b| {
        b.iter(|| positional::stationary_occupancy(&wp, 8, 500, 40_000, 0x5));
    });
    let occ = positional::stationary_occupancy(&wp, 8, 500, 40_000, 0x5);
    group.bench_function("delta_lambda_extraction", |b| {
        b.iter(|| positional::estimate_delta_lambda(&occ, 16.0, 1.0));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
