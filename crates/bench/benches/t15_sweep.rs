//! t15 — sweep orchestration: what adaptive stopping and resumable
//! checkpoints buy on a real phase-diagram workload.
//!
//! The workload is the t05 density grid at bench scale (fixed waypoint
//! swarm, box side `L` sweeps the node density `n/L²`): dense cells
//! flood near-deterministically, the sparse tail is noisy — exactly the
//! heterogeneity the adaptive scheduler exploits. Three measurements:
//!
//! * **adaptive vs fixed trials** — the adaptive sweep stops each cell
//!   at the 5% relative CI target; the fixed-budget baseline must size
//!   every cell for the *worst* cell's trial count to reach the same
//!   half-width everywhere. The trial saving is the headline.
//! * **throughput** — cells/sec and trials/sec of the adaptive sweep.
//! * **kill + resume** — the adaptive sweep is interrupted mid-run via
//!   `run_budget`, checkpointed, resumed, and the final artifact is
//!   asserted byte-identical to the uninterrupted run's.
//!
//! Emits machine-readable `BENCH_sweep.json` at the repository root.
//! Quick mode (`DG_BENCH_QUICK=1`) shrinks sizes for CI smoke.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::engine::Simulation;
use dynagraph::sweep::{Axis, CiTarget, Grid, Sweep, SweepReport, Trial, TrialBudget};

/// The t05 density grid at bench scale (see
/// `crates/experiments/src/t05_wp_density.rs::density_sweep` for the
/// full-scale twin).
fn grid(quick: bool) -> Grid {
    let sides: Vec<f64> = if quick {
        vec![4.0, 6.5]
    } else {
        vec![4.5, 6.0, 7.5, 9.0, 10.5]
    };
    Grid::new().axis(Axis::explicit("L", sides))
}

fn flood_cell(n: usize, l: f64, trial: Trial) -> Option<f64> {
    let warm = (8.0 * l) as usize;
    Simulation::builder()
        .model(move |seed| {
            GeometricMeg::new(RandomWaypoint::new(l, 1.0, 1.0).unwrap(), n, 1.0, seed).unwrap()
        })
        .max_rounds(100_000)
        .warm_up(warm)
        .base_seed(trial.cell_seed)
        .run_trial(trial.index)
        .time
        .map(f64::from)
}

fn run_sweep(n: usize, quick: bool, budget: TrialBudget) -> (SweepReport, f64) {
    let start = Instant::now();
    let report = Sweep::over(grid(quick))
        .budget(budget)
        .base_seed(0x715)
        .run(move |cell, trial| flood_cell(n, cell.get("L"), trial))
        .unwrap();
    (report, start.elapsed().as_secs_f64())
}

/// Worst relative CI half-width across cells (how tight the sweep got).
fn max_rel_half_width(report: &SweepReport) -> f64 {
    report
        .cells()
        .iter()
        .filter_map(|c| {
            let ci = c.ci()?;
            Some(ci.half_width() / ci.mean.abs())
        })
        .fold(0.0, f64::max)
}

fn main() {
    let quick = dg_bench::quick_mode();
    let n = if quick { 24 } else { 48 };
    // A 10% relative target is what the workload's noise can meet inside
    // the cap: the dense cells (flooding CV ~0.15) stop after ~10 trials,
    // the sparse tail (CV ~0.4+) runs to 60-plus — that spread is where
    // the savings come from. A 5% target would drive *every* cell to the
    // cap and the comparison would measure nothing.
    let budget = if quick {
        TrialBudget::adaptive(3, 12, CiTarget::Relative(0.1))
    } else {
        TrialBudget::adaptive(8, 96, CiTarget::Relative(0.1))
    };

    // 1. The adaptive sweep.
    let (adaptive, adaptive_secs) = run_sweep(n, quick, budget);
    assert!(adaptive.is_complete());
    let cells = adaptive.cells().len();
    let adaptive_trials = adaptive.total_trials();
    println!(
        "adaptive   n={n:>3}  {cells} cells  {adaptive_trials:>4} trials  {:>7.2} ms  {:>6.1} cells/s  {:>7.1} trials/s  (max rel CI {:.3})",
        adaptive_secs * 1e3,
        cells as f64 / adaptive_secs,
        adaptive_trials as f64 / adaptive_secs,
        max_rel_half_width(&adaptive),
    );

    // 2. The fixed-budget baseline at equal half-width: without per-cell
    // stopping, every cell must budget for the worst cell's trial count.
    let worst = adaptive
        .cells()
        .iter()
        .map(|c| c.trials())
        .max()
        .expect("non-empty grid");
    let (fixed, fixed_secs) = run_sweep(n, quick, TrialBudget::fixed(worst));
    let fixed_trials = fixed.total_trials();
    let savings = 1.0 - adaptive_trials as f64 / fixed_trials as f64;
    println!(
        "fixed({worst:>2})  n={n:>3}  {cells} cells  {fixed_trials:>4} trials  {:>7.2} ms  (max rel CI {:.3})",
        fixed_secs * 1e3,
        max_rel_half_width(&fixed),
    );
    println!(
        "adaptive stopping saves {:.1}% of trials ({} of {}) at the same worst-cell CI target",
        savings * 100.0,
        fixed_trials - adaptive_trials,
        fixed_trials
    );
    if !quick {
        assert!(
            savings >= 0.25,
            "acceptance: adaptive must save >= 25% of trials, got {:.1}%",
            savings * 100.0
        );
    }

    // 3. Kill + resume: interrupt mid-run, resume from the artifact, and
    // demand a byte-identical final report.
    let ckpt = std::env::temp_dir().join(format!("dg_t15_sweep_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let interrupted = Sweep::over(grid(quick))
        .budget(budget)
        .base_seed(0x715)
        .checkpoint(&ckpt)
        .run_budget(adaptive_trials / 2)
        // One worker: run_budget stops *claiming*, and in-flight trials
        // still record — with a pool, enough speculative claims could
        // finish the whole sweep before the budget bites, making the
        // incompleteness assert below racy on many-core machines.
        .threads(1)
        .run(move |cell, trial| flood_cell(n, cell.get("L"), trial))
        .unwrap();
    assert!(!interrupted.is_complete(), "run_budget should interrupt");
    let start = Instant::now();
    let resumed = Sweep::over(grid(quick))
        .budget(budget)
        .base_seed(0x715)
        .checkpoint(&ckpt)
        .run(move |cell, trial| flood_cell(n, cell.get("L"), trial))
        .unwrap();
    let resume_secs = start.elapsed().as_secs_f64();
    let resume_byte_identical = resumed.to_json() == adaptive.to_json();
    assert!(
        resume_byte_identical,
        "resumed sweep must be byte-identical to the uninterrupted run"
    );
    println!(
        "kill+resume: interrupted at {} trials, resumed in {:.2} ms, artifact byte-identical: {}",
        interrupted.total_trials(),
        resume_secs * 1e3,
        resume_byte_identical
    );
    let _ = std::fs::remove_file(&ckpt);

    // Machine-readable trajectory record (hand-rolled JSON; no serde in
    // this environment).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t15_sweep\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"description\": \"adaptive (cell x trial) sweep scheduling on the t05 density grid: trial savings of sequential stopping vs a fixed budget sized for the worst cell at the same CI target, plus sweep throughput and kill/resume byte-identity\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"model\": \"waypoint-manet\", \"n\": {n}, \"r\": 1.0, \"ci_target_relative\": {}, \"min_trials\": {}, \"max_trials\": {}}},",
        match budget.ci_target {
            Some(CiTarget::Relative(v)) => v,
            _ => unreachable!("bench budget is relative"),
        },
        budget.min_trials,
        budget.max_trials,
    );
    let _ = writeln!(json, "  \"cells\": [");
    let cells_n = adaptive.cells().len();
    for (i, cell) in adaptive.cells().iter().enumerate() {
        let ci = cell.ci();
        let _ = writeln!(
            json,
            "    {{\"L\": {}, \"density\": {:.4}, \"trials\": {}, \"mean_f\": {:.2}, \"ci_half_width\": {:.3}, \"incomplete\": {}}}{}",
            adaptive.axis_value(cell, "L"),
            n as f64 / (adaptive.axis_value(cell, "L") * adaptive.axis_value(cell, "L")),
            cell.trials(),
            cell.mean().unwrap_or(f64::NAN),
            ci.map_or(f64::NAN, |c| c.half_width()),
            cell.incomplete(),
            if i + 1 < cells_n { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"adaptive\": {{\"total_trials\": {adaptive_trials}, \"seconds\": {adaptive_secs:.3}, \"cells_per_sec\": {:.2}, \"trials_per_sec\": {:.1}, \"max_rel_half_width\": {:.4}}},",
        cells as f64 / adaptive_secs,
        adaptive_trials as f64 / adaptive_secs,
        max_rel_half_width(&adaptive),
    );
    let _ = writeln!(
        json,
        "  \"fixed_equal_ci\": {{\"per_cell_trials\": {worst}, \"total_trials\": {fixed_trials}, \"seconds\": {fixed_secs:.3}, \"max_rel_half_width\": {:.4}}},",
        max_rel_half_width(&fixed),
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{\"trial_savings\": {savings:.3}, \"resume_byte_identical\": {resume_byte_identical}}}"
    );
    let _ = writeln!(json, "}}");

    if quick {
        // Quick mode is a CI smoke run; don't clobber the committed
        // full-scale trajectory record.
        println!("quick mode: skipping BENCH_sweep.json update");
        return;
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
