//! t20 — the price of observability.
//!
//! `dg-obs` promises zero perturbation *and* near-zero cost when idle.
//! This bench pins both halves with numbers:
//!
//! * **disabled overhead** — the t13 delta-churn hot loop (event-driven
//!   stepping + incremental adjacency apply) raw vs the same loop with
//!   a disabled-registry span timer and counter on every round. The
//!   guard *asserts* the min-time ratio stays within noise — in quick
//!   mode too, so CI catches a regression that makes the off-switch
//!   expensive.
//! * **enabled overhead** — end-to-end engine flooding batches with
//!   recording off vs on (span timers around every round phase, trial
//!   counters, the works), asserted byte-identical and timed.
//!
//! Emits `BENCH_obs.json` at the repository root (quick mode:
//! `target/BENCH_obs_quick.json`, for the CI artifact upload — quick
//! outputs never land in the source tree), recording the host core
//! count alongside every number.

use std::fmt::Write as _;
use std::path::Path;
use std::thread::available_parallelism;
use std::time::Instant;

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::engine::Simulation;
use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph};

/// Ratio ceiling for the disabled-instrumentation guard. The guarded
/// loop adds one `Histogram::start` (a relaxed load, no `Instant`) and
/// one `Counter::add` (another relaxed load) per ~microsecond round;
/// anything past a third of the round cost means the off-switch broke.
const DISABLED_RATIO_MAX: f64 = 1.30;

struct DisabledOverhead {
    n: usize,
    q: f64,
    rounds: usize,
    reps: usize,
    raw_ns_per_round: f64,
    guarded_ns_per_round: f64,
    ratio: f64,
}

/// Times the t13 hot loop raw, then with disabled recording calls in
/// the loop body, taking the min over `reps` passes (min-time is the
/// noise-robust statistic for a guard that must hold on shared CI
/// runners).
fn bench_disabled_overhead(n: usize, q: f64, rounds: usize, reps: usize) -> DisabledOverhead {
    assert!(!dg_obs::enabled(), "guard must run with recording off");
    let p = 1.0 / n as f64;
    let seed = 0xB513;
    let span_hist = dg_obs::Registry::global().histogram(
        "t20_guard_seconds",
        &dg_obs::exponential_bounds(1e-9, 10.0, 10),
    );
    let churn_counter = dg_obs::Registry::global().counter("t20_guard_churn_total");

    let time_loop = |instrumented: bool| -> f64 {
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let mut meg = SparseTwoStateEdgeMeg::stationary(n, p, q, seed + rep as u64).unwrap();
            let mut adj = DynAdjacency::new(n);
            let mut delta = EdgeDelta::new();
            for _ in 0..50 {
                meg.step_delta(&mut delta);
                adj.apply(&delta);
            }
            let start = Instant::now();
            if instrumented {
                for _ in 0..rounds {
                    let _span = span_hist.start();
                    meg.step_delta(&mut delta);
                    adj.apply(&delta);
                    churn_counter.add(delta.churn() as u64);
                }
            } else {
                for _ in 0..rounds {
                    meg.step_delta(&mut delta);
                    adj.apply(&delta);
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
            best = best.min(ns);
        }
        best
    };

    let raw = time_loop(false);
    let guarded = time_loop(true);
    // Recording was off: nothing may have landed in the registry.
    assert_eq!(
        dg_obs::Registry::global().counter_value("t20_guard_churn_total"),
        Some(0),
        "disabled counter recorded"
    );
    DisabledOverhead {
        n,
        q,
        rounds,
        reps,
        raw_ns_per_round: raw,
        guarded_ns_per_round: guarded,
        ratio: guarded / raw,
    }
}

struct EngineOverhead {
    n: usize,
    q: f64,
    trials: usize,
    off_ms: f64,
    on_ms: f64,
    ratio: f64,
}

/// Times an engine flooding batch with recording off, then on, and
/// asserts the reports byte-identical — the perturbation pin riding
/// along in the perf record.
fn bench_engine(n: usize, q: f64, trials: usize, max_rounds: u32) -> EngineOverhead {
    let run = || {
        Simulation::builder()
            .model(move |seed| {
                SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, q, seed).unwrap()
            })
            .trials(trials)
            .max_rounds(max_rounds)
            .base_seed(0xB520)
            .run()
    };
    dg_obs::set_enabled(false);
    let start = Instant::now();
    let off = run();
    let off_ms = start.elapsed().as_secs_f64() * 1e3;

    dg_obs::set_enabled(true);
    let start = Instant::now();
    let on = run();
    let on_ms = start.elapsed().as_secs_f64() * 1e3;
    dg_obs::set_enabled(false);

    assert_eq!(off, on, "instrumentation perturbed the records");
    EngineOverhead {
        n,
        q,
        trials,
        off_ms,
        on_ms,
        ratio: on_ms / off_ms,
    }
}

fn main() {
    let quick = dg_bench::quick_mode();
    dg_obs::set_enabled(false);
    let cores = available_parallelism().map(|c| c.get()).unwrap_or(1);

    let overhead = if quick {
        bench_disabled_overhead(256, 0.05, 300, 3)
    } else {
        bench_disabled_overhead(4096, 0.01, 1_500, 5)
    };
    println!(
        "disabled guard n={:>5} q={:<5} {:>5} rounds x{}   raw {:>7.0} ns/round   guarded {:>7.0} ns/round   ratio {:.3}",
        overhead.n, overhead.q, overhead.rounds, overhead.reps,
        overhead.raw_ns_per_round, overhead.guarded_ns_per_round, overhead.ratio
    );
    assert!(
        overhead.ratio <= DISABLED_RATIO_MAX,
        "disabled-instrumentation overhead {:.3} exceeds {DISABLED_RATIO_MAX}",
        overhead.ratio
    );

    let engine_cases: &[(usize, f64, usize, u32)] = if quick {
        &[(256, 0.2, 8, 20_000)]
    } else {
        &[(1024, 0.2, 24, 100_000), (4096, 0.05, 8, 100_000)]
    };
    let mut engine = Vec::new();
    for &(n, q, trials, max_rounds) in engine_cases {
        let r = bench_engine(n, q, trials, max_rounds);
        println!(
            "engine flooding n={:>5} q={:<5} {:>3} trials   off {:>8.1} ms   on {:>8.1} ms   ratio {:.3}   (byte-identical)",
            r.n, r.q, r.trials, r.off_ms, r.on_ms, r.ratio
        );
        engine.push(r);
    }
    // The instrumented runs really recorded: every round landed one
    // sample in the model-step phase histogram.
    let spans = dg_obs::Registry::global()
        .histogram_snapshot("dg_engine_round_phase_seconds{phase=\"model_step\"}")
        .map_or(0, |s| s.count);
    assert!(spans > 0, "instrumented runs recorded no spans");
    println!("recorded model-step spans: {spans}");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t20_obs\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"description\": \"cost of dg-obs instrumentation: disabled-registry guard on the delta-churn hot loop, and instrumented vs uninstrumented engine flooding batches (asserted byte-identical)\","
    );
    let _ = writeln!(
        json,
        "  \"disabled_guard\": {{\"n\": {}, \"q\": {}, \"rounds\": {}, \"reps\": {}, \"raw_ns_per_round\": {:.1}, \"guarded_ns_per_round\": {:.1}, \"ratio\": {:.4}, \"assert_max\": {DISABLED_RATIO_MAX}}},",
        overhead.n, overhead.q, overhead.rounds, overhead.reps,
        overhead.raw_ns_per_round, overhead.guarded_ns_per_round, overhead.ratio
    );
    let _ = writeln!(json, "  \"engine\": [");
    for (i, r) in engine.iter().enumerate() {
        let comma = if i + 1 < engine.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"model\": \"sparse-two-state-edge-meg\", \"protocol\": \"flooding\", \"n\": {}, \"q\": {}, \"trials\": {}, \"off_ms\": {:.2}, \"on_ms\": {:.2}, \"ratio\": {:.4}}}{}",
            r.n, r.q, r.trials, r.off_ms, r.on_ms, r.ratio, comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"byte_identical_on_vs_off\": true, \"disabled_guard_ratio\": {:.4}, \"recorded_model_step_spans\": {spans}}}",
        overhead.ratio
    );
    let _ = writeln!(json, "}}");

    // Quick mode is the CI smoke: write a separate artifact (uploaded
    // by the workflow) instead of clobbering the committed full-scale
    // record.
    let name = if quick {
        "../../target/BENCH_obs_quick.json"
    } else {
        "../../BENCH_obs.json"
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
