//! t16 — zero-rebuild trials: what per-worker model reuse, scratch
//! reuse, the full-emission bulk load, and the lazy sparse-MEG dynamics
//! buy on setup-dominated Monte-Carlo workloads.
//!
//! Three workloads, each run on both trial paths and asserted
//! byte-identical:
//!
//! * **phase-cell sweep** (headline) — flooding time of large
//!   slow-churn sparse-init edge-MEGs (`n = 2^14`, `p = 1/n`, small
//!   `q`): the stationary on-set is ~1.6–4M edges while flooding
//!   completes in ~3 rounds of tiny churn, so per-trial *setup*
//!   (stationary init + structure building) is nearly the whole trial.
//!   Compared paths: the pre-PR-shaped stateless path
//!   (`Sweep::run` + `run_trial`, fresh model + buffers every trial)
//!   vs the zero-rebuild path (`run_with_state` + per-worker model
//!   cache + `TrialScratch`).
//! * **t05 density grid** — the waypoint-MANET density sweep at bench
//!   scale (the `benches/t15_sweep` workload). Honest contrast: its
//!   trials are *round*-dominated (mobility stepping), so zero-rebuild
//!   is within noise of fresh construction here — recorded to show
//!   where the optimization does and does not pay.
//! * **engine batch, exact-scan MEG** — `reuse_models(true)` vs
//!   `(false)` on the `O(n²)`-allocation exact-scan construction
//!   (32 MB occupancy + event calendar per trial when fresh).
//!
//! Emits machine-readable `BENCH_trial_reuse.json` at the repository
//! root (in quick mode: `target/BENCH_trial_reuse_quick.json`, for the
//! CI artifact upload — quick outputs never land in the source tree).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::engine::{Simulation, TrialScratch};
use dynagraph::sweep::{Axis, Cell, Grid, Sweep, SweepReport, Trial, TrialBudget};
use dynagraph::EvolvingGraph;

/// Per-worker reuse state (the `dg-experiments` `FloodWorker` pattern):
/// one cached model per cell plus one scratch shared across cells.
struct Worker<G> {
    models: HashMap<usize, Option<G>>,
    scratch: TrialScratch,
}

impl<G> Worker<G> {
    fn new() -> Self {
        Worker {
            models: HashMap::new(),
            scratch: TrialScratch::new(),
        }
    }
}

/// One flooding trial through the stateless engine hook — the pre-PR
/// shape: a fresh model and fresh buffers every trial.
fn flood_trial_fresh<G: EvolvingGraph, F: Fn(u64) -> G>(
    make: F,
    warm: usize,
    trial: Trial,
) -> Option<f64> {
    Simulation::builder()
        .model(make)
        .max_rounds(100_000)
        .warm_up(warm)
        .base_seed(trial.cell_seed)
        .run_trial(trial.index)
        .time
        .map(f64::from)
}

/// Times `sweep()` and returns (report, seconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

struct Measurement {
    fresh_ms_per_trial: f64,
    reuse_ms_per_trial: f64,
    trials: usize,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.fresh_ms_per_trial / self.reuse_ms_per_trial
    }
}

/// Runs a grid workload on both paths, asserts byte-identity, returns
/// per-trial times (best of `reps` to damp scheduler noise).
fn measure_sweep<G, F>(
    grid: fn() -> Grid,
    make: F,
    warm: fn(&Cell) -> usize,
    budget: usize,
    reps: usize,
) -> Measurement
where
    G: EvolvingGraph,
    F: Fn(&Cell, u64) -> G + Sync + Copy,
{
    let run_fresh = |seed: u64| {
        Sweep::over(grid())
            .budget(TrialBudget::fixed(budget))
            .base_seed(seed)
            .parallel(false)
            .run(|cell, trial| flood_trial_fresh(|s| make(cell, s), warm(cell), trial))
            .unwrap()
    };
    let run_reused = |seed: u64| {
        Sweep::over(grid())
            .budget(TrialBudget::fixed(budget))
            .base_seed(seed)
            .parallel(false)
            .run_with_state(Worker::new, |cell, trial, worker| {
                let warm = warm(cell);
                let builder = Simulation::builder()
                    .model(|s| make(cell, s))
                    .max_rounds(100_000)
                    .warm_up(warm)
                    .base_seed(trial.cell_seed);
                let slot = worker.models.entry(cell.id()).or_default();
                builder
                    .run_trial_with(trial.index, slot, &mut worker.scratch)
                    .time
                    .map(f64::from)
            })
            .unwrap()
    };
    let mut fresh_best = f64::INFINITY;
    let mut reuse_best = f64::INFINITY;
    let mut trials = 0;
    for rep in 0..reps {
        let seed = 0x7160 + rep as u64;
        let (fresh, t_fresh): (SweepReport, f64) = timed(|| run_fresh(seed));
        let (reused, t_reuse) = timed(|| run_reused(seed));
        assert_eq!(
            fresh.to_json(),
            reused.to_json(),
            "zero-rebuild must be byte-identical to the fresh path"
        );
        trials = fresh.total_trials();
        fresh_best = fresh_best.min(t_fresh * 1e3 / trials as f64);
        reuse_best = reuse_best.min(t_reuse * 1e3 / trials as f64);
    }
    Measurement {
        fresh_ms_per_trial: fresh_best,
        reuse_ms_per_trial: reuse_best,
        trials,
    }
}

/// Commit-time baselines: the same three workloads, same machine, run
/// against the parent commit (stateless `run_trial` path; before the
/// full-emission bulk load, the lazy sparse-MEG dynamics and the
/// occupancy `PairMap`, which speed up *both* of today's paths). Kept
/// as constants so the committed `BENCH_trial_reuse.json` can state the
/// end-to-end effect of the PR; on other machines they are indicative
/// only.
const PRE_PR_PHASE_CELL_MS: f64 = 859.7;
const PRE_PR_T05_MS: f64 = 0.5817;
const PRE_PR_EXACT_SCAN_MS: f64 = 337.9;

fn main() {
    let quick = dg_bench::quick_mode();
    let reps = if quick { 1 } else { 3 };

    // 1. Headline: slow-churn phase cells — setup is the trial.
    let n1 = if quick { 1024 } else { 16384 };
    let w1_qs = if quick {
        "[0.02, 0.01]"
    } else {
        "[0.005, 0.002]"
    };
    let w1_grid = if quick {
        || Grid::new().axis(Axis::explicit("q", vec![0.02, 0.01]))
    } else {
        || Grid::new().axis(Axis::explicit("q", vec![0.005, 0.002]))
    };
    let w1 = measure_sweep(
        w1_grid,
        move |cell: &Cell, seed| {
            SparseTwoStateEdgeMeg::stationary_sparse_init(n1, 1.0 / n1 as f64, cell.get("q"), seed)
                .unwrap()
        },
        |_| 0,
        if quick { 3 } else { 6 },
        reps,
    );
    println!(
        "phase-cell sweep  n={n1:>5}: fresh {:>8.1} ms/trial   zero-rebuild {:>8.1} ms/trial   {:.2}x ({} trials)",
        w1.fresh_ms_per_trial, w1.reuse_ms_per_trial, w1.speedup(), w1.trials
    );

    // 2. The t05 density grid (round-dominated; honesty check).
    let n2 = if quick { 24 } else { 48 };
    let w2_grid = if quick {
        || Grid::new().axis(Axis::explicit("L", vec![4.0, 6.5]))
    } else {
        || Grid::new().axis(Axis::explicit("L", vec![4.5, 6.0, 7.5, 9.0, 10.5]))
    };
    let w2 = measure_sweep(
        w2_grid,
        move |cell: &Cell, seed| {
            GeometricMeg::new(
                RandomWaypoint::new(cell.get("L"), 1.0, 1.0).unwrap(),
                n2,
                1.0,
                seed,
            )
            .unwrap()
        },
        |cell| (8.0 * cell.get("L")) as usize,
        if quick { 4 } else { 24 },
        reps,
    );
    println!(
        "t05 density grid  n={n2:>5}: fresh {:>8.3} ms/trial   zero-rebuild {:>8.3} ms/trial   {:.2}x ({} trials)",
        w2.fresh_ms_per_trial, w2.reuse_ms_per_trial, w2.speedup(), w2.trials
    );

    // 3. Engine batch over the exact-scan construction (32 MB of
    // occupancy + calendar per fresh trial at full scale).
    let n3 = if quick { 512 } else { 4096 };
    let (w3_fresh, w3_reuse, w3_trials) = {
        let trials = if quick { 4 } else { 10 };
        let build = move |rep: u64| {
            Simulation::builder()
                .model(move |seed| {
                    SparseTwoStateEdgeMeg::stationary(n3, 1.0 / n3 as f64, 0.2, seed).unwrap()
                })
                .trials(trials)
                .max_rounds(200_000)
                .parallel(false)
                .base_seed(0x7170 + rep)
        };
        let mut fresh_best = f64::INFINITY;
        let mut reuse_best = f64::INFINITY;
        for rep in 0..reps as u64 {
            let (fresh, t_fresh) = timed(|| build(rep).reuse_models(false).run());
            let (reused, t_reuse) = timed(|| build(rep).run());
            assert_eq!(fresh, reused, "model reuse must be byte-identical");
            fresh_best = fresh_best.min(t_fresh * 1e3 / trials as f64);
            reuse_best = reuse_best.min(t_reuse * 1e3 / trials as f64);
        }
        (fresh_best, reuse_best, trials)
    };
    println!(
        "exact-scan batch  n={n3:>5}: fresh {:>8.1} ms/trial   zero-rebuild {:>8.1} ms/trial   {:.2}x ({} trials)",
        w3_fresh, w3_reuse, w3_fresh / w3_reuse, w3_trials
    );

    // The zero-rebuild path must never lose to fresh construction on
    // the setup-dominated workloads (tolerance for timer noise).
    if !quick {
        assert!(
            w1.speedup() > 1.02,
            "headline workload shows no reuse gain: {:.3}x",
            w1.speedup()
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t16_trial_reuse\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"description\": \"zero-rebuild trials: per-worker model reuse (reset instead of reconstruction) + reusable TrialScratch across the engine and sweep layers, plus the full-emission bulk load and the lazy sparse-MEG dynamics that this PR added to the shared trial path. fresh = stateless pre-PR-shaped path (new model + new buffers every trial); zero_rebuild = cached model reset in place + retained buffers. Reports are asserted byte-identical on every workload.\","
    );
    let _ = writeln!(json, "  \"workloads\": {{");
    let _ = writeln!(
        json,
        "    \"phase_cell_sweep\": {{\"model\": \"sparse-init edge-MEG\", \"n\": {n1}, \"p\": \"1/n\", \"q\": {w1_qs}, \"trials\": {}, \"fresh_ms_per_trial\": {:.2}, \"zero_rebuild_ms_per_trial\": {:.2}, \"speedup\": {:.3}}},",
        w1.trials, w1.fresh_ms_per_trial, w1.reuse_ms_per_trial, w1.speedup()
    );
    let _ = writeln!(
        json,
        "    \"t05_density_grid\": {{\"model\": \"waypoint-manet\", \"n\": {n2}, \"trials\": {}, \"fresh_ms_per_trial\": {:.4}, \"zero_rebuild_ms_per_trial\": {:.4}, \"speedup\": {:.3}, \"note\": \"round-dominated: mobility stepping, not setup, is the cost here; recorded as the honest negative control\"}},",
        w2.trials, w2.fresh_ms_per_trial, w2.reuse_ms_per_trial, w2.speedup()
    );
    let _ = writeln!(
        json,
        "    \"exact_scan_batch\": {{\"model\": \"exact-scan sparse edge-MEG\", \"n\": {n3}, \"trials\": {w3_trials}, \"fresh_ms_per_trial\": {:.2}, \"zero_rebuild_ms_per_trial\": {:.2}, \"speedup\": {:.3}}}",
        w3_fresh, w3_reuse, w3_fresh / w3_reuse
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"pre_pr_baseline\": {{\"phase_cell_sweep_ms_per_trial\": {PRE_PR_PHASE_CELL_MS}, \"t05_density_grid_ms_per_trial\": {PRE_PR_T05_MS}, \"exact_scan_batch_ms_per_trial\": {PRE_PR_EXACT_SCAN_MS}, \"note\": \"same workloads, same machine, measured at commit time on the parent commit (before the bulk load, the lazy sparse-MEG dynamics and the occupancy PairMap, which speed up both of today's paths); the end-to-end headline below compares against it\"}},"
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{\"phase_cell_end_to_end_vs_pre_pr\": {:.2}, \"t05_end_to_end_vs_pre_pr\": {:.2}, \"exact_scan_end_to_end_vs_pre_pr\": {:.2}, \"reuse_only_byte_identical\": true}}",
        PRE_PR_PHASE_CELL_MS / w1.reuse_ms_per_trial,
        PRE_PR_T05_MS / w2.reuse_ms_per_trial,
        PRE_PR_EXACT_SCAN_MS / w3_reuse,
    );
    let _ = writeln!(json, "}}");

    // Quick mode is the CI smoke: write a separate artifact (uploaded
    // by the workflow) instead of clobbering the committed full-scale
    // trajectory record.
    let name = if quick {
        "../../target/BENCH_trial_reuse_quick.json"
    } else {
        "../../BENCH_trial_reuse.json"
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
