//! t21 — the price of fault-injection hooks.
//!
//! `dg-fault` follows the `dg-obs` bargain: compiled in everywhere,
//! free when disarmed. This bench pins both halves with numbers:
//!
//! * **disarmed overhead** — the t13 delta-churn hot loop raw vs the
//!   same loop with a disarmed [`dg_fault::should_fail`] probe on every
//!   round. The guard *asserts* the min-time ratio stays within noise —
//!   in quick mode too, so CI catches a regression that makes the
//!   off-switch expensive — and that zero faults were injected.
//! * **recovery identity** — a sweep run clean vs the same sweep under
//!   an armed plan (trial panics retried, checkpoint write faults), the
//!   artifacts asserted byte-identical and both timed. Fault *recovery*
//!   costs time; it must never cost correctness.
//!
//! Emits `BENCH_fault.json` at the repository root (quick mode:
//! `target/BENCH_fault_quick.json`, for the CI artifact upload — quick
//! outputs never land in the source tree).

use std::fmt::Write as _;
use std::path::Path;
use std::thread::available_parallelism;
use std::time::Instant;

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_fault::FaultPlan;
use dg_sweep::{Axis, Grid, Sweep, TrialBudget, TrialPanic};
use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph};

/// Ratio ceiling for the disarmed-hook guard. A disarmed probe is one
/// relaxed atomic load per ~microsecond round; anything past a third of
/// the round cost means the off-switch broke.
const DISABLED_RATIO_MAX: f64 = 1.30;

struct DisarmedOverhead {
    n: usize,
    q: f64,
    rounds: usize,
    reps: usize,
    raw_ns_per_round: f64,
    guarded_ns_per_round: f64,
    ratio: f64,
}

/// Times the t13 hot loop raw, then with a disarmed `should_fail` probe
/// in the loop body, taking the min over `reps` passes (min-time is the
/// noise-robust statistic for a guard that must hold on shared CI
/// runners).
fn bench_disarmed_overhead(n: usize, q: f64, rounds: usize, reps: usize) -> DisarmedOverhead {
    assert!(!dg_fault::enabled(), "guard must run with no plan armed");
    let p = 1.0 / n as f64;
    let seed = 0xB521;

    let time_loop = |probed: bool| -> f64 {
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let mut meg = SparseTwoStateEdgeMeg::stationary(n, p, q, seed + rep as u64).unwrap();
            let mut adj = DynAdjacency::new(n);
            let mut delta = EdgeDelta::new();
            for _ in 0..50 {
                meg.step_delta(&mut delta);
                adj.apply(&delta);
            }
            let start = Instant::now();
            if probed {
                for _ in 0..rounds {
                    assert!(!dg_fault::should_fail("bench.hot.loop"));
                    meg.step_delta(&mut delta);
                    adj.apply(&delta);
                }
            } else {
                for _ in 0..rounds {
                    meg.step_delta(&mut delta);
                    adj.apply(&delta);
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
            best = best.min(ns);
        }
        best
    };

    let before = dg_fault::injected_total();
    let raw = time_loop(false);
    let guarded = time_loop(true);
    assert_eq!(
        dg_fault::injected_total(),
        before,
        "disarmed probes must inject nothing"
    );
    DisarmedOverhead {
        n,
        q,
        rounds,
        reps,
        raw_ns_per_round: raw,
        guarded_ns_per_round: guarded,
        ratio: guarded / raw,
    }
}

struct RecoveryOverhead {
    cells: usize,
    trials_per_cell: usize,
    injected: u64,
    clean_ms: f64,
    faulted_ms: f64,
    ratio: f64,
}

/// Times a sweep clean vs the same sweep recovering from injected trial
/// panics and checkpoint write faults, asserting byte identity — the
/// chaos pin riding along in the perf record.
fn bench_recovery(cells_per_axis: usize, trials: usize) -> RecoveryOverhead {
    let grid = || {
        Grid::new()
            .axis(Axis::ints("n", 1..=cells_per_axis))
            .axis(Axis::linear("q", 0.1, 0.4, 3))
    };
    let sweep = || {
        Sweep::over(grid())
            .budget(TrialBudget::fixed(trials))
            .base_seed(0xB52F)
    };
    let measure = |cell: &dg_sweep::Cell, seed: u64| -> Option<f64> {
        // A deterministic stand-in trial heavy enough to dwarf scheduler
        // cost: a short splitmix-style scramble of the cell coordinates.
        let mut z = seed ^ (cell.get("n") as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..512 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        Some(cell.get("q") + (z % 101) as f64)
    };
    let path = std::env::temp_dir().join(format!("dg_t21_fault_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let start = Instant::now();
    let clean = sweep()
        .checkpoint(&path)
        .run(|c, t| measure(c, t.seed))
        .unwrap();
    let clean_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&path);

    let before = dg_fault::injected_total();
    // The injected panics are caught by the retry loop; keep the default
    // hook from spraying backtraces into the bench output while they fly.
    std::panic::set_hook(Box::new(|_| {}));
    let start = Instant::now();
    let faulted = {
        let _plan = dg_fault::scoped(
            FaultPlan::new(0xB52F)
                .always("sweep.trial.panic", 8)
                .always("store.write.err", 2),
        );
        sweep()
            .checkpoint(&path)
            .on_trial_panic(TrialPanic::Retry { max: 8 })
            .run(|c, t| measure(c, t.seed))
            .unwrap()
    };
    let faulted_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = std::panic::take_hook();
    let injected = dg_fault::injected_total() - before;
    assert!(injected >= 10, "the plan must actually have fired");
    assert_eq!(
        faulted.to_json(),
        clean.to_json(),
        "fault recovery perturbed the artifact"
    );
    let _ = std::fs::remove_file(&path);

    RecoveryOverhead {
        cells: clean.cells().len(),
        trials_per_cell: trials,
        injected,
        clean_ms,
        faulted_ms,
        ratio: faulted_ms / clean_ms,
    }
}

fn main() {
    let quick = dg_bench::quick_mode();
    dg_fault::set_plan(None);
    let cores = available_parallelism().map(|c| c.get()).unwrap_or(1);

    let overhead = if quick {
        bench_disarmed_overhead(256, 0.05, 300, 3)
    } else {
        bench_disarmed_overhead(4096, 0.01, 1_500, 5)
    };
    println!(
        "disarmed guard n={:>5} q={:<5} {:>5} rounds x{}   raw {:>7.0} ns/round   guarded {:>7.0} ns/round   ratio {:.3}",
        overhead.n, overhead.q, overhead.rounds, overhead.reps,
        overhead.raw_ns_per_round, overhead.guarded_ns_per_round, overhead.ratio
    );
    assert!(
        overhead.ratio <= DISABLED_RATIO_MAX,
        "disarmed fault-hook overhead {:.3} exceeds {DISABLED_RATIO_MAX}",
        overhead.ratio
    );

    let recovery = if quick {
        bench_recovery(8, 8)
    } else {
        bench_recovery(48, 24)
    };
    println!(
        "recovery sweep {:>4} cells x{:>3} trials   clean {:>8.1} ms   faulted {:>8.1} ms ({} injected)   ratio {:.3}   (byte-identical)",
        recovery.cells, recovery.trials_per_cell, recovery.clean_ms, recovery.faulted_ms,
        recovery.injected, recovery.ratio
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t21_fault\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"description\": \"cost of dg-fault hooks: disarmed-probe guard on the delta-churn hot loop, and a sweep recovering from injected trial panics + checkpoint write faults vs the same sweep clean (asserted byte-identical)\","
    );
    let _ = writeln!(
        json,
        "  \"disarmed_guard\": {{\"n\": {}, \"q\": {}, \"rounds\": {}, \"reps\": {}, \"raw_ns_per_round\": {:.1}, \"guarded_ns_per_round\": {:.1}, \"ratio\": {:.4}, \"assert_max\": {DISABLED_RATIO_MAX}}},",
        overhead.n, overhead.q, overhead.rounds, overhead.reps,
        overhead.raw_ns_per_round, overhead.guarded_ns_per_round, overhead.ratio
    );
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"cells\": {}, \"trials_per_cell\": {}, \"injected_faults\": {}, \"clean_ms\": {:.2}, \"faulted_ms\": {:.2}, \"ratio\": {:.4}, \"byte_identical\": true}},",
        recovery.cells, recovery.trials_per_cell, recovery.injected,
        recovery.clean_ms, recovery.faulted_ms, recovery.ratio
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{\"disarmed_guard_ratio\": {:.4}, \"recovery_ratio\": {:.4}}}",
        overhead.ratio, recovery.ratio
    );
    let _ = writeln!(json, "}}");

    // Quick mode is the CI smoke: write a separate artifact (uploaded
    // by the workflow) instead of clobbering the committed full-scale
    // record.
    let name = if quick {
        "../../target/BENCH_fault_quick.json"
    } else {
        "../../BENCH_fault.json"
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
