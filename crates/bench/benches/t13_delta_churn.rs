//! t13 — delta-native stepping vs full per-round rebuild.
//!
//! The tentpole claim of the delta refactor: in the paper's sparse,
//! slow-churn regimes (`p ≈ 1/n`, stationary) the per-round cost of the
//! simulator should be proportional to the *churn* (edges toggled this
//! round), not to `|E_t| + n`. This bench measures both stepping paths
//! of the event-driven `SparseTwoStateEdgeMeg` on identical realizations
//! (same seed ⇒ same RNG stream), plus an end-to-end engine flooding run
//! on both pipelines, and emits machine-readable `BENCH_delta.json` at
//! the repository root so future PRs can track the perf trajectory.
//!
//! Quick mode (`DG_BENCH_QUICK=1`) shrinks every case so CI can smoke
//! the harness in seconds.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph};

struct SteppingResult {
    n: usize,
    p: f64,
    q: f64,
    rounds: usize,
    rebuild_ns_per_round: f64,
    delta_ns_per_round: f64,
    speedup: f64,
    mean_edges: f64,
    mean_churn: f64,
    headline: bool,
}

/// Times `rounds` rounds of the same stationary realization on both
/// stepping paths.
fn bench_stepping(n: usize, q: f64, rounds: usize, headline: bool) -> SteppingResult {
    let p = 1.0 / n as f64;
    let seed = 0xBE7C_D317;

    // Full-rebuild path: every round materializes the CSR snapshot.
    let mut rebuild = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
    for _ in 0..50 {
        rebuild.step(); // untimed warm-up: fault in buffers and caches
    }
    let mut edges_total = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        edges_total += rebuild.step().edge_count();
    }
    let rebuild_time = start.elapsed();
    let final_edges = rebuild.alive_count();

    // Delta path: the popped toggle events are applied to an incremental
    // adjacency; no snapshot is ever built.
    let mut native = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
    let mut adj = DynAdjacency::new(n);
    let mut delta = EdgeDelta::new();
    for _ in 0..50 {
        native.step_delta(&mut delta);
        adj.apply(&delta);
    }
    let mut churn_total = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        native.step_delta(&mut delta);
        adj.apply(&delta);
        churn_total += delta.churn();
    }
    let delta_time = start.elapsed();

    // Same seed, same draws: both paths must land on the same edge set.
    assert_eq!(adj.edge_count(), final_edges, "paths diverged");

    let rebuild_ns = rebuild_time.as_nanos() as f64 / rounds as f64;
    let delta_ns = delta_time.as_nanos() as f64 / rounds as f64;
    SteppingResult {
        n,
        p,
        q,
        rounds,
        rebuild_ns_per_round: rebuild_ns,
        delta_ns_per_round: delta_ns,
        speedup: rebuild_ns / delta_ns,
        mean_edges: edges_total as f64 / rounds as f64,
        mean_churn: churn_total as f64 / rounds as f64,
        headline,
    }
}

struct FloodingResult {
    n: usize,
    p: f64,
    q: f64,
    snapshot_ms: f64,
    delta_ms: f64,
    speedup: f64,
    flooding_time: Option<u32>,
}

/// Hides a model's native deltas so `flood` takes the classic snapshot
/// sweep — the full-rebuild baseline for the consumer-side comparison.
struct HideDeltas<G>(G);

impl<G: EvolvingGraph> EvolvingGraph for HideDeltas<G> {
    fn node_count(&self) -> usize {
        self.0.node_count()
    }
    fn step(&mut self) -> &dynagraph::Snapshot {
        self.0.step()
    }
    fn reset(&mut self, seed: u64) {
        self.0.reset(seed)
    }
}

/// Times one long flooding realization end to end on both sweeps
/// (frontier/delta vs snapshot rebuild + informed scan). Model
/// construction — identical RNG work on both paths — is excluded so the
/// row measures the stepping pipeline, and the runs are asserted equal.
fn bench_flooding(n: usize, p: f64, q: f64, max_rounds: u32) -> FloodingResult {
    let seed = 0xF100D;
    let mut native = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
    let start = Instant::now();
    let delta_run = dynagraph::flooding::flood(&mut native, 0, max_rounds);
    let delta_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut hidden = HideDeltas(SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap());
    let start = Instant::now();
    let snapshot_run = dynagraph::flooding::flood(&mut hidden, 0, max_rounds);
    let snapshot_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(delta_run, snapshot_run, "sweeps must agree");
    FloodingResult {
        n,
        p,
        q,
        snapshot_ms,
        delta_ms,
        speedup: snapshot_ms / delta_ms,
        flooding_time: delta_run.flooding_time(),
    }
}

fn main() {
    let quick = dg_bench::quick_mode();
    let stepping_cases: &[(usize, f64, usize, bool)] = if quick {
        &[(256, 0.05, 300, true)]
    } else {
        &[
            // (n, q, rounds, headline) — p is always 1/n (sparse regime).
            // Speedup grows as churn slows: the rebuild pays O(m + n)
            // while the delta path pays O(churn), and m ≈ (p/(p+q))·n²/2.
            (1024, 0.05, 3_000, false),
            (4096, 0.005, 1_000, true),
            (4096, 0.01, 1_500, false),
            (4096, 0.02, 1_500, false),
            (4096, 0.2, 1_500, false),
        ]
    };
    let mut stepping = Vec::new();
    for &(n, q, rounds, headline) in stepping_cases {
        let r = bench_stepping(n, q, rounds, headline);
        println!(
            "stepping n={:>5} p=1/n q={:<4} {:>7} rounds   rebuild {:>9.0} ns/round   delta {:>8.0} ns/round   speedup {:>5.1}x   (edges ~{:.0}, churn ~{:.1})",
            r.n, r.q, r.rounds, r.rebuild_ns_per_round, r.delta_ns_per_round, r.speedup, r.mean_edges, r.mean_churn
        );
        stepping.push(r);
    }

    // The paper's very sparse regime (expected degree well below 1 per
    // round): flooding threads through hundreds of ephemeral edges, so
    // the run is long and the sweep cost dominates.
    let flooding = if quick {
        bench_flooding(256, 1.0 / (16.0 * 256.0), 0.1, 20_000)
    } else {
        bench_flooding(4096, 1.0 / (64.0 * 4096.0), 0.05, 100_000)
    };
    println!(
        "flooding n={}   snapshot {:>8.1} ms   delta {:>8.1} ms   speedup {:.1}x   (F(G,s) = {:?} rounds)",
        flooding.n, flooding.snapshot_ms, flooding.delta_ms, flooding.speedup, flooding.flooding_time
    );

    // Machine-readable trajectory record (hand-rolled JSON; the build
    // environment has no serde).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t13_delta_churn\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"description\": \"per-round cost of full CSR rebuild vs delta-native stepping on the stationary sparse edge-MEG (p = 1/n)\","
    );
    let _ = writeln!(json, "  \"stepping\": [");
    for (i, r) in stepping.iter().enumerate() {
        let comma = if i + 1 < stepping.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"model\": \"sparse-two-state-edge-meg\", \"headline\": {}, \"n\": {}, \"p\": {:.8}, \"q\": {}, \"rounds\": {}, \"rebuild_ns_per_round\": {:.1}, \"delta_ns_per_round\": {:.1}, \"speedup\": {:.2}, \"mean_edges\": {:.1}, \"mean_churn\": {:.2}}}{}",
            r.headline, r.n, r.p, r.q, r.rounds, r.rebuild_ns_per_round, r.delta_ns_per_round, r.speedup, r.mean_edges, r.mean_churn, comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"flooding_end_to_end\": [");
    let _ = writeln!(
        json,
        "    {{\"model\": \"sparse-two-state-edge-meg\", \"protocol\": \"flooding\", \"n\": {}, \"p\": {:.10}, \"q\": {}, \"snapshot_ms\": {:.2}, \"delta_ms\": {:.2}, \"speedup\": {:.2}, \"flooding_time\": {}}}",
        flooding.n,
        flooding.p,
        flooding.q,
        flooding.snapshot_ms,
        flooding.delta_ms,
        flooding.speedup,
        flooding
            .flooding_time
            .map_or("null".to_string(), |t| t.to_string())
    );
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if quick {
        // Quick mode is a CI smoke run; don't clobber the committed
        // full-scale trajectory record.
        println!("quick mode: skipping BENCH_delta.json update");
        return;
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_delta.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
