//! t19 — multi-metric sweeps: what recording `(rounds, messages,
//! coverage)` per trial buys over running one sweep per observable.
//!
//! The workload is the t19 time-vs-messages trade-off at bench scale:
//! flooding on the stationary sparse edge-MEG (`p = 1.5/n`), with the
//! edge death rate `q` sweeping the stationary density. Three
//! measurements:
//!
//! * **one sweep vs two** — the multi-metric sweep stops each cell when
//!   *both* the `rounds` and `messages` CIs are tight; the baseline runs
//!   two scalar sweeps (one per observable) at the same targets and
//!   spends engine trials twice. Per cell the multi-metric sweep pays
//!   `max(needed_rounds, needed_messages)` where the pair of scalar
//!   sweeps pays the sum — the trial saving is the headline.
//! * **throughput** — trials/sec of the multi-metric sweep.
//! * **determinism** — the multi-metric sweep re-run single-threaded
//!   must produce a byte-identical `dg-sweep/2` artifact.
//!
//! Emits machine-readable `BENCH_tradeoff.json` at the repository root
//! (quick mode, `DG_BENCH_QUICK=1`: shrunken sizes and a
//! `target/BENCH_tradeoff_quick.json` sibling for the CI artifact
//! upload — quick outputs never land in the source tree).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::engine::{Simulation, TrialRecord};
use dynagraph::sweep::{
    trial_metrics, Axis, CiTarget, Grid, Metric, Sweep, SweepReport, Trial, TrialBudget,
};

const MAX_ROUNDS: u32 = 50_000;

fn grid(quick: bool) -> Grid {
    let qs: Vec<f64> = if quick {
        vec![0.1, 0.8]
    } else {
        vec![0.1, 0.4, 0.8]
    };
    Grid::new().axis(Axis::explicit("q", qs))
}

fn budget(quick: bool) -> TrialBudget {
    if quick {
        TrialBudget::adaptive(3, 12, CiTarget::Relative(0.1))
    } else {
        TrialBudget::adaptive(8, 64, CiTarget::Relative(0.1))
    }
}

fn flood_record(n: usize, q: f64, trial: Trial) -> TrialRecord {
    Simulation::builder()
        .model(move |seed| SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, q, seed).unwrap())
        .max_rounds(MAX_ROUNDS)
        .base_seed(trial.cell_seed)
        .run_trial(trial.index)
}

/// The multi-metric sweep: one artifact, both gating observables.
fn run_multi(n: usize, quick: bool, threads: Option<usize>) -> (SweepReport, f64) {
    let metrics = vec![
        Metric::new("rounds"),
        Metric::new("messages"),
        Metric::observe("coverage"),
    ];
    let mut sweep = Sweep::over(grid(quick).metrics(metrics.clone()))
        .budget(budget(quick))
        .base_seed(0x719B);
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    let start = Instant::now();
    let report = sweep
        .run_metrics(move |cell, trial| {
            trial_metrics(&flood_record(n, cell.get("q"), trial), n, &metrics)
        })
        .unwrap();
    (report, start.elapsed().as_secs_f64())
}

/// One scalar sweep per observable — the pre-`dg-sweep/2` workflow.
fn run_scalar(
    n: usize,
    quick: bool,
    extract: impl Fn(&TrialRecord) -> Option<f64> + Send + Sync + 'static,
) -> (SweepReport, f64) {
    let start = Instant::now();
    let report = Sweep::over(grid(quick))
        .budget(budget(quick))
        .base_seed(0x719B)
        .run(move |cell, trial| extract(&flood_record(n, cell.get("q"), trial)))
        .unwrap();
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let quick = dg_bench::quick_mode();
    let n = if quick { 100 } else { 300 };

    // 1. The multi-metric sweep (the thing being sold).
    let (multi, multi_secs) = run_multi(n, quick, None);
    assert!(multi.is_complete());
    let multi_trials = multi.total_trials();
    println!(
        "multi-metric  n={n:>3}  {} cells  {multi_trials:>4} trials  {:>7.2} ms  {:>7.1} trials/s",
        multi.cells().len(),
        multi_secs * 1e3,
        multi_trials as f64 / multi_secs,
    );

    // 2. The baseline: one scalar sweep per gating observable, same
    // grid, same seeds, same CI targets — engine work paid twice.
    let (rounds_only, rounds_secs) = run_scalar(n, quick, |r| r.time.map(f64::from));
    let (messages_only, messages_secs) = run_scalar(n, quick, |r| Some(r.messages as f64));
    let scalar_trials = rounds_only.total_trials() + messages_only.total_trials();
    let savings = 1.0 - multi_trials as f64 / scalar_trials as f64;
    println!(
        "two scalar    n={n:>3}  rounds {:>4} + messages {:>4} = {scalar_trials:>4} trials  {:>7.2} ms",
        rounds_only.total_trials(),
        messages_only.total_trials(),
        (rounds_secs + messages_secs) * 1e3,
    );
    println!(
        "one sweep saves {:.1}% of engine trials ({} of {}) at the same per-observable CI targets",
        savings * 100.0,
        scalar_trials - multi_trials,
        scalar_trials
    );
    if !quick {
        assert!(
            savings >= 0.05,
            "acceptance: multi-metric sweep must save >= 5% of trials, got {:.1}%",
            savings * 100.0
        );
    }

    // 3. Determinism: a single-threaded re-run must reproduce the
    // parallel artifact byte for byte (the dg-sweep/2 contract).
    let (serial, _) = run_multi(n, quick, Some(1));
    let byte_identical = serial.to_json() == multi.to_json();
    assert!(
        byte_identical,
        "serial re-run must be byte-identical to the parallel artifact"
    );
    println!("serial re-run artifact byte-identical: {byte_identical}");

    // Machine-readable trajectory record (hand-rolled JSON; no serde in
    // this environment).
    let (rounds, messages, coverage) = (0usize, 1usize, 2usize);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t19_tradeoff\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"description\": \"multi-metric (rounds, messages, coverage) sweep on the stationary edge-MEG density grid: engine-trial savings of one per-metric-stopped sweep vs one scalar sweep per observable, plus dg-sweep/2 byte-determinism\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{\"model\": \"sparse-two-state-edge-meg\", \"n\": {n}, \"p\": {:.6}, \"ci_target_relative\": 0.1}},",
        1.5 / n as f64,
    );
    let _ = writeln!(json, "  \"cells\": [");
    let cells_n = multi.cells().len();
    for (i, cell) in multi.cells().iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"q\": {}, \"trials\": {}, \"mean_rounds\": {:.2}, \"mean_messages\": {:.1}, \"mean_coverage\": {:.4}, \"rounds_incomplete\": {}}}{}",
            multi.axis_value(cell, "q"),
            cell.trials(),
            cell.mean_of(rounds).unwrap_or(f64::NAN),
            cell.mean_of(messages).unwrap_or(f64::NAN),
            cell.mean_of(coverage).unwrap_or(f64::NAN),
            cell.incomplete_of(rounds),
            if i + 1 < cells_n { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"multi_metric\": {{\"total_trials\": {multi_trials}, \"seconds\": {multi_secs:.3}, \"trials_per_sec\": {:.1}}},",
        multi_trials as f64 / multi_secs,
    );
    let _ = writeln!(
        json,
        "  \"two_scalar_sweeps\": {{\"rounds_trials\": {}, \"messages_trials\": {}, \"total_trials\": {scalar_trials}, \"seconds\": {:.3}}},",
        rounds_only.total_trials(),
        messages_only.total_trials(),
        rounds_secs + messages_secs,
    );
    let _ = writeln!(
        json,
        "  \"headline\": {{\"trial_savings\": {savings:.3}, \"serial_byte_identical\": {byte_identical}}}"
    );
    let _ = writeln!(json, "}}");

    // Quick mode writes a `_quick` sibling (CI uploads it as an
    // artifact) instead of clobbering the committed full-scale record.
    let name = if quick {
        "../../target/BENCH_tradeoff_quick.json"
    } else {
        "../../BENCH_tradeoff.json"
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
