//! T3 bench: flooding on the generalized (bursty hidden-chain) edge-MEG
//! at two chain speeds — the Tmix-tracking series.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg};
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t03_hidden_edge");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    let n = 64;
    for &slow in &[1.0f64, 4.0] {
        let (chain, chi) = bursty_chain(0.02 / slow, 0.4 / slow, 0.4 / slow);
        group.bench_with_input(
            BenchmarkId::new("flood_slowdown", slow as u64),
            &slow,
            |b, _| {
                b.iter(|| {
                    let mut g = HiddenChainEdgeMeg::stationary(
                        n,
                        chain.clone(),
                        chi.clone(),
                        tape.next_seed(),
                    )
                    .unwrap();
                    flood(&mut g, 0, 500_000).flooding_time()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
