//! T3 bench: flooding on the generalized (bursty hidden-chain) edge-MEG
//! at two chain speeds — the Tmix-tracking series — through the engine.

use dg_bench::{Harness, SeedTape};
use dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg};
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let n = 64;
    for &slow in &[1.0f64, 4.0] {
        let (chain, chi) = bursty_chain(0.02 / slow, 0.4 / slow, 0.4 / slow);
        h.bench(&format!("t03_hidden_edge/flood_slowdown/{slow}"), || {
            let chain = chain.clone();
            let chi = chi.clone();
            Simulation::builder()
                .model(move |seed| {
                    HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), seed).unwrap()
                })
                .trials(2)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
