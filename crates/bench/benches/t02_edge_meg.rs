//! T2 bench: the n-sweep series of the two-state edge-MEG experiment
//! (`p = 0.5/n`, `q = 0.9`, the regime where the general bound is almost
//! tight).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t02_edge_meg");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    for &n in &[64usize, 128, 256] {
        let p = 0.5 / n as f64;
        group.bench_with_input(BenchmarkId::new("flood", n), &n, |b, &n| {
            b.iter(|| {
                let mut g =
                    SparseTwoStateEdgeMeg::stationary(n, p, 0.9, tape.next_seed()).unwrap();
                flood(&mut g, 0, 500_000).flooding_time()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
