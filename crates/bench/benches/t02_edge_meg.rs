//! T2 bench: the n-sweep series of the two-state edge-MEG experiment
//! (`p = 0.5/n`, `q = 0.9`, the regime where the general bound is almost
//! tight), driven through the engine.

use dg_bench::{Harness, SeedTape};
use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    for &n in &[64usize, 128, 256] {
        let p = 0.5 / n as f64;
        h.bench(&format!("t02_edge_meg/flood/{n}"), || {
            Simulation::builder()
                .model(move |seed| SparseTwoStateEdgeMeg::stationary(n, p, 0.9, seed).unwrap())
                .trials(2)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
