//! T10 bench: random walk flooding on k-augmented grids (Corollary 6)
//! plus the exact mixing-time computation that carries the k² separation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_graph::generators;
use dg_markov::random_walk_chain;
use dg_mobility::{PathFamily, RandomPathModel};
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t10_k_augmented");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    let m = 8;
    let n = m * m;
    for &k in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("flood", k), &k, |b, &k| {
            b.iter(|| {
                let h = generators::k_augmented_grid(m, m, k);
                let family = PathFamily::edges_family(&h).unwrap();
                let mut model =
                    RandomPathModel::stationary_lazy(family, n, 0.25, tape.next_seed()).unwrap();
                flood(&mut model, 0, 500_000).flooding_time()
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_mixing_time", k), &k, |b, &k| {
            let h = generators::k_augmented_grid(m, m, k);
            let chain = random_walk_chain(&h, 0.25).unwrap();
            b.iter(|| chain.mixing_time(0.25, 1 << 24).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
