//! T10 bench: engine flooding on k-augmented grids (Corollary 6) plus
//! the exact mixing-time computation that carries the k² separation.

use dg_bench::{Harness, SeedTape};
use dg_graph::generators;
use dg_markov::random_walk_chain;
use dg_mobility::{PathFamily, RandomPathModel};
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let m = 8;
    let n = m * m;
    for &k in &[1usize, 2, 4] {
        h.bench(&format!("t10_k_augmented/flood/{k}"), || {
            Simulation::builder()
                .model(move |seed| {
                    let graph = generators::k_augmented_grid(m, m, k);
                    let family = PathFamily::edges_family(&graph).unwrap();
                    RandomPathModel::stationary_lazy(family, n, 0.25, seed).unwrap()
                })
                .trials(2)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
        let graph = generators::k_augmented_grid(m, m, k);
        let chain = random_walk_chain(&graph, 0.25).unwrap();
        h.bench(&format!("t10_k_augmented/exact_mixing_time/{k}"), || {
            chain.mixing_time(0.25, 1 << 24).unwrap()
        });
    }
}
