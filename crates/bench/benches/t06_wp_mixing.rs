//! T6 bench: the positional mixing-time measurement of the waypoint
//! model (worst-case-start ensemble TV convergence).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_mobility::{positional, RandomWaypoint};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t06_wp_mixing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    for &side in &[8.0f64, 16.0] {
        let wp = RandomWaypoint::new(side, 1.0, 1.0).unwrap();
        let reference =
            positional::stationary_occupancy(&wp, 4, (8.0 * side) as usize, 60_000, 0x60);
        group.bench_with_input(
            BenchmarkId::new("positional_mixing", side as u64),
            &side,
            |b, &side| {
                b.iter(|| {
                    positional::positional_mixing_time(
                        &wp,
                        &reference,
                        0.05,
                        1_000,
                        (side / 4.0).ceil() as usize,
                        (400.0 * side) as usize,
                        0x61,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
