//! T6 bench: the positional mixing-time measurement of the waypoint
//! model (worst-case-start ensemble TV convergence).

use dg_bench::Harness;
use dg_mobility::{positional, RandomWaypoint};

fn main() {
    let h = Harness::from_args();
    for &side in &[8.0f64, 16.0] {
        let wp = RandomWaypoint::new(side, 1.0, 1.0).unwrap();
        let reference =
            positional::stationary_occupancy(&wp, 4, (8.0 * side) as usize, 60_000, 0x60);
        h.bench(&format!("t06_wp_mixing/positional_mixing/{side}"), || {
            positional::positional_mixing_time(
                &wp,
                &reference,
                0.05,
                1_000,
                (side / 4.0).ceil() as usize,
                (400.0 * side) as usize,
                0x61,
            )
        });
    }
}
