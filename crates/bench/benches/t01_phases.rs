//! T1 bench: a small engine batch on the sparse stationary edge-MEG used
//! for the phase-structure experiment (Lemmas 13–14), with the streaming
//! phase observer attached.

use dg_bench::{Harness, SeedTape};
use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::engine::{PhaseObserver, Simulation};

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let n = 500;
    let p = 1.5 / n as f64;
    h.bench("t01_phases/flood_sparse_edge_meg_n500", || {
        Simulation::builder()
            .model(|seed| SparseTwoStateEdgeMeg::stationary(n, p, 0.2, seed).unwrap())
            .trials(2)
            .max_rounds(200_000)
            .base_seed(tape.next_seed())
            .observers(|_| PhaseObserver::new())
            .run_observed()
            .0
            .mean()
    });
}
