//! T1 bench: one full flooding run on the sparse stationary edge-MEG used
//! for the phase-structure experiment (Lemmas 13–14).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dg_bench::SeedTape;
use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t01_phases");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    let n = 500;
    let p = 1.5 / n as f64;
    group.bench_function("flood_sparse_edge_meg_n500", |b| {
        b.iter(|| {
            let mut g =
                SparseTwoStateEdgeMeg::stationary(n, p, 0.2, tape.next_seed()).unwrap();
            flood(&mut g, 0, 200_000).flooding_time()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
