//! t17 — serving overhead: what the store and daemon layers cost on
//! top of the sweeps they cache.
//!
//! The serving stack's pitch is that a phase-diagram query costs a file
//! read, not a sweep; this bench puts numbers on the layers in between:
//!
//! * **store put / get_raw / open-scan** — content-addressed write,
//!   read, and the startup index rebuild over a populated store;
//! * **HTTP round-trips** — `GET /healthz`, a full artifact fetch, and
//!   a nearest-cell query, each over a fresh TCP connection to an
//!   in-process daemon (connection setup included: that is what a
//!   one-shot `curl` pays).
//!
//! Respects `DG_BENCH_QUICK=1` like every other bench target.

use std::sync::Arc;

use dg_bench::Harness;
use dg_serve::{http, ArtifactStore, Daemon, Workload};
use dynagraph::sweep::{Axis, SweepSpec, TrialBudget};

fn main() {
    let harness = Harness::from_args();
    let quick = dg_bench::quick_mode();
    let cells = if quick { 16 } else { 128 };
    let trials = if quick { 8 } else { 32 };

    let root = std::env::temp_dir().join(format!("dg_serve_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::open(&root).expect("bench store");
    let spec = SweepSpec::new(
        vec![
            Axis::ints("x", 1..=cells),
            Axis::explicit("y", [0.25, 0.75]),
        ],
        0xBE4C,
        TrialBudget::fixed(trials),
    );
    let report = spec
        .sweep()
        .run(Workload::synthetic().trial_fn())
        .expect("no checkpoint, cannot fail");
    let fp = report.fingerprint();
    println!(
        "artifact: {} cells x {trials} trials, {} bytes\n",
        2 * cells,
        report.to_json().len()
    );

    harness.bench("store: put (atomic write + index)", || {
        store.put(&report).unwrap()
    });
    harness.bench("store: get_raw (indexed read)", || {
        store.get_raw(fp).unwrap().unwrap()
    });
    harness.bench("store: open (startup scan + validate)", || {
        ArtifactStore::open(&root).unwrap().list().len()
    });

    let daemon = Arc::new(
        Daemon::start(
            ArtifactStore::open(&root).unwrap(),
            Workload::synthetic(),
            1,
        )
        .unwrap(),
    );
    let handler = Arc::clone(&daemon);
    let server = http::serve("127.0.0.1:0", move |req| handler.handle(req)).unwrap();
    let addr = server.addr();

    harness.bench("http: GET /healthz round-trip", || {
        http::request(addr, "GET", "/healthz", b"").unwrap()
    });
    harness.bench("http: GET /sweep/<fp> (full artifact)", || {
        http::request(addr, "GET", &format!("/sweep/{fp}"), b"").unwrap()
    });
    harness.bench("http: GET /sweep/<fp>/cell (nearest)", || {
        http::request(addr, "GET", &format!("/sweep/{fp}/cell?x=3.7&y=0.5"), b"").unwrap()
    });

    server.shutdown();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
