//! T8 bench: the random walk model on a grid — engine flooding at two
//! densities and two radii.

use dg_bench::{Harness, SeedTape};
use dg_mobility::{GeometricMeg, GridWalk};
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let m = 16;
    for &(n, r) in &[(32usize, 1.0f64), (64, 1.0), (64, 2.0)] {
        h.bench(&format!("t08_walk_grid/flood/n{n}_r{r}"), || {
            Simulation::builder()
                .model(move |seed| {
                    GeometricMeg::new(GridWalk::new(m, 1).unwrap(), n, r, seed).unwrap()
                })
                .trials(2)
                .max_rounds(500_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
