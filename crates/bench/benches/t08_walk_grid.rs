//! T8 bench: the random walk model on a grid — flooding at two densities
//! and two radii.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_mobility::{GeometricMeg, GridWalk};
use dynagraph::flooding::flood;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t08_walk_grid");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    let tape = SeedTape::new();
    let m = 16;
    for &(n, r) in &[(32usize, 1.0f64), (64, 1.0), (64, 2.0)] {
        group.bench_with_input(
            BenchmarkId::new("flood", format!("n{n}_r{r}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut g =
                        GeometricMeg::new(GridWalk::new(m, 1).unwrap(), n, r, tape.next_seed())
                            .unwrap();
                    flood(&mut g, 0, 500_000).flooding_time()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
