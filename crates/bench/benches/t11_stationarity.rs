//! T11 bench: the `(α, β)`-stationarity Monte-Carlo estimator.

use dg_bench::Harness;
use dg_edge_meg::TwoStateEdgeMeg;
use dynagraph::stationarity::{estimate_alpha_beta, AlphaBetaConfig};

fn main() {
    let h = Harness::from_args();
    let n = 48;
    let cfg = AlphaBetaConfig {
        epoch: 8,
        warm_up: 32,
        observations: 100,
        runs: 2,
        pair_samples: 8,
        set_samples: 8,
        set_size: 4,
        base_seed: 0xB1,
    };
    h.bench("t11_stationarity/estimate_alpha_beta_edge_meg", || {
        estimate_alpha_beta(
            |seed| TwoStateEdgeMeg::stationary(n, 0.02, 0.1, seed).unwrap(),
            n,
            &cfg,
        )
    });
}
