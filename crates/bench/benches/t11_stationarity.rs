//! T11 bench: the `(α, β)`-stationarity Monte-Carlo estimator.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dg_edge_meg::TwoStateEdgeMeg;
use dynagraph::stationarity::{estimate_alpha_beta, AlphaBetaConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t11_stationarity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    let n = 48;
    let cfg = AlphaBetaConfig {
        epoch: 8,
        warm_up: 32,
        observations: 100,
        runs: 2,
        pair_samples: 8,
        set_samples: 8,
        set_size: 4,
        base_seed: 0xB1,
    };
    group.bench_function("estimate_alpha_beta_edge_meg", |b| {
        b.iter(|| {
            estimate_alpha_beta(
                |seed| TwoStateEdgeMeg::stationary(n, 0.02, 0.1, seed).unwrap(),
                n,
                &cfg,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
