//! T12 bench: randomized transmission protocols — thinned flooding and
//! push-k on the edge-MEG substrate, through the engine's protocol axis.

use dg_bench::{Harness, SeedTape};
use dg_edge_meg::TwoStateEdgeMeg;
use dynagraph::engine::{PushGossip, Simulation};
use dynagraph::ThinnedEvolvingGraph;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let n = 96;
    for &gamma in &[1.0f64, 0.25] {
        h.bench(&format!("t12_gossip/thinned_flood/{gamma}"), || {
            Simulation::builder()
                .model(move |seed| {
                    let inner = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
                    ThinnedEvolvingGraph::new(inner, gamma, seed).unwrap()
                })
                .trials(2)
                .max_rounds(100_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
    for &k in &[1usize, 4] {
        h.bench(&format!("t12_gossip/push/{k}"), || {
            Simulation::builder()
                .model(move |seed| TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap())
                .protocol(PushGossip::new(k))
                .trials(2)
                .max_rounds(100_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
