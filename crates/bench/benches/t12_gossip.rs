//! T12 bench: randomized transmission protocols — thinned flooding and
//! push-k on the edge-MEG substrate.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_edge_meg::TwoStateEdgeMeg;
use dynagraph::flooding::flood;
use dynagraph::gossip::push_spread;
use dynagraph::ThinnedEvolvingGraph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t12_gossip");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    let n = 96;
    for &gamma in &[1.0f64, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("thinned_flood", format!("{gamma}")),
            &gamma,
            |b, &gamma| {
                b.iter(|| {
                    let seed = tape.next_seed();
                    let inner = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
                    let mut g = ThinnedEvolvingGraph::new(inner, gamma, seed).unwrap();
                    flood(&mut g, 0, 100_000).flooding_time()
                });
            },
        );
    }
    for &k in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("push", k), &k, |b, &k| {
            b.iter(|| {
                let seed = tape.next_seed();
                let mut g = TwoStateEdgeMeg::stationary(n, 0.05, 0.2, seed).unwrap();
                push_spread(&mut g, 0, k, 100_000, seed).flooding_time()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
