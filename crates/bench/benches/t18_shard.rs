//! t18 — intra-trial sharding: what the lane-sharded executor buys on a
//! single large flood trial, and proof it buys it without changing a
//! byte.
//!
//! One workload at two scales: a stationary-sparse edge-MEG
//! (`p = 1.5/n`, `q = 0.5`) flooded from node 0 through the engine, run
//! serially (`.shards(1)`) and sharded (`.shards(k)` for several `k`).
//! Every sharded report is asserted equal to the serial one — records
//! including message counts — *before* any timing is trusted.
//!
//! The speedup assertion is gated on the machine actually having cores:
//! on a single-core box the sharded path degenerates to threads = 1
//! scheduling overhead and the honest result is ~1.0x. The committed
//! `BENCH_shard.json` records the core count alongside every number so
//! the artifact says what hardware produced it.
//!
//! Emits `BENCH_shard.json` at the repository root (quick mode:
//! `target/BENCH_shard_quick.json`, for the CI artifact upload — quick
//! outputs never land in the source tree).

use std::fmt::Write as _;
use std::path::Path;
use std::thread::available_parallelism;
use std::time::Instant;

use dg_edge_meg::ShardedSparseEdgeMeg;
use dynagraph::engine::{Simulation, SimulationReport};

/// Shard counts measured against the serial baseline.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Best-of-`reps` wall time for one engine batch at `shards`.
fn measure(n: usize, trials: usize, reps: usize, shards: usize) -> (SimulationReport, f64) {
    let build = || {
        Simulation::builder()
            .model(move |seed| {
                ShardedSparseEdgeMeg::stationary(n, 1.5 / n as f64, 0.5, seed).unwrap()
            })
            .trials(trials)
            .max_rounds(200_000)
            .parallel(false)
            .base_seed(0x7180)
            .shards(shards)
    };
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = build().run();
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    (report.unwrap(), best * 1e3 / trials as f64)
}

fn main() {
    let quick = dg_bench::quick_mode();
    let reps = if quick { 1 } else { 3 };
    let cores = available_parallelism().map_or(1, |p| p.get());
    let scales: &[(usize, usize)] = if quick {
        &[(1 << 14, 2)] // (n, trials)
    } else {
        &[(1 << 17, 3), (1 << 20, 2)]
    };

    let mut rows = Vec::new();
    for &(n, trials) in scales {
        let (serial_report, serial_ms) = measure(n, trials, reps, 1);
        let mut sharded_ms = Vec::new();
        for &k in &SHARD_COUNTS {
            let (report, ms) = measure(n, trials, reps, k);
            assert_eq!(
                serial_report, report,
                "sharded run (k={k}) must be byte-identical to serial at n={n}"
            );
            println!(
                "n=2^{:<2} trials={trials}: serial {serial_ms:>9.1} ms/trial   {k} shards {ms:>9.1} ms/trial   {:.2}x",
                n.trailing_zeros(),
                serial_ms / ms
            );
            sharded_ms.push((k, ms));
        }
        rows.push((n, trials, serial_ms, sharded_ms));
    }

    // The honest claim: ≥3x at 8 shards is only a promise on hardware
    // with at least 8 cores. Elsewhere (notably 1-core CI runners) the
    // identity assertions above are the whole point of the smoke.
    if !quick && cores >= 8 {
        for (n, _, serial_ms, sharded) in &rows {
            let &(_, ms8) = sharded.iter().find(|(k, _)| *k == 8).unwrap();
            assert!(
                serial_ms / ms8 >= 3.0,
                "expected >=3x at 8 shards on {cores} cores, got {:.2}x at n={n}",
                serial_ms / ms8
            );
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t18_shard\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"description\": \"intra-trial sharding: one flood trial on a stationary-sparse edge-MEG (p = 1.5/n, q = 0.5) partitioned across cores — 64 fixed lanes of the u64 pair space stepped in parallel, deltas merged in lane order, flooding frontier swept over disjoint node ranges. serial = .shards(1); every sharded report is asserted equal to the serial one (records including message counts) before timing. On machines with fewer cores than shards the numbers honestly show scheduling overhead, not speedup; the cores field above says which reading applies.\","
    );
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, (n, trials, serial_ms, sharded)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let mut per = String::new();
        for (j, (k, ms)) in sharded.iter().enumerate() {
            let c = if j + 1 < sharded.len() { ", " } else { "" };
            let _ = write!(
                per,
                "{{\"shards\": {k}, \"ms_per_trial\": {ms:.1}, \"speedup\": {:.3}}}{c}",
                serial_ms / ms
            );
        }
        let _ = writeln!(
            json,
            "    {{\"model\": \"lane-sharded sparse edge-MEG\", \"n\": {n}, \"p\": \"1.5/n\", \"q\": 0.5, \"trials\": {trials}, \"serial_ms_per_trial\": {serial_ms:.1}, \"sharded\": [{per}]}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"byte_identical_all_shard_counts\": true, \"speedup_assertion_active\": {}}}",
        !quick && cores >= 8
    );
    let _ = writeln!(json, "}}");

    // Quick mode is the CI smoke: write a separate artifact (uploaded
    // by the workflow) instead of clobbering the committed full-scale
    // record.
    let name = if quick {
        "../../target/BENCH_shard_quick.json"
    } else {
        "../../BENCH_shard.json"
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
