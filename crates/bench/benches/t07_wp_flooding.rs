//! T7 bench: the headline sparse-waypoint flooding series
//! (`L = √n`, `r = v = 1`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::flooding::flood;
use dynagraph::EvolvingGraph;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t07_wp_flooding");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    let tape = SeedTape::new();
    for &n in &[64usize, 144, 256] {
        let side = (n as f64).sqrt();
        group.bench_with_input(BenchmarkId::new("flood_sparse", n), &n, |b, &n| {
            b.iter(|| {
                let mut g = GeometricMeg::new(
                    RandomWaypoint::new(side, 1.0, 1.0).unwrap(),
                    n,
                    1.0,
                    tape.next_seed(),
                )
                .unwrap();
                g.warm_up((8.0 * side) as usize);
                flood(&mut g, 0, 200_000).flooding_time()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
