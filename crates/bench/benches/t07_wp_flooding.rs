//! T7 bench: the headline sparse-waypoint flooding series
//! (`L = √n`, `r = v = 1`), driven through the engine with warm-up.

use dg_bench::{Harness, SeedTape};
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::engine::Simulation;

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    for &n in &[64usize, 144, 256] {
        let side = (n as f64).sqrt();
        h.bench(&format!("t07_wp_flooding/flood_sparse/{n}"), || {
            Simulation::builder()
                .model(move |seed| {
                    GeometricMeg::new(RandomWaypoint::new(side, 1.0, 1.0).unwrap(), n, 1.0, seed)
                        .unwrap()
                })
                .trials(2)
                .max_rounds(200_000)
                .warm_up((8.0 * side) as usize)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
    }
}
