//! T4 bench: engine flooding on the finite node-MEG (lazy walk on a
//! k-cycle of points, same-point connection) plus the exact analysis
//! itself.

use dg_bench::{Harness, SeedTape};
use dg_markov::DenseChain;
use dynagraph::engine::Simulation;
use dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg, NodeMegAnalysis};

fn lazy_cycle_chain(k: usize) -> DenseChain {
    let mut rows = vec![vec![0.0; k]; k];
    for (i, row) in rows.iter_mut().enumerate() {
        row[i] = 0.5;
        row[(i + 1) % k] += 0.25;
        row[(i + k - 1) % k] += 0.25;
    }
    DenseChain::from_rows(rows).unwrap()
}

fn main() {
    let h = Harness::from_args();
    let tape = SeedTape::new();
    let n = 48;
    for &k in &[8usize, 16] {
        h.bench(&format!("t04_node_meg/flood/{k}"), || {
            Simulation::builder()
                .model(move |seed| {
                    NodeMeg::new(
                        FiniteNodeChain::stationary_start(lazy_cycle_chain(k)).unwrap(),
                        MatrixConnection::same_state(k),
                        n,
                        seed,
                    )
                    .unwrap()
                })
                .trials(2)
                .max_rounds(200_000)
                .base_seed(tape.next_seed())
                .run()
                .mean()
        });
        let chain = lazy_cycle_chain(k);
        let conn = MatrixConnection::same_state(k);
        h.bench(&format!("t04_node_meg/exact_analysis/{k}"), || {
            NodeMegAnalysis::compute(&chain, &conn).unwrap().eta
        });
    }
}
