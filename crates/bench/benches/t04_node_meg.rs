//! T4 bench: flooding on the finite node-MEG (lazy walk on a k-cycle of
//! points, same-point connection) plus the exact analysis itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dg_bench::SeedTape;
use dg_markov::DenseChain;
use dynagraph::flooding::flood;
use dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg, NodeMegAnalysis};

fn lazy_cycle_chain(k: usize) -> DenseChain {
    let mut rows = vec![vec![0.0; k]; k];
    for (i, row) in rows.iter_mut().enumerate() {
        row[i] = 0.5;
        row[(i + 1) % k] += 0.25;
        row[(i + k - 1) % k] += 0.25;
    }
    DenseChain::from_rows(rows).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t04_node_meg");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let tape = SeedTape::new();
    let n = 48;
    for &k in &[8usize, 16] {
        group.bench_with_input(BenchmarkId::new("flood", k), &k, |b, &k| {
            b.iter(|| {
                let mut meg = NodeMeg::new(
                    FiniteNodeChain::stationary_start(lazy_cycle_chain(k)).unwrap(),
                    MatrixConnection::same_state(k),
                    n,
                    tape.next_seed(),
                )
                .unwrap();
                flood(&mut meg, 0, 200_000).flooding_time()
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_analysis", k), &k, |b, &k| {
            let chain = lazy_cycle_chain(k);
            let conn = MatrixConnection::same_state(k);
            b.iter(|| NodeMegAnalysis::compute(&chain, &conn).unwrap().eta);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
