//! t14 — churn-proportional trial *setup*: sparse stationary init vs the
//! O(n²) pair scan, plus the delta-native §5 wrappers.
//!
//! PR 2 made per-round stepping proportional to churn; this bench tracks
//! the two pieces that still paid O(n²) per *trial* in the paper's
//! sparse regime (`p = 1/n`):
//!
//! * `SparseTwoStateEdgeMeg::stationary` scans all `n(n-1)/2` pairs at
//!   construction/reset; `stationary_sparse_init` skip-samples the
//!   `#on ≈ αn²/2` live edges directly. Headline: setup speedup at
//!   `n = 2^14`.
//! * `ThinnedEvolvingGraph` / `JammedEvolvingGraph` used to fall back to
//!   snapshot diffing; their native delta path never materializes a CSR.
//!
//! Emits machine-readable `BENCH_sparse_init.json` at the repository
//! root. Quick mode (`DG_BENCH_QUICK=1`) shrinks sizes for CI smoke.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use dg_edge_meg::{pair_count, SparseTwoStateEdgeMeg};
use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph, ThinnedEvolvingGraph};

struct SetupResult {
    n: usize,
    p: f64,
    q: f64,
    iters: u32,
    scan_ms: f64,
    sparse_ms: f64,
    speedup: f64,
    scan_edges: usize,
    sparse_edges: usize,
    headline: bool,
}

/// Times trial setup — construction of a stationary instance — on both
/// initializers. Each iteration uses a fresh seed so the allocator and
/// branch predictor can't replay one fixed realization.
fn bench_setup(n: usize, q: f64, iters: u32, headline: bool) -> SetupResult {
    let p = 1.0 / n as f64;

    let mut scan_edges = 0usize;
    let start = Instant::now();
    for i in 0..iters {
        let g = SparseTwoStateEdgeMeg::stationary(n, p, q, 0x5E7 + i as u64).unwrap();
        scan_edges = g.alive_count();
    }
    let scan_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let mut sparse_edges = 0usize;
    let start = Instant::now();
    for i in 0..iters {
        let g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, 0x5E7 + i as u64).unwrap();
        sparse_edges = g.alive_count();
    }
    let sparse_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;

    SetupResult {
        n,
        p,
        q,
        iters,
        scan_ms,
        sparse_ms,
        speedup: scan_ms / sparse_ms,
        scan_edges,
        sparse_edges,
        headline,
    }
}

struct WrapperResult {
    n: usize,
    p: f64,
    q: f64,
    rounds: usize,
    snapshot_ns_per_round: f64,
    delta_ns_per_round: f64,
    speedup: f64,
    mean_churn: f64,
}

/// Times the §5 thinned wrapper over a sparse-init edge-MEG on both
/// stepping paths (same seed ⇒ identical realizations, asserted). The
/// interesting regime is `|E_t| ≪ n` (the paper's very sparse MEGs),
/// where the snapshot path pays `O(n)` per round just for the CSR while
/// the delta path pays only the survival sweep plus the churn.
fn bench_thinned_stepping(n: usize, p: f64, q: f64, gamma: f64, rounds: usize) -> WrapperResult {
    let seed = 0x7417;
    let make = || {
        let inner = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, seed).unwrap();
        ThinnedEvolvingGraph::new(inner, gamma, seed).unwrap()
    };

    // Snapshot path: one CSR rebuild per round.
    let mut snap_model = make();
    for _ in 0..50 {
        snap_model.step();
    }
    let mut final_edges = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        final_edges = snap_model.step().edge_count();
    }
    let snapshot_time = start.elapsed();

    // Delta path: churn applied to an incremental adjacency.
    let mut delta_model = make();
    let mut adj = DynAdjacency::new(n);
    let mut delta = EdgeDelta::new();
    for _ in 0..50 {
        delta_model.step_delta(&mut delta);
        adj.apply(&delta);
    }
    let mut churn_total = 0usize;
    let start = Instant::now();
    for _ in 0..rounds {
        delta_model.step_delta(&mut delta);
        adj.apply(&delta);
        churn_total += delta.churn();
    }
    let delta_time = start.elapsed();

    // Both wrappers drew the identical survival stream.
    assert_eq!(adj.edge_count(), final_edges, "paths diverged");

    let snapshot_ns = snapshot_time.as_nanos() as f64 / rounds as f64;
    let delta_ns = delta_time.as_nanos() as f64 / rounds as f64;
    WrapperResult {
        n,
        p,
        q,
        rounds,
        snapshot_ns_per_round: snapshot_ns,
        delta_ns_per_round: delta_ns,
        speedup: snapshot_ns / delta_ns,
        mean_churn: churn_total as f64 / rounds as f64,
    }
}

fn main() {
    let quick = dg_bench::quick_mode();
    // (n, q, iters, headline) — p is always 1/n. The 2^14 row is the
    // acceptance headline; the smaller rows sketch the scaling curve.
    let setup_cases: &[(usize, f64, u32, bool)] = if quick {
        &[(1 << 9, 0.005, 3, true)]
    } else {
        &[
            (1 << 11, 0.005, 10, false),
            (1 << 12, 0.005, 6, false),
            (1 << 13, 0.005, 4, false),
            (1 << 14, 0.005, 3, true),
        ]
    };
    let mut setups = Vec::new();
    for &(n, q, iters, headline) in setup_cases {
        let r = bench_setup(n, q, iters, headline);
        println!(
            "setup    n={:>6} p=1/n q={:<6} scan {:>10.2} ms   sparse-init {:>8.3} ms   speedup {:>6.1}x   (on-edges ~{} vs ~{}, pairs {})",
            r.n, r.q, r.scan_ms, r.sparse_ms, r.speedup, r.scan_edges, r.sparse_edges, pair_count(r.n)
        );
        setups.push(r);
    }

    let thinned = if quick {
        let n = 1 << 9;
        bench_thinned_stepping(n, 1.0 / (16.0 * n as f64), 0.1, 0.5, 500)
    } else {
        let n = 1 << 12;
        bench_thinned_stepping(n, 1.0 / (64.0 * n as f64), 0.05, 0.5, 20_000)
    };
    println!(
        "thinned  n={:>6} gamma=0.5   snapshot {:>9.0} ns/round   delta {:>9.0} ns/round   speedup {:>5.1}x   (churn ~{:.0})",
        thinned.n, thinned.snapshot_ns_per_round, thinned.delta_ns_per_round, thinned.speedup, thinned.mean_churn
    );

    // Machine-readable trajectory record (hand-rolled JSON; no serde in
    // this environment).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"t14_sparse_init\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"description\": \"trial setup cost of the O(n^2) stationary pair scan vs the O(#on) geometric-skip initializer (p = 1/n), plus the delta-native section-5 thinned wrapper\","
    );
    let _ = writeln!(json, "  \"setup\": [");
    for (i, r) in setups.iter().enumerate() {
        let comma = if i + 1 < setups.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"model\": \"sparse-two-state-edge-meg\", \"headline\": {}, \"n\": {}, \"p\": {:.10}, \"q\": {}, \"iters\": {}, \"scan_ms\": {:.3}, \"sparse_init_ms\": {:.3}, \"speedup\": {:.1}, \"scan_edges\": {}, \"sparse_edges\": {}}}{}",
            r.headline, r.n, r.p, r.q, r.iters, r.scan_ms, r.sparse_ms, r.speedup, r.scan_edges, r.sparse_edges, comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"thinned_stepping\": [");
    let _ = writeln!(
        json,
        "    {{\"model\": \"thinned(sparse-init-edge-meg)\", \"n\": {}, \"p\": {:.10}, \"q\": {}, \"gamma\": 0.5, \"rounds\": {}, \"snapshot_ns_per_round\": {:.1}, \"delta_ns_per_round\": {:.1}, \"speedup\": {:.2}, \"mean_churn\": {:.1}}}",
        thinned.n, thinned.p, thinned.q, thinned.rounds, thinned.snapshot_ns_per_round, thinned.delta_ns_per_round, thinned.speedup, thinned.mean_churn
    );
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if quick {
        // Quick mode is a CI smoke run; don't clobber the committed
        // full-scale trajectory record.
        println!("quick mode: skipping BENCH_sparse_init.json update");
        return;
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sparse_init.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
