//! Hand-rolled benchmark harness shared by the `benches/` targets.
//!
//! The build environment has no access to crates.io, so instead of
//! criterion each bench target is a plain `harness = false` binary that
//! drives [`Harness::bench`]: adaptive iteration count targeting a fixed
//! measurement budget, mean/min per-iteration times, substring filtering
//! via the first CLI argument (`cargo bench --bench engine -- flood`).
//!
//! Each bench file regenerates one experiment's series at a reduced
//! scale (`cargo bench` must terminate in minutes, not hours); the
//! full-scale tables live in the `dg-experiments` harness, and both ride
//! the same `Simulation` builder.

#![warn(missing_docs)]

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A deterministic-but-rotating seed source, so consecutive bench
/// iterations measure different realizations while the sequence stays
/// reproducible.
#[derive(Debug, Default)]
pub struct SeedTape {
    counter: AtomicU64,
}

impl SeedTape {
    /// Creates a tape starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next seed.
    pub fn next_seed(&self) -> u64 {
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        dynagraph::mix_seed(0xBE7C_45ED, i)
    }
}

/// Formats a duration with stable units for aligned bench output.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:>9.3} s ", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:>9.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:>9.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns:>9} ns")
    }
}

/// `true` when the `DG_BENCH_QUICK` environment variable is set
/// (non-empty, not `"0"`): benches shrink their problem sizes and the
/// harness its measurement budget, so CI can smoke-test every bench
/// target in seconds instead of minutes.
pub fn quick_mode() -> bool {
    std::env::var("DG_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Minimal bench runner: filters by substring, times adaptively.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    budget: Duration,
}

impl Harness {
    /// Builds a harness from the process arguments: the first non-flag
    /// argument (if any) is a substring filter over bench names (cargo
    /// passes flags like `--bench`, which are ignored). In
    /// [`quick_mode`] the measurement budget shrinks from 1.5 s to 50 ms
    /// per bench.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            budget: if quick_mode() {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(1_500)
            },
        }
    }

    /// Overrides the per-bench measurement budget.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark: a warm-up call sizes the iteration count to
    /// the measurement budget, then mean/min per-iteration times are
    /// printed. Skipped (silently) when a filter is set and doesn't
    /// match `name`.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let iters = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(3, 10_000) as u32;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            let d = t.elapsed();
            total += d;
            min = min.min(d);
        }
        println!(
            "{name:<52} {iters:>6} iters   mean {}   min {}",
            fmt_duration(total / iters),
            fmt_duration(min)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_tape_rotates_deterministically() {
        let a = SeedTape::new();
        let b = SeedTape::new();
        let xs: Vec<u64> = (0..4).map(|_| a.next_seed()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_seed()).collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.iter().collect::<std::collections::HashSet<_>>().len(), 4);
    }

    #[test]
    fn durations_format() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("us"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }

    #[test]
    fn harness_runs_and_filters() {
        let h = Harness {
            filter: Some("match".to_string()),
            budget: Duration::from_millis(1),
        };
        let mut ran = 0;
        h.bench("no", || ran += 1);
        assert_eq!(ran, 0);
        h.bench("does_match", || ran += 1);
        assert!(ran > 0);
    }
}
