//! Shared helpers for the Criterion benches.
//!
//! Each bench file in `benches/` regenerates one experiment's series at a
//! reduced scale (`cargo bench` must terminate in minutes, not hours);
//! the full-scale tables live in the `dg-experiments` harness.

use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic-but-rotating seed source, so consecutive bench
/// iterations measure different realizations while the sequence stays
/// reproducible.
#[derive(Debug, Default)]
pub struct SeedTape {
    counter: AtomicU64,
}

impl SeedTape {
    /// Creates a tape starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next seed.
    pub fn next_seed(&self) -> u64 {
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        dynagraph::mix_seed(0xBE7C_45ED, i)
    }
}
