//! A linear-probe hash map from pair indices to `u32` slots.
//!
//! The sparse-init edge-MEG tracks one occupancy entry per *touched*
//! pair; with retirement that is exactly the current on-set, and every
//! trial reset re-inserts all of it. `std::collections::HashMap`'s
//! SipHash plus per-entry overhead makes those inserts the dominant
//! term of trial setup at large `n`, so this map trades generality for
//! the three things the occupancy store needs: `u64` keys (triangular
//! pair indices, below `2^63` for any pair of `u32` node ids),
//! Fibonacci multiply hashing (a couple of cycles), and flat open
//! addressing with backward-shift deletion (no tombstone rot under the
//! retire-on-death workload).
//!
//! The map is never iterated, so realizations cannot depend on its
//! layout; the exhaustive property test pins its semantics against
//! `std::collections::HashMap`.

/// Sentinel key marking an empty slot.
const EMPTY: u64 = u64::MAX;

/// A `u64 -> u32` open-addressing map for pair indices (`key <
/// u64::MAX`).
#[derive(Debug, Clone)]
pub(crate) struct PairMap {
    /// `(key, value)` pairs; `key == EMPTY` marks a free slot. Length is
    /// always a power of two.
    slots: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl Default for PairMap {
    fn default() -> Self {
        PairMap::new()
    }
}

impl PairMap {
    const MIN_CAPACITY: usize = 16;

    pub(crate) fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A map pre-sized to hold `expected` entries without growing —
    /// construction-time sizing from the model's expected working set
    /// (`α · pairs`), so the fresh path never pays rehash churn.
    pub(crate) fn with_capacity(expected: usize) -> Self {
        // Plain linear probing degrades sharply past ~1/2 load, so the
        // table keeps at least 2 slots per entry.
        let cap = (expected * 2).next_power_of_two().max(Self::MIN_CAPACITY);
        PairMap {
            slots: vec![(EMPTY, 0); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Fibonacci multiply hash onto the table's power-of-two size.
    #[inline]
    fn home(&self, key: u64) -> usize {
        // 2^64 / phi, odd; the multiply pushes entropy into the high
        // bits, the xor folds it back down before masking.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h ^ (h >> 32)) as usize) & self.mask
    }

    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.home(key);
        loop {
            let (k, v) = self.slots[i];
            if k == key {
                return Some(v);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or overwrites.
    pub(crate) fn insert(&mut self, key: u64, value: u32) {
        debug_assert_ne!(key, EMPTY);
        // Grow at 1/2 load: linear probe chains stay a couple of slots
        // long, and the resize cost amortizes over the fill.
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let (k, _) = self.slots[i];
            if k == key {
                self.slots[i].1 = value;
                return;
            }
            if k == EMPTY {
                self.slots[i] = (key, value);
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key` if present, with backward-shift deletion (the
    /// probe chains stay dense; no tombstones to sweep later).
    pub(crate) fn remove(&mut self, key: u64) {
        debug_assert_ne!(key, EMPTY);
        let mut i = self.home(key);
        loop {
            let (k, _) = self.slots[i];
            if k == EMPTY {
                return;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        // Shift successors back over the hole until the chain ends.
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let (k, _) = self.slots[j];
            if k == EMPTY {
                break;
            }
            // The entry at j may fill the hole only if its home position
            // does not lie cyclically within (hole, j] — otherwise
            // moving it would break its own probe chain.
            let home = self.home(k);
            let reachable = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !reachable {
                self.slots[hole] = self.slots[j];
                hole = j;
            }
        }
        self.slots[hole] = (EMPTY, 0);
    }

    /// Empties the map, keeping its capacity (the reuse path: a trial
    /// reset re-inserts a same-order working set with zero growth).
    pub(crate) fn clear(&mut self) {
        self.slots.fill((EMPTY, 0));
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY, 0); new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let mut m = PairMap::new();
        assert_eq!(m.get(3), None);
        m.insert(3, 7);
        m.insert(4, 8);
        assert_eq!(m.get(3), Some(7));
        assert!(m.contains(4));
        assert_eq!(m.len(), 2);
        m.insert(3, 9); // overwrite
        assert_eq!(m.get(3), Some(9));
        assert_eq!(m.len(), 2);
        m.remove(3);
        assert_eq!(m.get(3), None);
        assert_eq!(m.len(), 1);
        m.remove(3); // absent: no-op
        assert_eq!(m.len(), 1);
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(4), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = PairMap::new();
        for k in 0..10_000u64 {
            m.insert(k, (k as u32).wrapping_mul(3));
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some((k as u32).wrapping_mul(3)), "key {k}");
        }
        assert_eq!(m.get(10_000), None);
    }

    #[test]
    fn wide_keys_past_u32() {
        // Million-node pair indices live well past u32::MAX; the hash
        // must spread them and lookups must stay exact.
        let mut m = PairMap::new();
        let base = 499_999_500_000u64; // ~pair_count(10^6)
        for i in 0..5_000u64 {
            m.insert(base + i * 997, i as u32);
        }
        for i in 0..5_000u64 {
            assert_eq!(m.get(base + i * 997), Some(i as u32), "key offset {i}");
        }
        assert_eq!(m.get(base + 1), None);
    }

    #[test]
    fn randomized_against_std_hashmap() {
        // The backward-shift deletion is the subtle part: hammer it with
        // random interleaved insert/remove/get/clear and demand exact
        // agreement with std's HashMap at every step.
        let mut rng = SmallRng::seed_from_u64(0x9A1);
        for round in 0..50 {
            let mut ours = PairMap::new();
            let mut reference: HashMap<u64, u32> = HashMap::new();
            let key_space = 1u64 << (2 + round % 8); // clustered keys probe long chains
                                                     // Half the rounds run in the high-key region to exercise
                                                     // 64-bit hashing; clustering is preserved by the offset.
            let offset = if round % 2 == 0 { 0 } else { u64::MAX / 3 };
            for _ in 0..2_000 {
                let key = offset + rng.gen_range(0..key_space);
                match rng.gen_range(0..10) {
                    0..=4 => {
                        let value = rng.gen::<u32>();
                        ours.insert(key, value);
                        reference.insert(key, value);
                    }
                    5..=7 => {
                        ours.remove(key);
                        reference.remove(&key);
                    }
                    8 => {
                        assert_eq!(ours.get(key), reference.get(&key).copied());
                    }
                    _ => {
                        if rng.gen_range(0..100) == 0 {
                            ours.clear();
                            reference.clear();
                        }
                    }
                }
                assert_eq!(ours.len(), reference.len());
            }
            for (&k, &v) in &reference {
                assert_eq!(ours.get(k), Some(v), "round {round} key {k}");
            }
        }
    }
}
