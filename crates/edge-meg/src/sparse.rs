//! Event-driven simulation of the two-state edge-MEG.
//!
//! Per-round flipping costs `O(n²)` per round regardless of density. The
//! sparse regimes of the paper (`p = Θ(1/n)`, where flooding is most
//! interesting) toggle only `Θ(n)` edges per round, so we simulate toggle
//! *events*: an off edge turns on after `Geometric(p)` rounds and an on
//! edge turns off after `Geometric(q)` rounds. The resulting process is
//! identical in distribution to [`crate::TwoStateEdgeMeg`].
//!
//! Events live in a *calendar queue* — one bucket per upcoming round in
//! a fixed ring, plus an overflow list for far-future toggles — instead
//! of a binary heap: with millions of pending events (one per potential
//! edge) heap sifts dominate the per-round cost, while the calendar pops
//! a round's toggles from one contiguous bucket. Events are processed in
//! ascending `(round, edge)` order either way, so the RNG draw order
//! (and thus every realization) is identical to the heap implementation.
//!
//! # Trial setup: exact scan vs sparse initialization
//!
//! [`SparseTwoStateEdgeMeg::stationary`] initializes by scanning all
//! `n(n-1)/2` pairs — one Bernoulli(`α`) draw plus one scheduled toggle
//! per pair — which keeps its realizations byte-pinned across refactors
//! but makes *trial setup* the `O(n²)` bottleneck of short Monte-Carlo
//! runs at large `n`. The opt-in
//! [`SparseTwoStateEdgeMeg::stationary_sparse_init`] constructor samples
//! the stationary on-set directly with geometric skips over the pair
//! index (`O(#on)` work and memory: one draw plus one occupancy-map
//! insert per on-edge, nothing scheduled), so a trial costs
//! `O(#on + #skips)` before round 1 instead of `O(n²)`. Its dynamics
//! are fully lazy, bypassing the calendar entirely: each round runs a
//! Geometric(`q`) *death sweep* over the alive list and a Geometric(`p`)
//! *birth sweep* over the untouched pair index, and a dying pair is
//! retired back to untouched — so both per-round cost **and long-run
//! memory** are bounded by the current working set, not by every pair
//! that ever toggled. The two constructors realize different random
//! streams but the same process distribution (pinned by χ²/
//! degree-moment and holding-time tests).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{MarkovError, TwoStateChain};
use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::pairmap::PairMap;
use crate::pairs::{edge_pair, pair_count};

/// Ring width of the event calendar: toggles scheduled within this many
/// rounds go straight to their round's bucket; later ones wait in the
/// overflow list, which is swept back into the ring every
/// `HORIZON / 2` rounds.
const HORIZON: u64 = 8192;

/// A calendar queue keyed by round number.
///
/// Invariant: every entry of `buckets[r % HORIZON]` is due exactly at
/// round `r` — entries are only admitted when `when - now < HORIZON`, so
/// residues cannot collide among pending events (an event further than
/// one full ring away sits in `overflow` until a flush brings it within
/// the horizon).
#[derive(Debug, Clone)]
struct EventCalendar {
    /// `buckets[when % HORIZON]` holds the edges toggling at `when`.
    buckets: Vec<Vec<u64>>,
    /// Far-future events `(when, edge)` with `when - push_round >= HORIZON`.
    overflow: Vec<(u64, u64)>,
    /// Next round at which the overflow is swept into the ring.
    next_flush: u64,
    /// Recycled allocation for the per-round due list.
    scratch: Vec<u64>,
}

impl EventCalendar {
    fn new() -> Self {
        EventCalendar {
            buckets: vec![Vec::new(); HORIZON as usize],
            overflow: Vec::new(),
            next_flush: HORIZON / 2,
            scratch: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.next_flush = HORIZON / 2;
    }

    #[inline]
    fn push(&mut self, now: u64, when: u64, edge: u64) {
        debug_assert!(when > now);
        if when - now < HORIZON {
            self.buckets[(when % HORIZON) as usize].push(edge);
        } else {
            self.overflow.push((when, edge));
        }
    }

    /// Moves every overflow event that is now within the horizon into
    /// its bucket. Flushing at least once per `HORIZON / 2` rounds
    /// guarantees no event's due round slips past while it waits.
    fn flush(&mut self, now: u64) {
        self.next_flush = now + HORIZON / 2;
        let mut i = 0;
        while i < self.overflow.len() {
            let (when, edge) = self.overflow[i];
            if when - now < HORIZON {
                self.buckets[(when % HORIZON) as usize].push(edge);
                self.overflow.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Takes the edges due at `now`, sorted ascending — the same order a
    /// min-heap over `(when, edge)` would pop them in. Return the vector
    /// via [`EventCalendar::end_round`] to recycle its allocation.
    fn begin_round(&mut self, now: u64) -> Vec<u64> {
        if now >= self.next_flush {
            self.flush(now);
        }
        let slot = &mut self.buckets[(now % HORIZON) as usize];
        let mut due = std::mem::replace(slot, std::mem::take(&mut self.scratch));
        due.sort_unstable();
        due
    }

    fn end_round(&mut self, mut due: Vec<u64>) {
        due.clear();
        self.scratch = due;
    }
}

/// Sentinel for an edge that is tracked but currently off.
const OFF: u32 = u32::MAX;

/// How [`SparseTwoStateEdgeMeg::reset`] realizes the stationary initial
/// distribution (and, consequently, how off edges are tracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitMode {
    /// Scan every pair: one Bernoulli(`α`) draw plus one scheduled
    /// toggle per pair. `O(n²)` setup; realizations byte-pinned.
    ExactScan,
    /// Skip-sample the on-set (`O(#on)` setup); pairs never yet toggled
    /// carry no event and are born by a lazy per-round skip sweep.
    SparseStationary,
}

/// Where each edge currently sits: its position in the `alive` list,
/// [`OFF`] if tracked-but-off, or (sparse mode only) untracked.
#[derive(Debug, Clone)]
enum Occupancy {
    /// One slot per pair (exact-scan mode): every pair is tracked.
    Dense(Vec<u32>),
    /// Only touched pairs present (sparse-init mode): a pair absent from
    /// the map has never toggled and has no pending event. A flat
    /// linear-probe [`PairMap`] rather than `std`'s `HashMap`: trial
    /// reset re-inserts the whole stationary on-set, and the map is
    /// never iterated, so hashing speed is all that matters.
    Sparse(PairMap),
}

impl Occupancy {
    /// The position of `edge` in the alive list, if it is currently on.
    #[inline]
    fn position(&self, edge: u64) -> Option<u32> {
        let slot = match self {
            Occupancy::Dense(slots) => slots[edge as usize],
            Occupancy::Sparse(map) => map.get(edge).unwrap_or(OFF),
        };
        (slot != OFF).then_some(slot)
    }

    /// `true` if `edge` is tracked (on, or off with a pending event).
    /// Every pair is tracked in exact-scan mode.
    #[inline]
    fn is_touched(&self, edge: u64) -> bool {
        match self {
            Occupancy::Dense(_) => true,
            Occupancy::Sparse(map) => map.contains(edge),
        }
    }

    #[inline]
    fn set_position(&mut self, edge: u64, pos: u32) {
        match self {
            Occupancy::Dense(slots) => slots[edge as usize] = pos,
            Occupancy::Sparse(map) => map.insert(edge, pos),
        }
    }

    /// Stops tracking a pair entirely (sparse mode only): no position,
    /// no pending event — the pair returns to the lazy birth sweep.
    #[inline]
    fn forget(&mut self, edge: u64) {
        match self {
            Occupancy::Dense(_) => unreachable!("exact-scan pairs are always tracked"),
            Occupancy::Sparse(map) => map.remove(edge),
        }
    }

    /// Number of tracked pairs (memory diagnostics).
    fn tracked(&self) -> usize {
        match self {
            Occupancy::Dense(slots) => slots.len(),
            Occupancy::Sparse(map) => map.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Occupancy::Dense(slots) => slots.fill(OFF),
            Occupancy::Sparse(map) => map.clear(),
        }
    }
}

/// Event-driven two-state edge-MEG, equivalent in distribution to
/// [`crate::TwoStateEdgeMeg::stationary`] but with per-round cost
/// `O(#toggles · log #events + |E_t|)`.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::SparseTwoStateEdgeMeg;
/// use dynagraph::{flooding, EvolvingGraph};
///
/// let n = 256;
/// let mut g = SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.2, 1).unwrap();
/// let run = flooding::flood(&mut g, 0, 100_000);
/// assert!(run.flooding_time().is_some());
/// ```
///
/// For large sparse instances, make trial *setup* churn-proportional too
/// with [`SparseTwoStateEdgeMeg::stationary_sparse_init`]:
///
/// ```
/// use dg_edge_meg::{pair_count, SparseTwoStateEdgeMeg};
/// use dynagraph::EvolvingGraph;
///
/// let n = 2048; // setup cost O(#on), not O(n²)
/// let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, 1.0 / n as f64, 0.1, 7).unwrap();
/// let alpha = g.alpha();
/// let expected = alpha * pair_count(n) as f64;
/// assert!((g.alive_count() as f64 - expected).abs() < 6.0 * (expected * (1.0 - alpha)).sqrt());
/// let _ = g.step();
/// ```
#[derive(Debug, Clone)]
pub struct SparseTwoStateEdgeMeg {
    n: usize,
    chain: TwoStateChain,
    round: u64,
    /// Indices of currently-on edges.
    alive: Vec<u64>,
    /// Per-edge occupancy (dense slots or sparse map, by init mode).
    occupancy: Occupancy,
    /// How `reset` seeds the stationary distribution.
    init: InitMode,
    /// Pending toggle events, bucketed by due round.
    events: EventCalendar,
    /// Precomputed `ln(1 - p)` / `ln(1 - q)` for the geometric sampler.
    log1m_birth: f64,
    log1m_death: f64,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    /// Pairs that died this round and leave the touched set once the
    /// round's lazy sweep has run (sparse-init mode; see `advance`).
    retire_buf: Vec<u64>,
    synced: bool,
}

impl SparseTwoStateEdgeMeg {
    /// Creates a stationary sparse edge-MEG (each edge on independently
    /// with probability `p/(p+q)` at round 0).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates, `p = 0` or `q = 0` (event
    /// scheduling needs both toggles possible), or `n < 2`.
    ///
    /// Pair indices are `u64`, so any `n` up to `2^32` nodes is
    /// addressable; the exact-scan setup, however, allocates one slot
    /// per pair (`O(n²)` memory and time), which is the practical limit
    /// of *this* constructor. Beyond ~10^5 nodes use
    /// [`SparseTwoStateEdgeMeg::stationary_sparse_init`], whose setup
    /// and memory stay proportional to the on-set.
    pub fn stationary(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        Self::with_init(n, p, q, seed, InitMode::ExactScan)
    }

    /// Creates a stationary sparse edge-MEG whose trial *setup* is sparse
    /// too: the initial on-set is sampled directly with geometric skips
    /// over the pair index (`O(#on + #skips)` instead of the `O(n²)`
    /// pair scan of [`SparseTwoStateEdgeMeg::stationary`]), with no
    /// event scheduling at all — deaths and births both come from lazy
    /// per-round skip sweeps, and dead pairs are retired back to the
    /// untouched pool.
    ///
    /// Same process distribution as `stationary` (pinned by χ²,
    /// degree-moment and holding-time tests), but a *different
    /// realization* for the same seed: the two constructors consume
    /// randomness differently, and `stationary` keeps its byte-pinned
    /// streams. Memory is bounded by the *current* on-set (plus the
    /// pre-sized occupancy table), never by `n²`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseTwoStateEdgeMeg::stationary`].
    pub fn stationary_sparse_init(
        n: usize,
        p: f64,
        q: f64,
        seed: u64,
    ) -> Result<Self, MarkovError> {
        Self::with_init(n, p, q, seed, InitMode::SparseStationary)
    }

    fn with_init(n: usize, p: f64, q: f64, seed: u64, init: InitMode) -> Result<Self, MarkovError> {
        let chain = TwoStateChain::new(p, q)?;
        if p == 0.0 || q == 0.0 {
            return Err(MarkovError::ParameterOutOfRange {
                name: "p/q (event-driven simulation needs both positive)",
                value: 0.0,
            });
        }
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        let occupancy = match init {
            InitMode::ExactScan => Occupancy::Dense(vec![OFF; pair_count(n) as usize]),
            InitMode::SparseStationary => {
                // Pre-size for the stationary working set: with
                // retirement the map holds exactly the on-set, whose
                // expectation is alpha·pairs.
                let expected = (chain.stationary_on() * pair_count(n) as f64).ceil() as usize;
                Occupancy::Sparse(PairMap::with_capacity(expected))
            }
        };
        let mut meg = SparseTwoStateEdgeMeg {
            n,
            log1m_birth: (1.0 - chain.birth()).ln(),
            log1m_death: (1.0 - chain.death()).ln(),
            chain,
            round: 0,
            alive: Vec::new(),
            occupancy,
            init,
            events: EventCalendar::new(),
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            retire_buf: Vec::new(),
            synced: false,
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// The stationary edge density `α = p/(p+q)`.
    pub fn alpha(&self) -> f64 {
        self.chain.stationary_on()
    }

    /// Number of currently-on edges.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }

    /// Number of pairs the instance currently tracks — the memory
    /// working set. Exact-scan instances track every pair
    /// (`pair_count(n)`); sparse-init instances track exactly the
    /// current on-set at round boundaries (a pair's entry is retired the
    /// round its edge dies), so long-run memory is bounded by `|E_t|`,
    /// not by every pair that ever toggled.
    pub fn tracked_pairs(&self) -> usize {
        self.occupancy.tracked()
    }

    /// Samples `Geometric(prob)` on `{1, 2, ...}` — the waiting time until
    /// the next success of a Bernoulli(`prob`) sequence. `log1m` is the
    /// precomputed `ln(1 - prob)` (hoisting it out of the hot loop
    /// changes no draw: same expression, same inputs, same bits).
    fn geometric(rng: &mut SmallRng, prob: f64, log1m: f64) -> u64 {
        if prob >= 1.0 {
            return 1;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let k = (u.ln() / log1m).ceil();
        (k as u64).max(1)
    }

    fn schedule_toggle(&mut self, edge: u64, currently_on: bool) {
        let (rate, log1m) = if currently_on {
            (self.chain.death(), self.log1m_death)
        } else {
            (self.chain.birth(), self.log1m_birth)
        };
        let dt = Self::geometric(&mut self.rng, rate, log1m);
        self.events.push(self.round, self.round + dt, edge);
    }

    fn turn_on(&mut self, edge: u64) {
        debug_assert!(self.occupancy.position(edge).is_none());
        // Alive-list positions are u32 (with OFF reserved); the on-set
        // would have to reach 4 billion edges to overflow them.
        assert!(
            self.alive.len() < OFF as usize,
            "on-set exceeds u32 alive-list positions"
        );
        self.occupancy.set_position(edge, self.alive.len() as u32);
        self.alive.push(edge);
    }

    fn turn_off(&mut self, edge: u64) {
        let pos = self.occupancy.position(edge).expect("edge is alive");
        let last = *self.alive.last().expect("edge is alive");
        self.alive.swap_remove(pos as usize);
        if last != edge {
            self.occupancy.set_position(last, pos);
        }
        self.occupancy.set_position(edge, OFF);
    }

    /// [`Self::turn_off`] for sparse-mode deaths: the pair leaves the
    /// occupancy map entirely (one removal instead of an OFF overwrite
    /// followed by a removal) and returns to the untouched pool.
    fn retire(&mut self, edge: u64) {
        let pos = self.occupancy.position(edge).expect("edge is alive");
        let last = *self.alive.last().expect("edge is alive");
        self.alive.swap_remove(pos as usize);
        if last != edge {
            self.occupancy.set_position(last, pos);
        }
        self.occupancy.forget(edge);
    }

    /// Advances the process one round. Shared by both stepping paths —
    /// identical RNG stream either way — and records the churn into
    /// `delta` when one is supplied (suppressed while the delta baseline
    /// is unsynced; the caller emits a full set instead).
    ///
    /// Exact-scan mode replays the byte-pinned calendar-queue dynamics;
    /// sparse-init mode is fully lazy — one Geometric(q) *death sweep*
    /// over the alive list plus one Geometric(p) *birth sweep* over the
    /// untouched pair index per round, no scheduled events at all.
    fn advance(&mut self, delta: Option<&mut EdgeDelta>) {
        // Churn is recorded only when the consumer's baseline is in sync;
        // while unsynced the caller emits a full edge set instead, so the
        // suppression is decided once here rather than per toggle.
        let mut delta = if self.synced { delta } else { None };
        self.round += 1;
        match self.init {
            InitMode::ExactScan => {
                let due = self.events.begin_round(self.round);
                for &edge in &due {
                    let on = self.occupancy.position(edge).is_some();
                    if on {
                        self.turn_off(edge);
                    } else {
                        self.turn_on(edge);
                    }
                    if let Some(d) = delta.as_deref_mut() {
                        if on {
                            d.push_removed(edge_pair(edge));
                        } else {
                            d.push_added(edge_pair(edge));
                        }
                    }
                    self.schedule_toggle(edge, !on);
                }
                self.events.end_round(due);
            }
            InitMode::SparseStationary => {
                // 1. Death sweep: every on edge dies independently with
                //    probability q this round, so the dying subset of the
                //    start-of-round alive list is found by Geometric(q)
                //    skips over its positions — O(q·|E_t|) draws. The
                //    dying edges are only *collected* here; they stay
                //    tracked through the birth sweep so a pair cannot
                //    die and be re-born in the same round.
                debug_assert!(self.retire_buf.is_empty());
                let death = self.chain.death();
                let mut pos = Self::geometric(&mut self.rng, death, self.log1m_death) - 1;
                while (pos as usize) < self.alive.len() {
                    self.retire_buf.push(self.alive[pos as usize]);
                    pos += Self::geometric(&mut self.rng, death, self.log1m_death);
                }
                // 2. Birth sweep: every untouched pair is an independent
                //    Bernoulli(p) per round; the pairs firing this round
                //    are found by Geometric(p) skips over the pair
                //    index. Candidates landing on touched pairs are
                //    discarded, which leaves untouched pairs' birth
                //    times exactly Geometric(p). Newly born edges join
                //    `alive` *after* the death positions were sampled,
                //    so they live through this round — one transition
                //    per pair per round, like the dense model.
                let pairs = pair_count(self.n);
                let birth = self.chain.birth();
                let mut idx = Self::geometric(&mut self.rng, birth, self.log1m_birth) - 1;
                while idx < pairs {
                    if !self.occupancy.is_touched(idx) {
                        self.turn_on(idx);
                        if let Some(d) = delta.as_deref_mut() {
                            d.push_added(edge_pair(idx));
                        }
                    }
                    idx += Self::geometric(&mut self.rng, birth, self.log1m_birth);
                }
                // 3. Retire the dead to untouched: remove them from the
                //    alive list and the occupancy map, so long-run
                //    memory is bounded by the *current* on-set and their
                //    next birth comes from the sweep — the same
                //    Geometric(p) waiting time an eager schedule would
                //    have drawn.
                for i in 0..self.retire_buf.len() {
                    let edge = self.retire_buf[i];
                    self.retire(edge);
                    if let Some(d) = delta.as_deref_mut() {
                        d.push_removed(edge_pair(edge));
                    }
                }
                self.retire_buf.clear();
            }
        }
    }
}

impl EvolvingGraph for SparseTwoStateEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        self.advance(None);
        self.edge_buf.clear();
        self.edge_buf
            .extend(self.alive.iter().map(|&e| edge_pair(e)));
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // The toggle events due this round *are* the delta: per-round
        // cost is O(#toggles), with no |E_t| or heap-sift term at all —
        // the payoff of delta-native stepping in the paper's sparse,
        // slow-churn regimes.
        delta.begin_round();
        self.advance(Some(delta));
        if !self.synced {
            delta.record_full(self.alive.iter().map(|&e| edge_pair(e)));
            self.synced = true;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x5BA5));
        self.round = 0;
        self.synced = false;
        self.alive.clear();
        self.occupancy.clear();
        self.events.clear();
        self.retire_buf.clear();
        let alpha = self.chain.stationary_on();
        let pairs = pair_count(self.n);
        match self.init {
            InitMode::ExactScan => {
                // Scan every pair: Bernoulli(alpha) membership plus one
                // scheduled toggle each. O(n²), byte-pinned realizations.
                let mut e = 0u64;
                while e < pairs {
                    if self.rng.gen_bool(alpha) {
                        self.turn_on(e);
                        self.schedule_toggle(e, true);
                    } else {
                        self.schedule_toggle(e, false);
                    }
                    e += 1;
                }
            }
            InitMode::SparseStationary => {
                // Skip-sample the stationary on-set: successive on-pairs
                // are Geometric(alpha) apart in the pair index, so only
                // the ≈ alpha·pairs live edges are visited — one draw
                // and one map insert each, O(#on + #skips) total and the
                // whole trial setup. No events are scheduled at all:
                // deaths come from the per-round Geometric(q) sweep over
                // the alive list, births from the Geometric(p) sweep
                // over untouched pairs (see `advance`).
                let log1m_alpha = (1.0 - alpha).ln();
                let mut idx = Self::geometric(&mut self.rng, alpha, log1m_alpha) - 1;
                while idx < pairs {
                    self.turn_on(idx);
                    idx += Self::geometric(&mut self.rng, alpha, log1m_alpha);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStateEdgeMeg;
    use dg_stats::Summary;
    use dynagraph::flooding::flood;

    #[test]
    fn density_matches_dense_implementation() {
        let n = 48;
        let (p, q) = (0.03, 0.12);
        let rounds = 400;
        let mut dense = TwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sparse = SparseTwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sd = Summary::new();
        let mut ss = Summary::new();
        for _ in 0..rounds {
            sd.push(dense.step().edge_count() as f64);
            ss.push(sparse.step().edge_count() as f64);
        }
        let expected = p / (p + q) * pair_count(n) as f64;
        assert!(
            (sd.mean() / expected - 1.0).abs() < 0.15,
            "dense {}",
            sd.mean()
        );
        assert!(
            (ss.mean() / expected - 1.0).abs() < 0.15,
            "sparse {}",
            ss.mean()
        );
        assert!(
            (sd.mean() - ss.mean()).abs() < 0.2 * expected,
            "dense {} vs sparse {}",
            sd.mean(),
            ss.mean()
        );
    }

    #[test]
    fn toggle_holding_times_geometric() {
        // With q = 0.5 an on-edge lives on average 2 rounds.
        let n = 16;
        let mut g = SparseTwoStateEdgeMeg::stationary(n, 0.5, 0.5, 3).unwrap();
        let edge = 0u64;
        let mut on_runs = Vec::new();
        let mut current = 0u32;
        for _ in 0..4000 {
            let snap = g.step();
            let (u, v) = edge_pair(edge);
            if snap.has_edge(u, v) {
                current += 1;
            } else if current > 0 {
                on_runs.push(current as f64);
                current = 0;
            }
        }
        let s: Summary = on_runs.into_iter().collect();
        assert!(s.len() > 100);
        assert!((s.mean() - 2.0).abs() < 0.4, "mean on-run {}", s.mean());
    }

    #[test]
    fn floods_like_dense() {
        let n = 96;
        let p = 2.0 / n as f64;
        let q = 0.3;
        let cfg_trials = 10;
        let mut dense_times = Vec::new();
        let mut sparse_times = Vec::new();
        for t in 0..cfg_trials {
            let mut d = TwoStateEdgeMeg::stationary(n, p, q, 100 + t).unwrap();
            let mut s = SparseTwoStateEdgeMeg::stationary(n, p, q, 200 + t).unwrap();
            dense_times.push(flood(&mut d, 0, 10_000).flooding_time().unwrap() as f64);
            sparse_times.push(flood(&mut s, 0, 10_000).flooding_time().unwrap() as f64);
        }
        let d: Summary = dense_times.into_iter().collect();
        let s: Summary = sparse_times.into_iter().collect();
        // Same distribution: means within a factor ~2 at these sizes.
        let ratio = d.mean() / s.mean();
        assert!(ratio > 0.4 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn alive_bookkeeping_consistent() {
        let mut g = SparseTwoStateEdgeMeg::stationary(20, 0.2, 0.4, 9).unwrap();
        for _ in 0..50 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn rejects_zero_rates() {
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.0, 0.5, 0).is_err());
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.5, 0.0, 0).is_err());
    }

    #[test]
    fn sparse_init_handles_pair_indices_past_u32() {
        // 100 000 nodes was rejected while pair indices were u32; with
        // the u64 pair space the sparse-init constructor must accept it
        // and run correctly on indices beyond u32::MAX. Rates are tiny
        // so the on-set (and the test) stays small.
        let n = 100_000;
        assert!(pair_count(n) > u32::MAX as u64);
        let (p, q) = (3e-8, 0.3);
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, 1).unwrap();
        // ~14% of the pair space lies above u32::MAX; with ~500 on-edges
        // the initial set reaches it with overwhelming probability.
        assert!(
            g.alive.iter().any(|&e| e > u32::MAX as u64),
            "on-set never exercised the widened index space"
        );
        for _ in 0..5 {
            let alive = {
                let snap = g.step();
                for (u, v) in snap.edges() {
                    assert!(u < v && (v as usize) < n);
                }
                snap.edge_count()
            };
            assert_eq!(alive, g.alive_count());
            assert_eq!(g.tracked_pairs(), g.alive_count());
        }
    }

    /// FNV-style fold of the first `rounds` snapshots — a fingerprint of
    /// the exact realization (edge sets *and* their order).
    fn realization_fingerprint(n: usize, p: f64, q: f64, seed: u64, rounds: usize) -> u64 {
        let mut g = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..rounds {
            let snap = g.step();
            for (u, v) in snap.edges() {
                h ^= ((u as u64) << 32) | v as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            h ^= snap.edge_count() as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    #[test]
    fn realizations_pinned_across_refactors() {
        // These fingerprints were captured from the original
        // binary-heap event queue; the calendar queue (and any future
        // event-store change) must reproduce the exact same draws.
        assert_eq!(
            realization_fingerprint(32, 0.05, 0.1, 7, 200),
            0x4c0a_ad31_b1ee_a9bf
        );
        assert_eq!(
            realization_fingerprint(64, 1.0 / 64.0, 0.3, 42, 500),
            0x502f_3ce9_220a_e609
        );
        assert_eq!(
            realization_fingerprint(128, 1.0 / 128.0, 0.02, 3, 300),
            0x9d96_3269_b099_2de9
        );
    }

    #[test]
    fn calendar_handles_far_future_events() {
        // p and q tiny: almost every toggle is scheduled beyond the
        // calendar horizon and must flow through the overflow sweep.
        let n = 24;
        let mut g = SparseTwoStateEdgeMeg::stationary(n, 1e-4, 1e-4, 11).unwrap();
        let mut total = 0usize;
        for _ in 0..30_000 {
            total += g.step().edge_count();
        }
        // Stationary density 0.5: the time average must stay close, which
        // fails loudly if overflow events are ever lost or duplicated.
        let expected = 0.5 * pair_count(n) as f64;
        let mean = total as f64 / 30_000.0;
        assert!((mean / expected - 1.0).abs() < 0.2, "mean = {mean}");
        for _ in 0..30_000 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn reset_reproducible() {
        let mut g = SparseTwoStateEdgeMeg::stationary(24, 0.1, 0.2, 5).unwrap();
        g.reset(42);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(42);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_init_reset_reproducible() {
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(24, 0.1, 0.2, 5).unwrap();
        g.reset(42);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(42);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
        g.reset(43);
        let c: Vec<_> = g.step().edges().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_init_rejects_bad_parameters() {
        assert!(SparseTwoStateEdgeMeg::stationary_sparse_init(10, 0.0, 0.5, 0).is_err());
        assert!(SparseTwoStateEdgeMeg::stationary_sparse_init(10, 0.5, 0.0, 0).is_err());
        assert!(SparseTwoStateEdgeMeg::stationary_sparse_init(1, 0.2, 0.2, 0).is_err());
    }

    #[test]
    fn sparse_init_bookkeeping_consistent() {
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(20, 0.2, 0.4, 9).unwrap();
        for _ in 0..80 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn sparse_init_deltas_replay_rebuild() {
        let mut rebuild = SparseTwoStateEdgeMeg::stationary_sparse_init(28, 0.05, 0.2, 11).unwrap();
        let mut delta = SparseTwoStateEdgeMeg::stationary_sparse_init(28, 0.05, 0.2, 11).unwrap();
        dynagraph::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 40);
        rebuild.reset(12);
        delta.reset(12);
        dynagraph::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 40);
    }

    #[test]
    fn sparse_init_memory_bounded_by_current_on_set() {
        // Retire-to-untouched: at every round boundary the touched-pair
        // map holds exactly the on-set, however many pairs have toggled
        // over the run. Moderate rates so most pairs toggle many times —
        // the regime where pre-retirement tracking grew monotonically.
        let n = 40;
        let (p, q) = (0.05, 0.5); // alpha ≈ 0.09: heavy per-pair churn
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, 17).unwrap();
        assert_eq!(g.tracked_pairs(), g.alive_count());
        let mut max_tracked = 0;
        for _ in 0..5_000 {
            let _ = g.step();
            assert_eq!(
                g.tracked_pairs(),
                g.alive_count(),
                "touched set must equal the on-set at round boundaries"
            );
            max_tracked = max_tracked.max(g.tracked_pairs());
        }
        // Far below the ~780 pairs; bounded by the working set.
        let alpha = p / (p + q);
        let expected = alpha * pair_count(n) as f64;
        assert!(
            (max_tracked as f64) < 4.0 * expected,
            "max tracked {max_tracked} vs stationary on-set {expected}"
        );
        // The exact-scan twin tracks everything, as documented.
        let exact = SparseTwoStateEdgeMeg::stationary(n, p, q, 17).unwrap();
        assert_eq!(exact.tracked_pairs() as u64, pair_count(n));
    }

    #[test]
    fn retirement_preserves_holding_times() {
        // A retired pair's next birth comes from the lazy sweep; its
        // waiting time must still be Geometric(p) (mean 1/p), and on-runs
        // Geometric(q) (mean 1/q) — the distribution-equivalence half of
        // the retire-to-untouched change.
        let n = 16;
        let (p, q) = (0.2, 0.5);
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, 23).unwrap();
        let (eu, ev) = edge_pair(0);
        let mut off_runs = Vec::new();
        let mut on_runs = Vec::new();
        let mut run = 0u32;
        let mut was_on = None;
        for _ in 0..40_000 {
            let on = g.step().has_edge(eu, ev);
            match was_on {
                Some(prev) if prev == on => run += 1,
                Some(prev) => {
                    if prev {
                        on_runs.push(run as f64);
                    } else {
                        off_runs.push(run as f64);
                    }
                    run = 1;
                }
                None => run = 1,
            }
            was_on = Some(on);
        }
        let on: Summary = on_runs.into_iter().collect();
        let off: Summary = off_runs.into_iter().collect();
        assert!(on.len() > 500 && off.len() > 500);
        assert!((on.mean() - 1.0 / q).abs() < 0.2, "on mean {}", on.mean());
        assert!(
            (off.mean() - 1.0 / p).abs() < 0.5,
            "off mean {}",
            off.mean()
        );
    }

    #[test]
    fn sparse_init_time_average_density_stationary() {
        // The lazy birth sweep plus calendar deaths must hold the process
        // at its stationary density from round 0 onwards.
        let n = 40;
        let (p, q) = (0.02, 0.08);
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, 3).unwrap();
        let rounds = 4_000;
        let mut total = 0usize;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let expected = p / (p + q) * pair_count(n) as f64;
        let mean = total as f64 / rounds as f64;
        assert!((mean / expected - 1.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn sparse_init_far_future_births_fire() {
        // Tiny p: initial births fall entirely to the lazy sweep, deaths
        // reschedule far beyond the calendar horizon. The long-run
        // density must still converge to alpha = 0.5.
        let n = 24;
        let mut g = SparseTwoStateEdgeMeg::stationary_sparse_init(n, 1e-4, 1e-4, 11).unwrap();
        let mut total = 0usize;
        for _ in 0..30_000 {
            total += g.step().edge_count();
        }
        let expected = 0.5 * pair_count(n) as f64;
        let mean = total as f64 / 30_000.0;
        assert!((mean / expected - 1.0).abs() < 0.2, "mean = {mean}");
    }

    /// χ² statistic of round-0 on-edge counts over `buckets` equal slices
    /// of the pair index, aggregated over `seeds` independent instances.
    /// Each bucket count is an independent Binomial(slice · seeds, α), so
    /// the statistic is ≈ χ² with `buckets` degrees of freedom.
    fn init_chi_square(make: impl Fn(u64) -> SparseTwoStateEdgeMeg, seeds: u64) -> f64 {
        let g0 = make(0);
        let n = g0.node_count();
        let alpha = g0.alpha();
        let pairs = pair_count(n);
        let buckets = 16u64;
        let slice = pairs / buckets;
        let mut counts = vec![0u64; buckets as usize];
        for seed in 0..seeds {
            let mut g = make(seed);
            // E_0 is the seeded set stepped once; a stationary chain
            // stepped once is still stationary, so α bands apply as-is.
            let snap = g.step();
            for (u, v) in snap.edges() {
                let e = crate::edge_index(u, v);
                if e < slice * buckets {
                    counts[(e / slice) as usize] += 1;
                }
            }
        }
        let trials = (slice as f64) * seeds as f64;
        let exp = trials * alpha;
        let var = trials * alpha * (1.0 - alpha);
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - exp;
                d * d / var
            })
            .sum()
    }

    #[test]
    fn init_distributions_pass_chi_square() {
        // 16 degrees of freedom: mean 16, sd √32 ≈ 5.7. 50 is ≈ 6σ —
        // deterministic seeds make this a fixed, regression-pinning
        // check that both initializers spread on-edges uniformly over
        // the pair index.
        let n = 64;
        let (p, q) = (0.1, 0.3);
        let exact = init_chi_square(
            |s| SparseTwoStateEdgeMeg::stationary(n, p, q, s).unwrap(),
            25,
        );
        let sparse = init_chi_square(
            |s| SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, s).unwrap(),
            25,
        );
        assert!(exact < 50.0, "exact-scan χ² = {exact}");
        assert!(sparse < 50.0, "sparse-init χ² = {sparse}");
    }

    /// Mean and variance of the round-0 degree distribution aggregated
    /// over seeds (degrees are Binomial(n-1, α) under stationarity).
    fn degree_moments(make: impl Fn(u64) -> SparseTwoStateEdgeMeg, seeds: u64) -> (f64, f64) {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0.0;
        for seed in 0..seeds {
            let mut g = make(seed);
            let n = g.node_count() as u32;
            let snap = g.step();
            for u in 0..n {
                let d = snap.degree(u) as f64;
                sum += d;
                sum_sq += d * d;
                count += 1.0;
            }
        }
        let mean = sum / count;
        (mean, sum_sq / count - mean * mean)
    }

    #[test]
    fn init_distributions_match_degree_moments() {
        let n = 64;
        let (p, q) = (0.1, 0.3);
        let alpha = p / (p + q);
        let expect_mean = (n - 1) as f64 * alpha;
        let expect_var = (n - 1) as f64 * alpha * (1.0 - alpha);
        for (label, (mean, var)) in [
            (
                "exact",
                degree_moments(
                    |s| SparseTwoStateEdgeMeg::stationary(n, p, q, s).unwrap(),
                    30,
                ),
            ),
            (
                "sparse",
                degree_moments(
                    |s| SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, s).unwrap(),
                    30,
                ),
            ),
        ] {
            assert!(
                (mean / expect_mean - 1.0).abs() < 0.05,
                "{label} degree mean {mean} vs {expect_mean}"
            );
            assert!(
                (var / expect_var - 1.0).abs() < 0.15,
                "{label} degree variance {var} vs {expect_var}"
            );
        }
    }

    #[test]
    fn sparse_init_engine_paths_agree() {
        use dynagraph::engine::{Simulation, Stepping};
        let n = 96;
        let run = |stepping| {
            Simulation::builder()
                .model(move |seed| {
                    SparseTwoStateEdgeMeg::stationary_sparse_init(n, 2.0 / n as f64, 0.3, seed)
                        .unwrap()
                })
                .trials(4)
                .warm_up(5)
                .max_rounds(10_000)
                .stepping(stepping)
                .run()
        };
        assert_eq!(run(Stepping::Snapshot), run(Stepping::Delta));
    }
}
