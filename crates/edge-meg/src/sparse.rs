//! Event-driven simulation of the two-state edge-MEG.
//!
//! Per-round flipping costs `O(n²)` per round regardless of density. The
//! sparse regimes of the paper (`p = Θ(1/n)`, where flooding is most
//! interesting) toggle only `Θ(n)` edges per round, so we simulate toggle
//! *events*: an off edge turns on after `Geometric(p)` rounds and an on
//! edge turns off after `Geometric(q)` rounds. The resulting process is
//! identical in distribution to [`crate::TwoStateEdgeMeg`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{MarkovError, TwoStateChain};
use dynagraph::{mix_seed, EvolvingGraph, Snapshot};

use crate::pairs::{edge_pair, pair_count};

/// Event-driven two-state edge-MEG, equivalent in distribution to
/// [`crate::TwoStateEdgeMeg::stationary`] but with per-round cost
/// `O(#toggles · log #events + |E_t|)`.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::SparseTwoStateEdgeMeg;
/// use dynagraph::{flooding, EvolvingGraph};
///
/// let n = 256;
/// let mut g = SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.2, 1).unwrap();
/// let run = flooding::flood(&mut g, 0, 100_000);
/// assert!(run.flooding_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SparseTwoStateEdgeMeg {
    n: usize,
    chain: TwoStateChain,
    round: u64,
    /// Indices of currently-on edges.
    alive: Vec<u32>,
    /// Position of each edge in `alive` (`u32::MAX` when off).
    alive_pos: Vec<u32>,
    /// Pending toggle events `(round, edge)`.
    events: BinaryHeap<Reverse<(u64, u32)>>,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
}

impl SparseTwoStateEdgeMeg {
    /// Creates a stationary sparse edge-MEG (each edge on independently
    /// with probability `p/(p+q)` at round 0).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates, `p = 0` or `q = 0` (event
    /// scheduling needs both toggles possible), or `n < 2`.
    pub fn stationary(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        let chain = TwoStateChain::new(p, q)?;
        if p == 0.0 || q == 0.0 {
            return Err(MarkovError::ParameterOutOfRange {
                name: "p/q (event-driven simulation needs both positive)",
                value: 0.0,
            });
        }
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        let mut meg = SparseTwoStateEdgeMeg {
            n,
            chain,
            round: 0,
            alive: Vec::new(),
            alive_pos: vec![u32::MAX; pair_count(n)],
            events: BinaryHeap::new(),
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// The stationary edge density `α = p/(p+q)`.
    pub fn alpha(&self) -> f64 {
        self.chain.stationary_on()
    }

    /// Number of currently-on edges.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }

    /// Samples `Geometric(prob)` on `{1, 2, ...}` — the waiting time until
    /// the next success of a Bernoulli(`prob`) sequence.
    fn geometric(rng: &mut SmallRng, prob: f64) -> u64 {
        if prob >= 1.0 {
            return 1;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let k = (u.ln() / (1.0 - prob).ln()).ceil();
        (k as u64).max(1)
    }

    fn schedule_toggle(&mut self, edge: u32, currently_on: bool) {
        let rate = if currently_on {
            self.chain.death()
        } else {
            self.chain.birth()
        };
        let dt = Self::geometric(&mut self.rng, rate);
        self.events.push(Reverse((self.round + dt, edge)));
    }

    fn turn_on(&mut self, edge: u32) {
        debug_assert_eq!(self.alive_pos[edge as usize], u32::MAX);
        self.alive_pos[edge as usize] = self.alive.len() as u32;
        self.alive.push(edge);
    }

    fn turn_off(&mut self, edge: u32) {
        let pos = self.alive_pos[edge as usize];
        debug_assert_ne!(pos, u32::MAX);
        let last = *self.alive.last().expect("edge is alive");
        self.alive.swap_remove(pos as usize);
        if last != edge {
            self.alive_pos[last as usize] = pos;
        }
        self.alive_pos[edge as usize] = u32::MAX;
    }
}

impl EvolvingGraph for SparseTwoStateEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        self.round += 1;
        while let Some(&Reverse((when, edge))) = self.events.peek() {
            if when > self.round {
                break;
            }
            self.events.pop();
            let on = self.alive_pos[edge as usize] != u32::MAX;
            if on {
                self.turn_off(edge);
            } else {
                self.turn_on(edge);
            }
            self.schedule_toggle(edge, !on);
        }
        self.edge_buf.clear();
        self.edge_buf
            .extend(self.alive.iter().map(|&e| edge_pair(e as usize)));
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        &self.snapshot
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x5BA5));
        self.round = 0;
        self.alive.clear();
        self.alive_pos.fill(u32::MAX);
        self.events.clear();
        let alpha = self.chain.stationary_on();
        // Expected on-edges: alpha * pairs. Sample the on-set by scanning
        // with geometric skips so initialization is O(#on + #off-skips).
        let pairs = pair_count(self.n);
        let mut e = 0usize;
        while e < pairs {
            if self.rng.gen_bool(alpha) {
                self.turn_on(e as u32);
                self.schedule_toggle(e as u32, true);
            } else {
                self.schedule_toggle(e as u32, false);
            }
            e += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStateEdgeMeg;
    use dg_stats::Summary;
    use dynagraph::flooding::flood;

    #[test]
    fn density_matches_dense_implementation() {
        let n = 48;
        let (p, q) = (0.03, 0.12);
        let rounds = 400;
        let mut dense = TwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sparse = SparseTwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sd = Summary::new();
        let mut ss = Summary::new();
        for _ in 0..rounds {
            sd.push(dense.step().edge_count() as f64);
            ss.push(sparse.step().edge_count() as f64);
        }
        let expected = p / (p + q) * pair_count(n) as f64;
        assert!(
            (sd.mean() / expected - 1.0).abs() < 0.15,
            "dense {}",
            sd.mean()
        );
        assert!(
            (ss.mean() / expected - 1.0).abs() < 0.15,
            "sparse {}",
            ss.mean()
        );
        assert!(
            (sd.mean() - ss.mean()).abs() < 0.2 * expected,
            "dense {} vs sparse {}",
            sd.mean(),
            ss.mean()
        );
    }

    #[test]
    fn toggle_holding_times_geometric() {
        // With q = 0.5 an on-edge lives on average 2 rounds.
        let n = 16;
        let mut g = SparseTwoStateEdgeMeg::stationary(n, 0.5, 0.5, 3).unwrap();
        let edge = 0u32;
        let mut on_runs = Vec::new();
        let mut current = 0u32;
        for _ in 0..4000 {
            let snap = g.step();
            let (u, v) = edge_pair(edge as usize);
            if snap.has_edge(u, v) {
                current += 1;
            } else if current > 0 {
                on_runs.push(current as f64);
                current = 0;
            }
        }
        let s: Summary = on_runs.into_iter().collect();
        assert!(s.len() > 100);
        assert!((s.mean() - 2.0).abs() < 0.4, "mean on-run {}", s.mean());
    }

    #[test]
    fn floods_like_dense() {
        let n = 96;
        let p = 2.0 / n as f64;
        let q = 0.3;
        let cfg_trials = 10;
        let mut dense_times = Vec::new();
        let mut sparse_times = Vec::new();
        for t in 0..cfg_trials {
            let mut d = TwoStateEdgeMeg::stationary(n, p, q, 100 + t).unwrap();
            let mut s = SparseTwoStateEdgeMeg::stationary(n, p, q, 200 + t).unwrap();
            dense_times.push(flood(&mut d, 0, 10_000).flooding_time().unwrap() as f64);
            sparse_times.push(flood(&mut s, 0, 10_000).flooding_time().unwrap() as f64);
        }
        let d: Summary = dense_times.into_iter().collect();
        let s: Summary = sparse_times.into_iter().collect();
        // Same distribution: means within a factor ~2 at these sizes.
        let ratio = d.mean() / s.mean();
        assert!(ratio > 0.4 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn alive_bookkeeping_consistent() {
        let mut g = SparseTwoStateEdgeMeg::stationary(20, 0.2, 0.4, 9).unwrap();
        for _ in 0..50 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn rejects_zero_rates() {
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.0, 0.5, 0).is_err());
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.5, 0.0, 0).is_err());
    }

    #[test]
    fn reset_reproducible() {
        let mut g = SparseTwoStateEdgeMeg::stationary(24, 0.1, 0.2, 5).unwrap();
        g.reset(42);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(42);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }
}
