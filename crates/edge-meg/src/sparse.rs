//! Event-driven simulation of the two-state edge-MEG.
//!
//! Per-round flipping costs `O(n²)` per round regardless of density. The
//! sparse regimes of the paper (`p = Θ(1/n)`, where flooding is most
//! interesting) toggle only `Θ(n)` edges per round, so we simulate toggle
//! *events*: an off edge turns on after `Geometric(p)` rounds and an on
//! edge turns off after `Geometric(q)` rounds. The resulting process is
//! identical in distribution to [`crate::TwoStateEdgeMeg`].
//!
//! Events live in a *calendar queue* — one bucket per upcoming round in
//! a fixed ring, plus an overflow list for far-future toggles — instead
//! of a binary heap: with millions of pending events (one per potential
//! edge) heap sifts dominate the per-round cost, while the calendar pops
//! a round's toggles from one contiguous bucket. Events are processed in
//! ascending `(round, edge)` order either way, so the RNG draw order
//! (and thus every realization) is identical to the heap implementation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{MarkovError, TwoStateChain};
use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::pairs::{edge_pair, pair_count};

/// Ring width of the event calendar: toggles scheduled within this many
/// rounds go straight to their round's bucket; later ones wait in the
/// overflow list, which is swept back into the ring every
/// `HORIZON / 2` rounds.
const HORIZON: u64 = 8192;

/// A calendar queue keyed by round number.
///
/// Invariant: every entry of `buckets[r % HORIZON]` is due exactly at
/// round `r` — entries are only admitted when `when - now < HORIZON`, so
/// residues cannot collide among pending events (an event further than
/// one full ring away sits in `overflow` until a flush brings it within
/// the horizon).
#[derive(Debug, Clone)]
struct EventCalendar {
    /// `buckets[when % HORIZON]` holds the edges toggling at `when`.
    buckets: Vec<Vec<u32>>,
    /// Far-future events `(when, edge)` with `when - push_round >= HORIZON`.
    overflow: Vec<(u64, u32)>,
    /// Next round at which the overflow is swept into the ring.
    next_flush: u64,
    /// Recycled allocation for the per-round due list.
    scratch: Vec<u32>,
}

impl EventCalendar {
    fn new() -> Self {
        EventCalendar {
            buckets: vec![Vec::new(); HORIZON as usize],
            overflow: Vec::new(),
            next_flush: HORIZON / 2,
            scratch: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.next_flush = HORIZON / 2;
    }

    #[inline]
    fn push(&mut self, now: u64, when: u64, edge: u32) {
        debug_assert!(when > now);
        if when - now < HORIZON {
            self.buckets[(when % HORIZON) as usize].push(edge);
        } else {
            self.overflow.push((when, edge));
        }
    }

    /// Moves every overflow event that is now within the horizon into
    /// its bucket. Flushing at least once per `HORIZON / 2` rounds
    /// guarantees no event's due round slips past while it waits.
    fn flush(&mut self, now: u64) {
        self.next_flush = now + HORIZON / 2;
        let mut i = 0;
        while i < self.overflow.len() {
            let (when, edge) = self.overflow[i];
            if when - now < HORIZON {
                self.buckets[(when % HORIZON) as usize].push(edge);
                self.overflow.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Takes the edges due at `now`, sorted ascending — the same order a
    /// min-heap over `(when, edge)` would pop them in. Return the vector
    /// via [`EventCalendar::end_round`] to recycle its allocation.
    fn begin_round(&mut self, now: u64) -> Vec<u32> {
        if now >= self.next_flush {
            self.flush(now);
        }
        let slot = &mut self.buckets[(now % HORIZON) as usize];
        let mut due = std::mem::replace(slot, std::mem::take(&mut self.scratch));
        due.sort_unstable();
        due
    }

    fn end_round(&mut self, mut due: Vec<u32>) {
        due.clear();
        self.scratch = due;
    }
}

/// Event-driven two-state edge-MEG, equivalent in distribution to
/// [`crate::TwoStateEdgeMeg::stationary`] but with per-round cost
/// `O(#toggles · log #events + |E_t|)`.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::SparseTwoStateEdgeMeg;
/// use dynagraph::{flooding, EvolvingGraph};
///
/// let n = 256;
/// let mut g = SparseTwoStateEdgeMeg::stationary(n, 1.5 / n as f64, 0.2, 1).unwrap();
/// let run = flooding::flood(&mut g, 0, 100_000);
/// assert!(run.flooding_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SparseTwoStateEdgeMeg {
    n: usize,
    chain: TwoStateChain,
    round: u64,
    /// Indices of currently-on edges.
    alive: Vec<u32>,
    /// Position of each edge in `alive` (`u32::MAX` when off).
    alive_pos: Vec<u32>,
    /// Pending toggle events, bucketed by due round.
    events: EventCalendar,
    /// Precomputed `ln(1 - p)` / `ln(1 - q)` for the geometric sampler.
    log1m_birth: f64,
    log1m_death: f64,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    synced: bool,
}

impl SparseTwoStateEdgeMeg {
    /// Creates a stationary sparse edge-MEG (each edge on independently
    /// with probability `p/(p+q)` at round 0).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates, `p = 0` or `q = 0` (event
    /// scheduling needs both toggles possible), or `n < 2`.
    pub fn stationary(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        let chain = TwoStateChain::new(p, q)?;
        if p == 0.0 || q == 0.0 {
            return Err(MarkovError::ParameterOutOfRange {
                name: "p/q (event-driven simulation needs both positive)",
                value: 0.0,
            });
        }
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        let mut meg = SparseTwoStateEdgeMeg {
            n,
            log1m_birth: (1.0 - chain.birth()).ln(),
            log1m_death: (1.0 - chain.death()).ln(),
            chain,
            round: 0,
            alive: Vec::new(),
            alive_pos: vec![u32::MAX; pair_count(n)],
            events: EventCalendar::new(),
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            synced: false,
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// The stationary edge density `α = p/(p+q)`.
    pub fn alpha(&self) -> f64 {
        self.chain.stationary_on()
    }

    /// Number of currently-on edges.
    pub fn alive_count(&self) -> usize {
        self.alive.len()
    }

    /// Samples `Geometric(prob)` on `{1, 2, ...}` — the waiting time until
    /// the next success of a Bernoulli(`prob`) sequence. `log1m` is the
    /// precomputed `ln(1 - prob)` (hoisting it out of the hot loop
    /// changes no draw: same expression, same inputs, same bits).
    fn geometric(rng: &mut SmallRng, prob: f64, log1m: f64) -> u64 {
        if prob >= 1.0 {
            return 1;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let k = (u.ln() / log1m).ceil();
        (k as u64).max(1)
    }

    fn schedule_toggle(&mut self, edge: u32, currently_on: bool) {
        let (rate, log1m) = if currently_on {
            (self.chain.death(), self.log1m_death)
        } else {
            (self.chain.birth(), self.log1m_birth)
        };
        let dt = Self::geometric(&mut self.rng, rate, log1m);
        self.events.push(self.round, self.round + dt, edge);
    }

    fn turn_on(&mut self, edge: u32) {
        debug_assert_eq!(self.alive_pos[edge as usize], u32::MAX);
        self.alive_pos[edge as usize] = self.alive.len() as u32;
        self.alive.push(edge);
    }

    /// Processes this round's toggle events (shared by both stepping
    /// paths; identical RNG stream either way).
    fn advance(&mut self) {
        self.round += 1;
        let due = self.events.begin_round(self.round);
        for &edge in &due {
            let on = self.alive_pos[edge as usize] != u32::MAX;
            if on {
                self.turn_off(edge);
            } else {
                self.turn_on(edge);
            }
            self.schedule_toggle(edge, !on);
        }
        self.events.end_round(due);
    }

    fn turn_off(&mut self, edge: u32) {
        let pos = self.alive_pos[edge as usize];
        debug_assert_ne!(pos, u32::MAX);
        let last = *self.alive.last().expect("edge is alive");
        self.alive.swap_remove(pos as usize);
        if last != edge {
            self.alive_pos[last as usize] = pos;
        }
        self.alive_pos[edge as usize] = u32::MAX;
    }
}

impl EvolvingGraph for SparseTwoStateEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        self.advance();
        self.edge_buf.clear();
        self.edge_buf
            .extend(self.alive.iter().map(|&e| edge_pair(e as usize)));
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // The toggle events due this round *are* the delta: per-round
        // cost is O(#toggles), with no |E_t| or heap-sift term at all —
        // the payoff of delta-native stepping in the paper's sparse,
        // slow-churn regimes.
        self.round += 1;
        delta.begin_round();
        let due = self.events.begin_round(self.round);
        for &edge in &due {
            let on = self.alive_pos[edge as usize] != u32::MAX;
            if on {
                self.turn_off(edge);
                if self.synced {
                    delta.push_removed(edge_pair(edge as usize));
                }
            } else {
                self.turn_on(edge);
                if self.synced {
                    delta.push_added(edge_pair(edge as usize));
                }
            }
            self.schedule_toggle(edge, !on);
        }
        self.events.end_round(due);
        if !self.synced {
            delta.record_full(self.alive.iter().map(|&e| edge_pair(e as usize)));
            self.synced = true;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x5BA5));
        self.round = 0;
        self.synced = false;
        self.alive.clear();
        self.alive_pos.fill(u32::MAX);
        self.events.clear();
        let alpha = self.chain.stationary_on();
        // Expected on-edges: alpha * pairs. Sample the on-set by scanning
        // with geometric skips so initialization is O(#on + #off-skips).
        let pairs = pair_count(self.n);
        let mut e = 0usize;
        while e < pairs {
            if self.rng.gen_bool(alpha) {
                self.turn_on(e as u32);
                self.schedule_toggle(e as u32, true);
            } else {
                self.schedule_toggle(e as u32, false);
            }
            e += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoStateEdgeMeg;
    use dg_stats::Summary;
    use dynagraph::flooding::flood;

    #[test]
    fn density_matches_dense_implementation() {
        let n = 48;
        let (p, q) = (0.03, 0.12);
        let rounds = 400;
        let mut dense = TwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sparse = SparseTwoStateEdgeMeg::stationary(n, p, q, 7).unwrap();
        let mut sd = Summary::new();
        let mut ss = Summary::new();
        for _ in 0..rounds {
            sd.push(dense.step().edge_count() as f64);
            ss.push(sparse.step().edge_count() as f64);
        }
        let expected = p / (p + q) * pair_count(n) as f64;
        assert!(
            (sd.mean() / expected - 1.0).abs() < 0.15,
            "dense {}",
            sd.mean()
        );
        assert!(
            (ss.mean() / expected - 1.0).abs() < 0.15,
            "sparse {}",
            ss.mean()
        );
        assert!(
            (sd.mean() - ss.mean()).abs() < 0.2 * expected,
            "dense {} vs sparse {}",
            sd.mean(),
            ss.mean()
        );
    }

    #[test]
    fn toggle_holding_times_geometric() {
        // With q = 0.5 an on-edge lives on average 2 rounds.
        let n = 16;
        let mut g = SparseTwoStateEdgeMeg::stationary(n, 0.5, 0.5, 3).unwrap();
        let edge = 0u32;
        let mut on_runs = Vec::new();
        let mut current = 0u32;
        for _ in 0..4000 {
            let snap = g.step();
            let (u, v) = edge_pair(edge as usize);
            if snap.has_edge(u, v) {
                current += 1;
            } else if current > 0 {
                on_runs.push(current as f64);
                current = 0;
            }
        }
        let s: Summary = on_runs.into_iter().collect();
        assert!(s.len() > 100);
        assert!((s.mean() - 2.0).abs() < 0.4, "mean on-run {}", s.mean());
    }

    #[test]
    fn floods_like_dense() {
        let n = 96;
        let p = 2.0 / n as f64;
        let q = 0.3;
        let cfg_trials = 10;
        let mut dense_times = Vec::new();
        let mut sparse_times = Vec::new();
        for t in 0..cfg_trials {
            let mut d = TwoStateEdgeMeg::stationary(n, p, q, 100 + t).unwrap();
            let mut s = SparseTwoStateEdgeMeg::stationary(n, p, q, 200 + t).unwrap();
            dense_times.push(flood(&mut d, 0, 10_000).flooding_time().unwrap() as f64);
            sparse_times.push(flood(&mut s, 0, 10_000).flooding_time().unwrap() as f64);
        }
        let d: Summary = dense_times.into_iter().collect();
        let s: Summary = sparse_times.into_iter().collect();
        // Same distribution: means within a factor ~2 at these sizes.
        let ratio = d.mean() / s.mean();
        assert!(ratio > 0.4 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn alive_bookkeeping_consistent() {
        let mut g = SparseTwoStateEdgeMeg::stationary(20, 0.2, 0.4, 9).unwrap();
        for _ in 0..50 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn rejects_zero_rates() {
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.0, 0.5, 0).is_err());
        assert!(SparseTwoStateEdgeMeg::stationary(10, 0.5, 0.0, 0).is_err());
    }

    /// FNV-style fold of the first `rounds` snapshots — a fingerprint of
    /// the exact realization (edge sets *and* their order).
    fn realization_fingerprint(n: usize, p: f64, q: f64, seed: u64, rounds: usize) -> u64 {
        let mut g = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..rounds {
            let snap = g.step();
            for (u, v) in snap.edges() {
                h ^= ((u as u64) << 32) | v as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            h ^= snap.edge_count() as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    #[test]
    fn realizations_pinned_across_refactors() {
        // These fingerprints were captured from the original
        // binary-heap event queue; the calendar queue (and any future
        // event-store change) must reproduce the exact same draws.
        assert_eq!(
            realization_fingerprint(32, 0.05, 0.1, 7, 200),
            0x4c0a_ad31_b1ee_a9bf
        );
        assert_eq!(
            realization_fingerprint(64, 1.0 / 64.0, 0.3, 42, 500),
            0x502f_3ce9_220a_e609
        );
        assert_eq!(
            realization_fingerprint(128, 1.0 / 128.0, 0.02, 3, 300),
            0x9d96_3269_b099_2de9
        );
    }

    #[test]
    fn calendar_handles_far_future_events() {
        // p and q tiny: almost every toggle is scheduled beyond the
        // calendar horizon and must flow through the overflow sweep.
        let n = 24;
        let mut g = SparseTwoStateEdgeMeg::stationary(n, 1e-4, 1e-4, 11).unwrap();
        let mut total = 0usize;
        for _ in 0..30_000 {
            total += g.step().edge_count();
        }
        // Stationary density 0.5: the time average must stay close, which
        // fails loudly if overflow events are ever lost or duplicated.
        let expected = 0.5 * pair_count(n) as f64;
        let mean = total as f64 / 30_000.0;
        assert!((mean / expected - 1.0).abs() < 0.2, "mean = {mean}");
        for _ in 0..30_000 {
            let snap = g.step();
            assert_eq!(snap.edge_count(), g.alive_count());
        }
    }

    #[test]
    fn reset_reproducible() {
        let mut g = SparseTwoStateEdgeMeg::stationary(24, 0.1, 0.2, 5).unwrap();
        g.reset(42);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(42);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }
}
