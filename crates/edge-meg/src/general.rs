//! The generalized edge-MEG `EM(n, M, χ)` of Appendix A.
//!
//! Each edge evolves according to an arbitrary hidden finite Markov chain
//! `M = (S, P)`; an arbitrary map `χ : S → {0, 1}` decides whether the
//! edge exists. Edges are independent, so β = 1 and Theorem 1 yields
//! `O(T_mix · (1/(nα) + 1)² · log² n)` where `α = Σ_{x : χ(x)=1} π(x)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dg_markov::samplers::AliasSampler;
use dg_markov::{DenseChain, MarkovError, ProbDist};
use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::pairs::{edge_pair, pair_count};

/// A generalized edge-MEG: one hidden-chain state per edge.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg};
/// use dynagraph::{flooding, EvolvingGraph};
///
/// let (chain, chi) = bursty_chain(0.05, 0.25, 0.5);
/// let mut g = HiddenChainEdgeMeg::stationary(48, chain, chi, 3).unwrap();
/// let alpha = g.alpha();
/// assert!(alpha > 0.0 && alpha < 1.0);
/// let run = flooding::flood(&mut g, 0, 50_000);
/// assert!(run.flooding_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct HiddenChainEdgeMeg {
    n: usize,
    chain: DenseChain,
    chi: Vec<bool>,
    stationary: ProbDist,
    row_samplers: Vec<AliasSampler>,
    init_sampler: AliasSampler,
    states: Vec<u8>,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    synced: bool,
}

impl HiddenChainEdgeMeg {
    /// Creates a stationary generalized edge-MEG: every edge's hidden
    /// state starts from the chain's stationary distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when `n < 2`, when `chi` does not match the state
    /// count, when the chain is not ergodic, or when `χ` never turns an
    /// edge on (`α = 0`).
    pub fn stationary(
        n: usize,
        chain: DenseChain,
        chi: Vec<bool>,
        seed: u64,
    ) -> Result<Self, MarkovError> {
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        if chi.len() != chain.state_count() {
            return Err(MarkovError::DimensionMismatch {
                expected: chain.state_count(),
                found: chi.len(),
            });
        }
        if chain.state_count() > u8::MAX as usize + 1 {
            return Err(MarkovError::DimensionMismatch {
                expected: u8::MAX as usize + 1,
                found: chain.state_count(),
            });
        }
        let stationary = chain.stationary(1e-13, 1_000_000)?;
        let alpha: f64 = stationary
            .as_slice()
            .iter()
            .zip(&chi)
            .filter(|&(_, &on)| on)
            .map(|(&p, _)| p)
            .sum();
        if alpha <= 0.0 {
            return Err(MarkovError::InvalidDistribution { sum: alpha });
        }
        let row_samplers = (0..chain.state_count())
            .map(|i| {
                let row =
                    ProbDist::new(chain.row(i).to_vec()).expect("chain rows are distributions");
                AliasSampler::new(&row)
            })
            .collect();
        let init_sampler = AliasSampler::new(&stationary);
        let mut meg = HiddenChainEdgeMeg {
            n,
            chain,
            chi,
            stationary,
            row_samplers,
            init_sampler,
            states: vec![0; pair_count(n) as usize],
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            synced: false,
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// Stationary edge-existence probability `α = Σ_{χ(x)=1} π(x)`.
    pub fn alpha(&self) -> f64 {
        self.stationary
            .as_slice()
            .iter()
            .zip(&self.chi)
            .filter(|&(_, &on)| on)
            .map(|(&p, _)| p)
            .sum()
    }

    /// Exact mixing time of the hidden chain at TV tolerance `eps`.
    ///
    /// # Errors
    ///
    /// Propagates [`dg_markov::DenseChain::mixing_time`] failures.
    pub fn mixing_time(&self, eps: f64) -> Result<usize, MarkovError> {
        self.chain.mixing_time(eps, 1 << 30)
    }

    /// The Theorem 1 bound specialized to independent edges (β = 1):
    /// `O(T_mix · (1/(nα) + 1)² · log² n)`.
    ///
    /// # Errors
    ///
    /// Propagates mixing-time failures.
    pub fn flooding_bound(&self, eps: f64) -> Result<f64, MarkovError> {
        let tmix = self.mixing_time(eps)? as f64;
        Ok(dynagraph::theory::edge_meg_hidden_bound(
            tmix,
            self.alpha(),
            self.n,
        ))
    }

    /// The hidden chain.
    pub fn chain(&self) -> &DenseChain {
        &self.chain
    }
}

impl EvolvingGraph for HiddenChainEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        self.edge_buf.clear();
        for (e, s) in self.states.iter_mut().enumerate() {
            *s = self.row_samplers[*s as usize].sample(&mut self.rng) as u8;
            if self.chi[*s as usize] {
                self.edge_buf.push(edge_pair(e as u64));
            }
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // Same hidden-chain draws as `step`; only χ-transitions (an edge
        // switching existence) enter the delta, so no snapshot is built.
        delta.begin_round();
        if self.synced {
            for (e, s) in self.states.iter_mut().enumerate() {
                let was_on = self.chi[*s as usize];
                *s = self.row_samplers[*s as usize].sample(&mut self.rng) as u8;
                let is_on = self.chi[*s as usize];
                match (was_on, is_on) {
                    (false, true) => delta.push_added(edge_pair(e as u64)),
                    (true, false) => delta.push_removed(edge_pair(e as u64)),
                    _ => {}
                }
            }
        } else {
            for (e, s) in self.states.iter_mut().enumerate() {
                *s = self.row_samplers[*s as usize].sample(&mut self.rng) as u8;
                if self.chi[*s as usize] {
                    delta.push_added(edge_pair(e as u64));
                }
            }
            self.synced = true;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x41DD));
        for s in &mut self.states {
            *s = self.init_sampler.sample(&mut self.rng) as u8;
        }
        self.synced = false;
    }
}

/// A 3-state bursty edge chain: `dormant → warm → on` with geometric
/// holding times — a simple non-reversible hidden chain whose on-periods
/// arrive in bursts, unlike the memoryless two-state chain.
///
/// * `wake`: probability a dormant edge warms up per round;
/// * `fire`: probability a warm edge turns on per round (else it may fall
///   back dormant with the same probability);
/// * `cool`: probability an on edge falls dormant per round.
///
/// Returns the chain and its `χ` map (`on` is the only connected state).
///
/// # Panics
///
/// Panics unless all rates are in `(0, 1)`.
pub fn bursty_chain(wake: f64, fire: f64, cool: f64) -> (DenseChain, Vec<bool>) {
    for (name, v) in [("wake", wake), ("fire", fire), ("cool", cool)] {
        assert!(v > 0.0 && v < 1.0, "{name} must be in (0, 1)");
    }
    let chain = DenseChain::from_rows(vec![
        // dormant
        vec![1.0 - wake, wake, 0.0],
        // warm: fire up, fall back, or stay warm
        vec![fire, 1.0 - 2.0 * fire.min(0.5), fire],
        // on
        vec![cool, 0.0, 1.0 - cool],
    ])
    .expect("bursty rows are stochastic");
    (chain, vec![false, false, true])
}

/// The 4-state opportunistic-network edge chain of Becchetti et al.
/// (reference \[5\] of the paper, "Information Spreading in Opportunistic
/// Networks is Fast"): contacts have distinct *inter-contact* and
/// *contact* duration regimes, modeled by two off states (long-off,
/// short-off) and two on states (long-on, short-on).
///
/// * From long-off: wake into short-off with probability `wake`;
/// * from short-off: start a contact with probability `connect` (long-on
///   with probability `long_share`, else short-on), or fall back;
/// * long-on / short-on end with probabilities `end_long` / `end_short`
///   back into long-off.
///
/// Returns the chain and its `χ` map (both on states are connected).
///
/// # Panics
///
/// Panics unless every rate is in `(0, 1)`.
pub fn four_state_chain(
    wake: f64,
    connect: f64,
    long_share: f64,
    end_long: f64,
    end_short: f64,
) -> (DenseChain, Vec<bool>) {
    for (name, v) in [
        ("wake", wake),
        ("connect", connect),
        ("long_share", long_share),
        ("end_long", end_long),
        ("end_short", end_short),
    ] {
        assert!(v > 0.0 && v < 1.0, "{name} must be in (0, 1)");
    }
    let fall_back = (connect * 0.5).min(0.25);
    let chain = DenseChain::from_rows(vec![
        // 0: long-off
        vec![1.0 - wake, wake, 0.0, 0.0],
        // 1: short-off
        vec![
            fall_back,
            1.0 - fall_back - connect,
            connect * long_share,
            connect * (1.0 - long_share),
        ],
        // 2: long-on
        vec![end_long, 0.0, 1.0 - end_long, 0.0],
        // 3: short-on
        vec![end_short, 0.0, 0.0, 1.0 - end_short],
    ])
    .expect("four-state rows are stochastic");
    (chain, vec![false, false, true, true])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynagraph::flooding::flood;

    fn two_state_as_hidden(p: f64, q: f64) -> (DenseChain, Vec<bool>) {
        (
            DenseChain::from_rows(vec![vec![1.0 - p, p], vec![q, 1.0 - q]]).unwrap(),
            vec![false, true],
        )
    }

    #[test]
    fn reduces_to_two_state() {
        let (chain, chi) = two_state_as_hidden(0.1, 0.3);
        let g = HiddenChainEdgeMeg::stationary(30, chain, chi, 1).unwrap();
        assert!((g.alpha() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empirical_density_matches_alpha() {
        let (chain, chi) = bursty_chain(0.1, 0.3, 0.2);
        let mut g = HiddenChainEdgeMeg::stationary(24, chain, chi, 5).unwrap();
        let alpha = g.alpha();
        let mut total = 0usize;
        let rounds = 500;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = alpha * pair_count(24) as f64;
        assert!(
            (mean / expected - 1.0).abs() < 0.15,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn bursty_on_periods_are_bursty() {
        // Mean on-period of the bursty chain is 1/cool.
        let (chain, chi) = bursty_chain(0.05, 0.3, 0.1);
        let mut g = HiddenChainEdgeMeg::stationary(8, chain, chi, 2).unwrap();
        let mut runs = Vec::new();
        let mut current = 0u32;
        for _ in 0..20_000 {
            let snap = g.step();
            if snap.has_edge(0, 1) {
                current += 1;
            } else if current > 0 {
                runs.push(current as f64);
                current = 0;
            }
        }
        let s: dg_stats::Summary = runs.into_iter().collect();
        assert!(s.len() > 50);
        assert!((s.mean() - 10.0).abs() < 2.5, "mean on-period {}", s.mean());
    }

    #[test]
    fn floods_and_respects_bound_shape() {
        let (chain, chi) = bursty_chain(0.1, 0.4, 0.3);
        let mut g = HiddenChainEdgeMeg::stationary(64, chain, chi, 7).unwrap();
        let bound = g.flooding_bound(0.25).unwrap();
        let run = flood(&mut g, 0, 100_000);
        let t = run.flooding_time().unwrap() as f64;
        assert!(t <= bound, "t = {t}, bound = {bound}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let (chain, _) = two_state_as_hidden(0.1, 0.1);
        assert!(HiddenChainEdgeMeg::stationary(1, chain.clone(), vec![false, true], 0).is_err());
        assert!(HiddenChainEdgeMeg::stationary(10, chain.clone(), vec![true], 0).is_err());
        // chi all-false => alpha = 0.
        assert!(HiddenChainEdgeMeg::stationary(10, chain, vec![false, false], 0).is_err());
    }

    #[test]
    fn reset_reproducible() {
        let (chain, chi) = bursty_chain(0.2, 0.3, 0.2);
        let mut g = HiddenChainEdgeMeg::stationary(16, chain, chi, 0).unwrap();
        g.reset(9);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(9);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn four_state_chain_is_valid_and_floods() {
        let (chain, chi) = four_state_chain(0.05, 0.4, 0.3, 0.1, 0.5);
        assert!(chain.is_ergodic());
        let mut g = HiddenChainEdgeMeg::stationary(48, chain, chi, 1).unwrap();
        let alpha = g.alpha();
        assert!(alpha > 0.0 && alpha < 1.0, "alpha = {alpha}");
        let run = flood(&mut g, 0, 100_000);
        assert!(run.flooding_time().is_some());
    }

    #[test]
    fn four_state_long_contacts_longer_than_short() {
        // Long-on holding time 1/end_long must exceed short-on 1/end_short.
        let (chain, _) = four_state_chain(0.05, 0.4, 0.3, 0.05, 0.5);
        // Holding time of state s is 1/(1 - P(s, s)).
        let hold = |s: usize| 1.0 / (1.0 - chain.transition(s, s));
        assert!(hold(2) > 4.0 * hold(3));
    }

    #[test]
    fn four_state_rejects_bad_rates() {
        let result = std::panic::catch_unwind(|| four_state_chain(0.0, 0.4, 0.3, 0.1, 0.5));
        assert!(result.is_err());
    }
}
