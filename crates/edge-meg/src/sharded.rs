//! Lane-decomposed sparse two-state edge-MEG: the million-node model.
//!
//! [`ShardedSparseEdgeMeg`] factors the lazy sparse dynamics of
//! [`crate::SparseTwoStateEdgeMeg::stationary_sparse_init`] into
//! [`LANES`] *fixed logical lanes*: lane `l` owns the contiguous pair
//! range whose higher endpoint falls in the `l`-th slice of the node
//! space, and runs the usual per-round Geometric(`q`) death sweep plus
//! Geometric(`p`) birth sweep over *its* range with *its own* RNG
//! stream. Because every pair behaves independently in the two-state
//! process, the union over lanes is the same process distribution as
//! the single-stream model — and because the decomposition is fixed
//! (never a function of the thread count), a realization depends only
//! on `(n, p, q, seed)`.
//!
//! The payoff: the model exposes its lanes through
//! [`dynagraph::EvolvingGraph::sharding`], so the engine's intra-trial
//! sharded executor ([`dynagraph::shard`]) can advance them on all
//! cores — one `n = 10^6` trial saturates the machine, byte-identical
//! to the serial path (the serial `step_delta` sweeps the same lanes in
//! lane order with the same per-lane streams).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{MarkovError, TwoStateChain};
use dynagraph::shard::{ShardAccess, ShardLane};
use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::pairmap::PairMap;
use crate::pairs::edge_pair;

/// Number of logical lanes — fixed, so realizations are independent of
/// how many threads step them. 64 comfortably exceeds any core count
/// the executor's round-robin assignment has to balance over, while
/// keeping per-lane state (a few Vecs + a PairMap) negligible.
pub const LANES: usize = 64;

/// Seed-domain tag separating lane streams from every other consumer of
/// the trial seed.
const LANE_SEED_TAG: u64 = 0x5AA2_DED0;

/// `tri(v) = v(v-1)/2` — the pair index of `(0, v)`, i.e. the first
/// index whose higher endpoint is `v`.
#[inline]
fn tri(v: u64) -> u64 {
    v * (v - 1) / 2
}

/// Samples `Geometric(prob)` on `{1, 2, ...}` — identical draw to
/// `SparseTwoStateEdgeMeg`'s sampler.
#[inline]
fn geometric(rng: &mut SmallRng, prob: f64, log1m: f64) -> u64 {
    if prob >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let k = (u.ln() / log1m).ceil();
    (k as u64).max(1)
}

/// Alive-list position sentinel (mirrors the sparse model's `OFF`).
const OFF: u32 = u32::MAX;

/// One lane: an independently advanceable slice `[start, end)` of the
/// pair index space with its own RNG stream and lazy on-set tracking.
#[derive(Debug, Clone)]
struct Lane {
    /// Owned pair range `[start, end)`.
    start: u64,
    end: u64,
    birth: f64,
    death: f64,
    log1m_birth: f64,
    log1m_death: f64,
    /// Currently-on pair indices in this lane.
    alive: Vec<u64>,
    /// Pair index -> position in `alive` (only on pairs are tracked).
    occ: PairMap,
    /// Deaths collected by this round's sweep, retired after births.
    retire_buf: Vec<u64>,
    rng: SmallRng,
}

impl Lane {
    fn turn_on(&mut self, edge: u64) {
        debug_assert!(!self.occ.contains(edge));
        assert!(
            self.alive.len() < OFF as usize,
            "on-set exceeds u32 alive-list positions"
        );
        self.occ.insert(edge, self.alive.len() as u32);
        self.alive.push(edge);
    }

    /// Removes a dying pair from the alive list and the occupancy map —
    /// it returns to the untouched pool and its next birth comes from
    /// the sweep.
    fn retire(&mut self, edge: u64) {
        let pos = self.occ.get(edge).expect("edge is alive");
        let last = *self.alive.last().expect("edge is alive");
        self.alive.swap_remove(pos as usize);
        if last != edge {
            self.occ.insert(last, pos);
        }
        self.occ.remove(edge);
    }

    /// One round of the lazy dynamics over this lane's range — the same
    /// death-sweep / birth-sweep / retire order (hence the same
    /// per-lane draw sequence) as the single-stream sparse-init model.
    fn advance(&mut self, mut delta: Option<&mut EdgeDelta>) {
        debug_assert!(self.retire_buf.is_empty());
        let mut pos = geometric(&mut self.rng, self.death, self.log1m_death) - 1;
        while (pos as usize) < self.alive.len() {
            self.retire_buf.push(self.alive[pos as usize]);
            pos += geometric(&mut self.rng, self.death, self.log1m_death);
        }
        let mut idx = self.start + geometric(&mut self.rng, self.birth, self.log1m_birth) - 1;
        while idx < self.end {
            if !self.occ.contains(idx) {
                self.turn_on(idx);
                if let Some(d) = delta.as_deref_mut() {
                    d.push_added(edge_pair(idx));
                }
            }
            idx += geometric(&mut self.rng, self.birth, self.log1m_birth);
        }
        for i in 0..self.retire_buf.len() {
            let edge = self.retire_buf[i];
            self.retire(edge);
            if let Some(d) = delta.as_deref_mut() {
                d.push_removed(edge_pair(edge));
            }
        }
        self.retire_buf.clear();
    }
}

impl ShardLane for Lane {
    fn step_round(&mut self, delta: &mut EdgeDelta, emit_full: bool) {
        if emit_full {
            self.advance(None);
            for &e in &self.alive {
                delta.push_added(edge_pair(e));
            }
        } else {
            self.advance(Some(delta));
        }
    }
}

/// Sparse two-state edge-MEG decomposed into [`LANES`] fixed lanes —
/// the model behind million-node single-trial sharding.
///
/// Same process distribution as
/// [`crate::SparseTwoStateEdgeMeg::stationary_sparse_init`] (every pair
/// flips independently; only the random-stream bookkeeping differs),
/// with `O(#on)` setup and churn-proportional rounds. Exposes a lane
/// decomposition via [`EvolvingGraph::sharding`], so
/// `Simulation::builder().shards(..)` and
/// [`dynagraph::flooding::flood_sharded`] run a *single* trial on all
/// cores; serial and sharded execution are byte-identical.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::ShardedSparseEdgeMeg;
/// use dynagraph::{flooding, EvolvingGraph, Shards};
///
/// let n = 512;
/// let mut g = ShardedSparseEdgeMeg::stationary(n, 1.5 / n as f64, 0.3, 1).unwrap();
/// let serial = flooding::flood(&mut g, 0, 100_000);
/// g.reset(1);
/// let sharded = flooding::flood_sharded(&mut g, 0, 100_000, Shards::Fixed(4));
/// assert_eq!(serial, sharded);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSparseEdgeMeg {
    n: usize,
    chain: TwoStateChain,
    lanes: Vec<Lane>,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    synced: bool,
}

impl ShardedSparseEdgeMeg {
    /// Creates a stationary lane-decomposed sparse edge-MEG (each pair
    /// on independently with probability `p/(p+q)` at round 0).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates, `p = 0` or `q = 0`, or
    /// `n < 2` — the same conditions as
    /// [`crate::SparseTwoStateEdgeMeg::stationary`].
    pub fn stationary(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        let chain = TwoStateChain::new(p, q)?;
        if p == 0.0 || q == 0.0 {
            return Err(MarkovError::ParameterOutOfRange {
                name: "p/q (event-driven simulation needs both positive)",
                value: 0.0,
            });
        }
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        let alpha = chain.stationary_on();
        let node_span = n.div_ceil(LANES) as u64;
        let log1m_birth = (1.0 - chain.birth()).ln();
        let log1m_death = (1.0 - chain.death()).ln();
        let lanes = (0..LANES as u64)
            .map(|l| {
                let lo = (l * node_span).min(n as u64);
                let hi = ((l + 1) * node_span).min(n as u64);
                let (start, end) = (tri(lo.max(1)), tri(hi.max(1)));
                let expected = (alpha * (end - start) as f64).ceil() as usize;
                Lane {
                    start,
                    end,
                    birth: chain.birth(),
                    death: chain.death(),
                    log1m_birth,
                    log1m_death,
                    alive: Vec::new(),
                    occ: PairMap::with_capacity(expected),
                    retire_buf: Vec::new(),
                    rng: SmallRng::seed_from_u64(0),
                }
            })
            .collect();
        let mut meg = ShardedSparseEdgeMeg {
            n,
            chain,
            lanes,
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            synced: false,
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// The stationary edge density `α = p/(p+q)`.
    pub fn alpha(&self) -> f64 {
        self.chain.stationary_on()
    }

    /// Number of currently-on edges (summed over lanes).
    pub fn alive_count(&self) -> usize {
        self.lanes.iter().map(|l| l.alive.len()).sum()
    }
}

impl EvolvingGraph for ShardedSparseEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        for lane in &mut self.lanes {
            lane.advance(None);
        }
        self.edge_buf.clear();
        for lane in &self.lanes {
            self.edge_buf
                .extend(lane.alive.iter().map(|&e| edge_pair(e)));
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // The serial reference sweep: lanes in lane order, appending
        // into one delta — exactly the concatenation the sharded
        // executor's merge produces, which is what makes serial and
        // sharded runs byte-identical.
        delta.begin_round();
        let full = !self.synced;
        for lane in &mut self.lanes {
            lane.step_round(delta, full);
        }
        self.synced = true;
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.synced = false;
        let alpha = self.chain.stationary_on();
        let log1m_alpha = (1.0 - alpha).ln();
        for (l, lane) in self.lanes.iter_mut().enumerate() {
            lane.alive.clear();
            lane.occ.clear();
            lane.retire_buf.clear();
            lane.rng = SmallRng::seed_from_u64(mix_seed(mix_seed(seed, LANE_SEED_TAG), l as u64));
            // Skip-sample the lane's slice of the stationary on-set,
            // exactly like the single-stream sparse init over [0, pairs).
            let mut idx = lane.start + geometric(&mut lane.rng, alpha, log1m_alpha) - 1;
            while idx < lane.end {
                lane.turn_on(idx);
                idx += geometric(&mut lane.rng, alpha, log1m_alpha);
            }
        }
    }

    fn sharding(&mut self) -> Option<&mut dyn ShardAccess> {
        Some(self)
    }
}

impl ShardAccess for ShardedSparseEdgeMeg {
    fn lanes(&mut self) -> Vec<&mut dyn ShardLane> {
        // The executor steps lanes behind the model's back: break the
        // delta baseline so the next model-level `step_delta` emits the
        // full current edge set, per the delta contract.
        self.synced = false;
        self.lanes
            .iter_mut()
            .map(|l| l as &mut dyn ShardLane)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::pair_count;
    use dg_stats::Summary;
    use dynagraph::flooding::{flood, flood_sharded};
    use dynagraph::Shards;

    #[test]
    fn lane_ranges_partition_the_pair_space() {
        for n in [2usize, 3, 17, 63, 64, 65, 200, 1000] {
            let g = ShardedSparseEdgeMeg::stationary(n, 0.1, 0.3, 0).unwrap();
            let mut next = 0u64;
            for lane in &g.lanes {
                assert_eq!(lane.start, next, "n = {n}");
                assert!(lane.end >= lane.start);
                next = lane.end;
            }
            assert_eq!(next, pair_count(n), "n = {n}");
        }
    }

    #[test]
    fn density_matches_stationary_alpha() {
        let n = 64;
        let (p, q) = (0.05, 0.2);
        let mut g = ShardedSparseEdgeMeg::stationary(n, p, q, 7).unwrap();
        let rounds = 600;
        let mut s = Summary::new();
        for _ in 0..rounds {
            s.push(g.step().edge_count() as f64);
        }
        let expected = p / (p + q) * pair_count(n) as f64;
        assert!(
            (s.mean() / expected - 1.0).abs() < 0.15,
            "mean {} vs {expected}",
            s.mean()
        );
    }

    #[test]
    fn deltas_replay_rebuild() {
        let mut rebuild = ShardedSparseEdgeMeg::stationary(96, 0.03, 0.2, 11).unwrap();
        let mut delta = ShardedSparseEdgeMeg::stationary(96, 0.03, 0.2, 11).unwrap();
        dynagraph::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 40);
        rebuild.reset(12);
        delta.reset(12);
        dynagraph::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 40);
    }

    #[test]
    fn reset_matches_fresh() {
        dynagraph::assert_reset_matches_fresh(
            |s| ShardedSparseEdgeMeg::stationary(80, 0.04, 0.25, s).unwrap(),
            99,
            5,
            25,
        );
    }

    #[test]
    fn sharded_flood_is_byte_identical_to_serial() {
        // The tentpole pin at model level: the same realization, flooded
        // serially and with every shard count, node for node and round
        // for round.
        let n = 384;
        let p = 1.5 / n as f64;
        for seed in [1u64, 9, 42] {
            let mut g = ShardedSparseEdgeMeg::stationary(n, p, 0.3, seed).unwrap();
            let serial = flood(&mut g, 0, 100_000);
            for shards in [2usize, 3, 4, 8] {
                g.reset(seed);
                let sharded = flood_sharded(&mut g, 0, 100_000, Shards::Fixed(shards));
                assert_eq!(serial, sharded, "seed {seed}, {shards} shards");
            }
        }
    }

    #[test]
    fn sharded_flood_with_one_shard_falls_back_to_serial() {
        let n = 128;
        let mut g = ShardedSparseEdgeMeg::stationary(n, 2.0 / n as f64, 0.3, 3).unwrap();
        let serial = flood(&mut g, 5, 100_000);
        g.reset(3);
        let one = flood_sharded(&mut g, 5, 100_000, Shards::Fixed(1));
        assert_eq!(serial, one);
    }

    #[test]
    fn holding_times_geometric() {
        // On-runs of a pair must still be Geometric(q) under the lane
        // decomposition (mean 2 rounds at q = 0.5).
        let n = 16;
        let mut g = ShardedSparseEdgeMeg::stationary(n, 0.5, 0.5, 3).unwrap();
        let (eu, ev) = edge_pair(0);
        let mut on_runs = Vec::new();
        let mut current = 0u32;
        for _ in 0..4000 {
            if g.step().has_edge(eu, ev) {
                current += 1;
            } else if current > 0 {
                on_runs.push(current as f64);
                current = 0;
            }
        }
        let s: Summary = on_runs.into_iter().collect();
        assert!(s.len() > 100);
        assert!((s.mean() - 2.0).abs() < 0.4, "mean on-run {}", s.mean());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ShardedSparseEdgeMeg::stationary(10, 0.0, 0.5, 0).is_err());
        assert!(ShardedSparseEdgeMeg::stationary(10, 0.5, 0.0, 0).is_err());
        assert!(ShardedSparseEdgeMeg::stationary(1, 0.2, 0.2, 0).is_err());
    }
}
