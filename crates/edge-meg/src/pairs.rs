//! Triangular indexing of unordered node pairs.
//!
//! Pair indices are `u64`: over `n = 2^32` nodes the triangular layout
//! tops out just below `2^63`, so every `(u32, u32)` pair has an exact
//! index and the sparse models can address million-node graphs whose
//! pair space (`~5 * 10^11` at `n = 10^6`) is far beyond `u32`.

/// Number of unordered pairs over `n` nodes: `n(n-1)/2`.
pub fn pair_count(n: usize) -> u64 {
    let n = n as u64;
    n * (n - 1) / 2
}

/// Dense index of the pair `{u, v}` (`u != v`), in `0..pair_count(n)`.
///
/// Uses the triangular layout `index({u, v}) = v(v-1)/2 + u` for `u < v`.
///
/// # Panics
///
/// Panics if `u == v`.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::{edge_index, edge_pair};
/// let e = edge_index(3, 7);
/// assert_eq!(edge_pair(e), (3, 7));
/// ```
pub fn edge_index(u: u32, v: u32) -> u64 {
    assert_ne!(u, v, "self-loops have no pair index");
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (hi as u64 * (hi as u64 - 1)) / 2 + lo as u64
}

/// `v(v-1)/2` without overflow: for `v` near `2^32` the product needs
/// 64 bits *after* halving, so the multiply runs in `u128`.
#[inline]
fn tri(v: u64) -> u128 {
    v as u128 * (v as u128 - 1) / 2
}

/// Floor square root, exact for every input.
///
/// The `f64` seed is within one of the true root for the magnitudes the
/// pair inverse produces (`x <= 8 * 2^63`, where the relative error of a
/// 53-bit sqrt is far below one ulp of the root); the correction loops
/// make the result exact regardless of how the seed rounded.
fn isqrt(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    let mut r = (x as f64).sqrt() as u128;
    while r * r > x {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    r
}

/// Inverse of [`edge_index`]: recovers `(u, v)` with `u < v`.
///
/// Exact over the whole valid index range (any pair of `u32` node ids):
/// the former `(1 + sqrt(1 + 8i)) / 2` float trick loses integer
/// exactness once `8i + 1` leaves the 53-bit mantissa (indices near
/// `2^52`), so the discriminant square root is taken in integers and
/// the candidate row corrected exactly.
pub fn edge_pair(index: u64) -> (u32, u32) {
    // hi is the largest v with v(v-1)/2 <= index, i.e.
    // floor((1 + sqrt(1 + 8 index)) / 2) up to the rounding of the
    // truncated integer sqrt — the two corrections settle it exactly.
    let s = isqrt(8 * index as u128 + 1);
    let mut hi = (s.div_ceil(2)) as u64;
    if tri(hi) > index as u128 {
        hi -= 1;
    }
    if tri(hi + 1) <= index as u128 {
        hi += 1;
    }
    let lo = index - tri(hi) as u64;
    (lo as u32, hi as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small() {
        let n = 40u32;
        let mut seen = vec![false; pair_count(n as usize) as usize];
        for v in 0..n {
            for u in 0..v {
                let e = edge_index(u, v);
                assert!(!seen[e as usize], "index collision at ({u},{v})");
                seen[e as usize] = true;
                assert_eq!(edge_pair(e), (u, v));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn order_insensitive() {
        assert_eq!(edge_index(2, 9), edge_index(9, 2));
    }

    #[test]
    fn large_indices_exact() {
        for &(u, v) in &[(0u32, 1u32), (12345, 54321), (99999, 100000)] {
            assert_eq!(edge_pair(edge_index(u, v)), (u.min(v), u.max(v)));
        }
    }

    #[test]
    fn u32_boundary_rows_exact() {
        // Rows around the old 92 682-node cap, where pair indices cross
        // u32::MAX: every index in a window straddling each row edge
        // must invert exactly.
        for hi in [92_681u32, 92_682, 92_683, 92_684] {
            for lo in [0u32, 1, hi / 2, hi - 2, hi - 1] {
                assert_eq!(edge_pair(edge_index(lo, hi)), (lo, hi), "({lo},{hi})");
            }
        }
        for e in edge_index(0, 92_682) - 3..=edge_index(0, 92_682) + 3 {
            let (u, v) = edge_pair(e);
            assert_eq!(edge_index(u, v), e, "index {e}");
        }
    }

    #[test]
    fn f64_mantissa_boundary_exact() {
        // Near 2^52 the discriminant 8i + 1 leaves f64's 53-bit
        // mantissa and the old float inverse could land on the wrong
        // row; the integer inverse must stay exact through the region.
        for base in [1u64 << 49, 1 << 52, (1 << 52) + (1 << 51), 1 << 55] {
            for e in base - 40..base + 40 {
                let (u, v) = edge_pair(e);
                assert!(u < v, "index {e} gave ({u},{v})");
                assert_eq!(edge_index(u, v), e, "index {e}");
            }
        }
    }

    #[test]
    fn u64_extreme_rows_exact() {
        // Top of the addressable space: both endpoints near u32::MAX,
        // indices just below 2^63.
        let top = u32::MAX;
        for &(u, v) in &[
            (0, top),
            (top - 1, top),
            (top / 2, top),
            (top - 2, top - 1),
            (1_000_000_000, 4_000_000_000),
        ] {
            assert_eq!(edge_pair(edge_index(u, v)), (u, v), "({u},{v})");
        }
        let last = edge_index(top - 1, top);
        for e in last - 5..=last {
            let (u, v) = edge_pair(e);
            assert_eq!(edge_index(u, v), e, "index {e}");
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = edge_index(4, 4);
    }
}
