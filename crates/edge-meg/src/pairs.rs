//! Triangular indexing of unordered node pairs.

/// Number of unordered pairs over `n` nodes: `n(n-1)/2`.
pub fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Dense index of the pair `{u, v}` (`u != v`), in `0..pair_count(n)`.
///
/// Uses the triangular layout `index({u, v}) = v(v-1)/2 + u` for `u < v`.
///
/// # Panics
///
/// Panics if `u == v`.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::{edge_index, edge_pair};
/// let e = edge_index(3, 7);
/// assert_eq!(edge_pair(e), (3, 7));
/// ```
pub fn edge_index(u: u32, v: u32) -> usize {
    assert_ne!(u, v, "self-loops have no pair index");
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    (hi as usize * (hi as usize - 1)) / 2 + lo as usize
}

/// Inverse of [`edge_index`]: recovers `(u, v)` with `u < v`.
pub fn edge_pair(index: usize) -> (u32, u32) {
    // hi is the largest v with v(v-1)/2 <= index.
    let hi = ((1.0 + (1.0 + 8.0 * index as f64).sqrt()) / 2.0).floor() as usize;
    // Floating point can land one off; correct exactly.
    let hi = if hi * (hi - 1) / 2 > index {
        hi - 1
    } else {
        hi
    };
    let hi = if (hi + 1) * hi / 2 <= index {
        hi + 1
    } else {
        hi
    };
    let lo = index - hi * (hi - 1) / 2;
    (lo as u32, hi as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small() {
        let n = 40u32;
        let mut seen = vec![false; pair_count(n as usize)];
        for v in 0..n {
            for u in 0..v {
                let e = edge_index(u, v);
                assert!(!seen[e], "index collision at ({u},{v})");
                seen[e] = true;
                assert_eq!(edge_pair(e), (u, v));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn order_insensitive() {
        assert_eq!(edge_index(2, 9), edge_index(9, 2));
    }

    #[test]
    fn large_indices_exact() {
        for &(u, v) in &[(0u32, 1u32), (12345, 54321), (99999, 100000)] {
            assert_eq!(edge_pair(edge_index(u, v)), (u.min(v), u.max(v)));
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = edge_index(4, 4);
    }
}
