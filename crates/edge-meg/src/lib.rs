//! Link-based Markovian evolving graphs — Appendix A of
//! Clementi–Silvestri–Trevisan (PODC 2012).
//!
//! In an **edge-MEG** every potential edge of the `n`-node graph evolves
//! *independently* according to a Markov chain:
//!
//! * [`TwoStateEdgeMeg`] — the basic model of [CMMPS'10]: an absent edge is
//!   born with probability `p` per round, a present edge dies with
//!   probability `q`. Stationary density `α = p/(p+q)`, mixing time
//!   `Θ(1/(p+q))`.
//! * [`SparseTwoStateEdgeMeg`] — the same process, simulated event-driven
//!   (geometric toggle times in a calendar queue) so that huge sparse
//!   instances cost `O(#toggles)` per round on the delta path (or
//!   `O(#toggles + |E_t|)` when snapshots are materialized) instead of
//!   `O(n²)`. Trial *setup* can be made sparse as well:
//!   [`SparseTwoStateEdgeMeg::stationary_sparse_init`] skip-samples the
//!   stationary on-set in `O(#on)` instead of scanning all pairs.
//! * [`HiddenChainEdgeMeg`] — the paper's generalization `EM(n, M, χ)`:
//!   an arbitrary (hidden) finite chain `M` drives each edge and an
//!   arbitrary map `χ : S → {0, 1}` decides whether the edge exists.
//!
//! Because edges are independent, the β-independence condition of §3 holds
//! with `β = 1`, and Theorem 1 yields
//! `O(T_mix · (1/(nα) + 1)² · log² n)` — see
//! [`dynagraph::theory::edge_meg_general_bound`] and
//! [`dynagraph::theory::edge_meg_hidden_bound`].
//!
//! Every model here implements `EvolvingGraph::step_delta` natively —
//! the edge flips / toggle events *are* the delta — so the engine and
//! `flooding::flood` drive them churn-proportionally by default, with
//! results byte-identical to the snapshot path.
//!
//! # Examples
//!
//! ```
//! use dg_edge_meg::TwoStateEdgeMeg;
//! use dynagraph::{flooding, EvolvingGraph};
//!
//! let mut g = TwoStateEdgeMeg::stationary(64, 0.05, 0.2, 42).unwrap();
//! let run = flooding::flood(&mut g, 0, 10_000);
//! assert!(run.flooding_time().is_some());
//! ```
//!
//! Consume the churn directly (e.g. for incremental analytics):
//!
//! ```
//! use dg_edge_meg::SparseTwoStateEdgeMeg;
//! use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph};
//!
//! let n = 256;
//! let mut g = SparseTwoStateEdgeMeg::stationary(n, 1.0 / n as f64, 0.1, 7).unwrap();
//! let mut adj = DynAdjacency::new(n);
//! let mut delta = EdgeDelta::new();
//! for _ in 0..100 {
//!     g.step_delta(&mut delta);
//!     adj.apply(&delta); // O(churn), no snapshot ever built
//! }
//! assert_eq!(adj.edge_count(), g.alive_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod general;
mod pairmap;
mod pairs;
mod sharded;
mod sparse;
mod two_state;

pub use general::{bursty_chain, four_state_chain, HiddenChainEdgeMeg};
pub use pairs::{edge_index, edge_pair, pair_count};
pub use sharded::{ShardedSparseEdgeMeg, LANES};
pub use sparse::SparseTwoStateEdgeMeg;
pub use two_state::TwoStateEdgeMeg;
