//! The basic two-state edge-MEG (dense per-round simulation).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{MarkovError, TwoStateChain};
use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::pairs::{edge_pair, pair_count};

/// How the edge states are initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Init {
    /// Each edge on independently with the stationary probability
    /// `p/(p+q)` — the *stationary* edge-MEG of the paper's bounds.
    Stationary,
    /// All edges absent (worst-case bootstrap, used to probe mixing).
    AllOff,
    /// All edges present.
    AllOn,
}

/// The basic edge-MEG of Appendix A: every unordered pair of nodes hosts
/// an independent two-state chain with birth rate `p` and death rate `q`.
///
/// This implementation flips every potential edge each round (`O(n²)` per
/// round) — simple and exactly the defined process. For large sparse
/// instances use [`crate::SparseTwoStateEdgeMeg`], which is equivalent in
/// distribution.
///
/// # Examples
///
/// ```
/// use dg_edge_meg::TwoStateEdgeMeg;
/// use dynagraph::EvolvingGraph;
///
/// let mut g = TwoStateEdgeMeg::stationary(32, 0.1, 0.1, 7).unwrap();
/// assert_eq!(g.node_count(), 32);
/// // Stationary density is p/(p+q) = 1/2 of the 496 pairs on average.
/// let m = g.step().edge_count();
/// assert!(m > 150 && m < 350, "m = {m}");
/// ```
#[derive(Debug, Clone)]
pub struct TwoStateEdgeMeg {
    n: usize,
    chain: TwoStateChain,
    init: Init,
    alive: Vec<bool>,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    synced: bool,
}

impl TwoStateEdgeMeg {
    fn with_init(n: usize, p: f64, q: f64, seed: u64, init: Init) -> Result<Self, MarkovError> {
        let chain = TwoStateChain::new(p, q)?;
        if n < 2 {
            return Err(MarkovError::DimensionMismatch {
                expected: 2,
                found: n,
            });
        }
        let mut meg = TwoStateEdgeMeg {
            n,
            chain,
            init,
            alive: vec![false; pair_count(n) as usize],
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            synced: false,
        };
        meg.reset(seed);
        Ok(meg)
    }

    /// Creates a stationary edge-MEG: each edge starts on independently
    /// with probability `p/(p+q)`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rates (see
    /// [`dg_markov::TwoStateChain::new`]) or `n < 2`.
    pub fn stationary(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        Self::with_init(n, p, q, seed, Init::Stationary)
    }

    /// Creates an edge-MEG started from the empty graph (worst-case
    /// initialization; it converges to stationarity in `Θ(1/(p+q))`
    /// rounds).
    ///
    /// # Errors
    ///
    /// Same as [`TwoStateEdgeMeg::stationary`].
    pub fn from_empty(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        Self::with_init(n, p, q, seed, Init::AllOff)
    }

    /// Creates an edge-MEG started from the complete graph.
    ///
    /// # Errors
    ///
    /// Same as [`TwoStateEdgeMeg::stationary`].
    pub fn from_complete(n: usize, p: f64, q: f64, seed: u64) -> Result<Self, MarkovError> {
        Self::with_init(n, p, q, seed, Init::AllOn)
    }

    /// The per-edge chain.
    pub fn chain(&self) -> &TwoStateChain {
        &self.chain
    }

    /// The stationary edge density `α = p/(p+q)`.
    pub fn alpha(&self) -> f64 {
        self.chain.stationary_on()
    }

    /// Closed-form per-edge mixing time at TV tolerance `eps`.
    pub fn mixing_time(&self, eps: f64) -> usize {
        self.chain.mixing_time(eps).unwrap_or(0)
    }

    /// The paper's Appendix-A flooding bound for this instance:
    /// `O((1/(p+q))·((p+q)/(np)+1)²·log² n)`.
    pub fn general_flooding_bound(&self) -> f64 {
        dynagraph::theory::edge_meg_general_bound(self.n, self.chain.birth(), self.chain.death())
    }

    /// The CMMPS'10 almost-tight bound `O(log n / log(1+np))` (paper
    /// Eq. 2).
    pub fn cmmps_flooding_bound(&self) -> f64 {
        dynagraph::theory::edge_meg_cmmps_bound(self.n, self.chain.birth())
    }
}

impl EvolvingGraph for TwoStateEdgeMeg {
    fn node_count(&self) -> usize {
        self.n
    }

    fn step(&mut self) -> &Snapshot {
        let p = self.chain.birth();
        let q = self.chain.death();
        self.edge_buf.clear();
        for (e, alive) in self.alive.iter_mut().enumerate() {
            if *alive {
                if self.rng.gen_bool(q) {
                    *alive = false;
                }
            } else if self.rng.gen_bool(p) {
                *alive = true;
            }
            if *alive {
                self.edge_buf.push(edge_pair(e as u64));
            }
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // Identical flip loop (and RNG stream) as `step`; the flips *are*
        // the delta, so no snapshot is built. The per-round cost is still
        // O(n²) coin flips — inherent to the dense model; use
        // `SparseTwoStateEdgeMeg` for churn-proportional stepping.
        let p = self.chain.birth();
        let q = self.chain.death();
        delta.begin_round();
        if self.synced {
            for (e, alive) in self.alive.iter_mut().enumerate() {
                if *alive {
                    if self.rng.gen_bool(q) {
                        *alive = false;
                        delta.push_removed(edge_pair(e as u64));
                    }
                } else if self.rng.gen_bool(p) {
                    *alive = true;
                    delta.push_added(edge_pair(e as u64));
                }
            }
        } else {
            for (e, alive) in self.alive.iter_mut().enumerate() {
                if *alive {
                    if self.rng.gen_bool(q) {
                        *alive = false;
                    }
                } else if self.rng.gen_bool(p) {
                    *alive = true;
                }
                if *alive {
                    delta.push_added(edge_pair(e as u64));
                }
            }
            self.synced = true;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0xED6E));
        match self.init {
            Init::Stationary => {
                let alpha = self.chain.stationary_on();
                for a in &mut self.alive {
                    *a = self.rng.gen_bool(alpha);
                }
            }
            Init::AllOff => self.alive.fill(false),
            Init::AllOn => self.alive.fill(true),
        }
        self.synced = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynagraph::flooding::flood;

    #[test]
    fn stationary_density_holds() {
        let mut g = TwoStateEdgeMeg::stationary(40, 0.02, 0.08, 3).unwrap();
        // alpha = 0.2; average over rounds should be close.
        let mut total = 0usize;
        let rounds = 300;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = 0.2 * pair_count(40) as f64;
        assert!((mean / expected - 1.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn from_empty_converges_to_stationary_density() {
        let mut g = TwoStateEdgeMeg::from_empty(30, 0.1, 0.1, 5).unwrap();
        assert!((g.step().edge_count() as u64) < pair_count(30) / 4); // early rounds sparse-ish
        g.warm_up(200);
        let m = g.step().edge_count();
        let expected = 0.5 * pair_count(30) as f64;
        assert!((m as f64 / expected - 1.0).abs() < 0.25, "m = {m}");
    }

    #[test]
    fn from_complete_starts_full() {
        let mut g = TwoStateEdgeMeg::from_complete(10, 0.5, 1e-9, 1).unwrap();
        // Death rate ~ 0: graph stays essentially complete.
        assert_eq!(g.step().edge_count() as u64, pair_count(10));
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let mut g = TwoStateEdgeMeg::from_empty(12, 1.0, 1e-9, 9).unwrap();
        assert_eq!(g.step().edge_count() as u64, pair_count(12));
        let run = flood(&mut g, 0, 5);
        assert_eq!(run.flooding_time(), Some(1));
    }

    #[test]
    fn dense_meg_floods_fast() {
        let mut g = TwoStateEdgeMeg::stationary(64, 0.2, 0.2, 11).unwrap();
        let run = flood(&mut g, 0, 100);
        let t = run.flooding_time().unwrap();
        assert!(t <= 5, "t = {t}");
    }

    #[test]
    fn sparse_meg_floods_within_bound_shape() {
        let n = 128;
        let p = 1.0 / n as f64;
        let q = 0.5;
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, 13).unwrap();
        let run = flood(&mut g, 0, 50_000);
        let t = run.flooding_time().unwrap() as f64;
        let bound = dynagraph::theory::edge_meg_general_bound(n, p, q);
        assert!(t <= bound, "t = {t}, bound = {bound}");
    }

    #[test]
    fn reset_reproducible() {
        let mut g = TwoStateEdgeMeg::stationary(20, 0.3, 0.3, 2).unwrap();
        g.reset(123);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(123);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TwoStateEdgeMeg::stationary(10, 0.0, 0.0, 0).is_err());
        assert!(TwoStateEdgeMeg::stationary(10, 1.5, 0.1, 0).is_err());
        assert!(TwoStateEdgeMeg::stationary(1, 0.1, 0.1, 0).is_err());
    }

    #[test]
    fn bounds_accessible() {
        let g = TwoStateEdgeMeg::stationary(100, 0.01, 0.1, 0).unwrap();
        assert!((g.alpha() - 1.0 / 11.0).abs() < 1e-12);
        assert!(g.mixing_time(0.01) > 0);
        assert!(g.general_flooding_bound() > 0.0);
        assert!(g.cmmps_flooding_bound() > 0.0);
    }
}
