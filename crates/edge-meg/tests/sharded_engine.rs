//! Integration: the intra-trial sharded executor against the serial
//! engine paths — the byte-identity pins behind `.shards(..)`.
//!
//! The sharded path must be a pure wall-clock optimization: same
//! records (times, informed counts, rounds, *messages*), same per-round
//! deltas and snapshots handed to observers, same sweep artifact bytes,
//! for every shard count — and model reuse must stay byte-identical to
//! fresh construction when trials run sharded.

use dg_edge_meg::ShardedSparseEdgeMeg;
use dynagraph::engine::{Observer, RoundCtx, Simulation, Stepping};
use dynagraph::sweep::{Axis, Grid, Sweep, TrialBudget};
use dynagraph::Shards;

fn model(n: usize) -> impl Fn(u64) -> ShardedSparseEdgeMeg + Clone + Sync {
    move |seed| ShardedSparseEdgeMeg::stationary(n, 1.5 / n as f64, 0.3, seed).unwrap()
}

#[test]
fn engine_records_identical_across_shard_counts() {
    let n = 512;
    let run = |shards: usize| {
        Simulation::builder()
            .model(model(n))
            .trials(4)
            .max_rounds(100_000)
            .base_seed(0x5AAD)
            .shards(shards)
            .run()
    };
    let serial = run(1);
    assert_eq!(serial.incomplete(), 0);
    for shards in [2usize, 4, 8] {
        assert_eq!(serial, run(shards), "{shards} shards");
    }
}

#[test]
fn sharded_records_match_both_serial_stepping_paths() {
    // Transitivity anchor: the sharded executor agrees with the delta
    // path, which agrees with the snapshot path.
    let n = 256;
    let build = || {
        Simulation::builder()
            .model(model(n))
            .trials(3)
            .max_rounds(100_000)
            .base_seed(7)
    };
    let snapshot = build().stepping(Stepping::Snapshot).run();
    let delta = build().stepping(Stepping::Delta).run();
    let sharded = build().shards(4).run();
    assert_eq!(snapshot, delta);
    assert_eq!(delta, sharded);
}

/// One observed round: round number, newly informed (sorted — the
/// *order* is execution-path-dependent by contract; membership is not),
/// informed count, messages, delta added/removed lengths, snapshot edge
/// count.
type RoundSeen = (u32, Vec<u32>, usize, u64, usize, usize, usize);

/// Captures everything an observer can see per round.
#[derive(Default)]
struct RoundTrace {
    rounds: Vec<RoundSeen>,
}

impl Observer for RoundTrace {
    fn needs_snapshots(&self) -> bool {
        true
    }
    fn on_round(&mut self, ctx: &RoundCtx<'_>) {
        let mut newly = ctx.newly_informed.to_vec();
        newly.sort_unstable();
        let snap = ctx.snapshot.expect("asked for snapshots");
        self.rounds.push((
            ctx.round,
            newly,
            ctx.informed_count,
            ctx.messages,
            ctx.delta.map_or(usize::MAX, |d| d.added().len()),
            ctx.delta.map_or(usize::MAX, |d| d.removed().len()),
            snap.edge_count(),
        ));
    }
}

#[test]
fn observers_see_identical_rounds_serial_and_sharded() {
    // Deltas, informed sets, message counts, and materialized snapshots
    // must agree round for round — this pins the merged lane delta and
    // the partitioned adjacency apply against the serial sweep.
    let n = 384;
    let run = |shards: usize| {
        Simulation::builder()
            .model(model(n))
            .trials(2)
            .max_rounds(100_000)
            .base_seed(0xBEE)
            .shards(shards)
            .observers(|_| RoundTrace::default())
            .run_observed()
    };
    let (serial_report, serial_obs) = run(1);
    for shards in [2usize, 8] {
        let (report, obs) = run(shards);
        assert_eq!(serial_report, report, "{shards} shards");
        for (trial, (a, b)) in serial_obs.iter().zip(&obs).enumerate() {
            assert_eq!(a.rounds, b.rounds, "{shards} shards, trial {trial}");
        }
    }
}

#[test]
fn model_reuse_matches_fresh_on_sharded_trials() {
    let n = 256;
    let build = || {
        Simulation::builder()
            .model(model(n))
            .trials(5)
            .max_rounds(100_000)
            .base_seed(0x2E5E)
            .shards(4)
    };
    assert_eq!(build().run(), build().reuse_models(false).run());
}

#[test]
fn sweep_artifacts_byte_identical_across_shard_counts() {
    // The sweep layer inherits the axis through its trial function; the
    // JSON artifact (the thing dg-serve stores content-addressed) must
    // not depend on how many threads each trial ran on.
    let artifact = |shards: usize| {
        let grid = Grid::new().axis(Axis::ints("n", [192, 320]));
        Sweep::over(grid)
            .budget(TrialBudget::fixed(3))
            .base_seed(0xC0FFEE)
            .run(move |cell, trial| {
                let n = cell.usize("n");
                Simulation::builder()
                    .model(model(n))
                    .max_rounds(100_000)
                    .base_seed(trial.cell_seed)
                    .shards(shards)
                    .run_trial(trial.index)
                    .time
                    .map(f64::from)
            })
            .unwrap()
            .to_json()
    };
    let serial = artifact(1);
    assert_eq!(serial, artifact(2));
    assert_eq!(serial, artifact(8));
}

#[test]
fn shards_auto_resolves_and_runs() {
    // Auto may resolve to any machine-dependent count (including 1);
    // records must match serial regardless.
    let n = 192;
    let build = || {
        Simulation::builder()
            .model(model(n))
            .trials(2)
            .max_rounds(100_000)
            .base_seed(11)
    };
    assert_eq!(build().shards(Shards::Auto).run(), build().run());
}
