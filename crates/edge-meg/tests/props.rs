//! Property tests for the edge-MEG crate: pair indexing, density
//! convergence, dense/sparse distributional agreement, and delta-path
//! equivalence (stepping via `step_delta` + `DynAdjacency` reproduces
//! the rebuild path's snapshot sequence exactly).

use proptest::prelude::*;

use dg_edge_meg::{
    bursty_chain, edge_index, edge_pair, pair_count, HiddenChainEdgeMeg, SparseTwoStateEdgeMeg,
    TwoStateEdgeMeg,
};
use dynagraph::delta::assert_replays_rebuild;
use dynagraph::EvolvingGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_index_round_trips(u in 0u32..5000, v in 0u32..5000) {
        prop_assume!(u != v);
        let e = edge_index(u, v);
        prop_assert_eq!(edge_pair(e), (u.min(v), u.max(v)));
    }

    #[test]
    fn pair_index_round_trips_full_u32(u in any::<u32>(), v in any::<u32>()) {
        // The whole node-id space: indices range up to ~2^63, far past
        // both u32::MAX and the 2^52 f64-exactness cliff.
        prop_assume!(u != v);
        let e = edge_index(u, v);
        prop_assert_eq!(edge_pair(e), (u.min(v), u.max(v)));
    }

    #[test]
    fn pair_inverse_exact_at_u32_boundary(off in 0u64..4096) {
        // Indices straddling u32::MAX — the region the old 92 682-node
        // cap fenced off.
        let e = u32::MAX as u64 - 2048 + off;
        let (u, v) = edge_pair(e);
        prop_assert!(u < v);
        prop_assert_eq!(edge_index(u, v), e);
    }

    #[test]
    fn pair_inverse_exact_at_f64_mantissa_boundary(off in 0u64..4096) {
        // Indices straddling 2^52, where 8i + 1 stops being exactly
        // representable in f64 and the old float inverse could misplace
        // the row.
        let e = (1u64 << 52) - 2048 + off;
        let (u, v) = edge_pair(e);
        prop_assert!(u < v);
        prop_assert_eq!(edge_index(u, v), e);
    }

    #[test]
    fn pair_index_is_dense_bijection(n in 2u32..40) {
        let mut seen = vec![false; pair_count(n as usize) as usize];
        for v in 0..n {
            for u in 0..v {
                let e = edge_index(u, v);
                prop_assert!(!seen[e as usize]);
                seen[e as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stationary_density_tracks_alpha(
        n in 8usize..32,
        p in 0.02f64..0.5,
        q in 0.02f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let alpha = p / (p + q);
        let rounds = 300;
        let mut total = 0usize;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = alpha * pair_count(n) as f64;
        // 4-sigma-ish band for the time average.
        prop_assert!(
            (mean - expected).abs() < 0.35 * expected + 3.0,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn sparse_and_dense_agree_on_density(
        n in 8usize..28,
        p in 0.02f64..0.4,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let rounds = 250;
        let mut dense = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut sparse = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut dsum = 0usize;
        let mut ssum = 0usize;
        for _ in 0..rounds {
            dsum += dense.step().edge_count();
            ssum += sparse.step().edge_count();
        }
        let d = dsum as f64 / rounds as f64;
        let s = ssum as f64 / rounds as f64;
        let expected = p / (p + q) * pair_count(n) as f64;
        prop_assert!((d - expected).abs() < 0.4 * expected + 3.0, "dense {d} vs {expected}");
        prop_assert!((s - expected).abs() < 0.4 * expected + 3.0, "sparse {s} vs {expected}");
    }

    #[test]
    fn two_state_deltas_replay_rebuild(
        n in 4usize..24,
        p in 0.05f64..0.6,
        q in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let mut rebuild = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut delta = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        assert_replays_rebuild(&mut rebuild, &mut delta, 20);
        // ... and again from the same reset, covering the re-sync.
        rebuild.reset(seed ^ 1);
        delta.reset(seed ^ 1);
        assert_replays_rebuild(&mut rebuild, &mut delta, 20);
    }

    #[test]
    fn two_state_non_stationary_inits_replay_rebuild(
        n in 4usize..16,
        seed in any::<u64>(),
    ) {
        let mut rebuild = TwoStateEdgeMeg::from_empty(n, 0.3, 0.3, seed).unwrap();
        let mut delta = TwoStateEdgeMeg::from_empty(n, 0.3, 0.3, seed).unwrap();
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
        let mut rebuild = TwoStateEdgeMeg::from_complete(n, 0.3, 0.3, seed).unwrap();
        let mut delta = TwoStateEdgeMeg::from_complete(n, 0.3, 0.3, seed).unwrap();
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
    }

    #[test]
    fn sparse_deltas_replay_rebuild(
        n in 4usize..32,
        p in 0.02f64..0.4,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut rebuild = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut delta = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        assert_replays_rebuild(&mut rebuild, &mut delta, 30);
        rebuild.reset(seed ^ 7);
        delta.reset(seed ^ 7);
        assert_replays_rebuild(&mut rebuild, &mut delta, 30);
    }

    #[test]
    fn sparse_deltas_survive_warm_up(
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        // Warm-up runs on the delta path and rebases; the first delta a
        // consumer sees afterwards must be the full warmed-up edge set.
        let mut rebuild = SparseTwoStateEdgeMeg::stationary(n, 0.2, 0.3, seed).unwrap();
        let mut delta = SparseTwoStateEdgeMeg::stationary(n, 0.2, 0.3, seed).unwrap();
        rebuild.warm_up(17);
        delta.warm_up(17);
        assert_replays_rebuild(&mut rebuild, &mut delta, 10);
    }

    #[test]
    fn hidden_chain_deltas_replay_rebuild(
        n in 4usize..20,
        wake in 0.05f64..0.5,
        fire in 0.05f64..0.45,
        cool in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let make = || {
            let (chain, chi) = bursty_chain(wake, fire, cool);
            HiddenChainEdgeMeg::stationary(n, chain, chi, seed).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        assert_replays_rebuild(&mut rebuild, &mut delta, 25);
        rebuild.reset(seed ^ 3);
        delta.reset(seed ^ 3);
        assert_replays_rebuild(&mut rebuild, &mut delta, 25);
    }

    #[test]
    fn reset_is_deterministic(
        n in 4usize..20,
        p in 0.05f64..0.5,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, 0).unwrap();
        g.reset(seed);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(seed);
        let b: Vec<_> = g.step().edges().collect();
        prop_assert_eq!(a, b);
    }

    // The zero-rebuild reuse contract (engine per-worker model reuse):
    // a used instance reset(s) must be observably identical to a fresh
    // construction with seed s — byte-identical realizations on both
    // stepping paths, lazily grown internal state included.

    #[test]
    fn two_state_reset_matches_fresh(
        n in 4usize..24,
        p in 0.05f64..0.5,
        q in 0.05f64..0.5,
        perturb in any::<u64>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(perturb != seed);
        for make in [
            TwoStateEdgeMeg::stationary as fn(usize, f64, f64, u64) -> _,
            TwoStateEdgeMeg::from_empty,
            TwoStateEdgeMeg::from_complete,
        ] {
            dynagraph::assert_reset_matches_fresh(
                |s| make(n, p, q, s).unwrap(),
                perturb,
                seed,
                20,
            );
        }
    }

    #[test]
    fn sparse_reset_matches_fresh(
        n in 4usize..24,
        p in 0.02f64..0.5,
        q in 0.05f64..0.5,
        perturb in any::<u64>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(perturb != seed);
        // Exact-scan: every pair stays tracked; reset rewinds the
        // calendar queue and the alive list.
        dynagraph::assert_reset_matches_fresh(
            |s| SparseTwoStateEdgeMeg::stationary(n, p, q, s).unwrap(),
            perturb,
            seed,
            25,
        );
        // Sparse-init: the perturbation rounds grow (and retire) the
        // lazy occupancy map; reset must clear every trace of it.
        dynagraph::assert_reset_matches_fresh(
            |s| SparseTwoStateEdgeMeg::stationary_sparse_init(n, p, q, s).unwrap(),
            perturb,
            seed,
            25,
        );
    }

    #[test]
    fn hidden_chain_reset_matches_fresh(
        n in 4usize..20,
        wake in 0.05f64..0.5,
        fire in 0.05f64..0.45,
        cool in 0.05f64..0.5,
        perturb in any::<u64>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(perturb != seed);
        dynagraph::assert_reset_matches_fresh(
            |s| {
                let (chain, chi) = bursty_chain(wake, fire, cool);
                HiddenChainEdgeMeg::stationary(n, chain, chi, s).unwrap()
            },
            perturb,
            seed,
            20,
        );
    }
}
