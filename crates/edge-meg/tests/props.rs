//! Property tests for the edge-MEG crate: pair indexing, density
//! convergence, and dense/sparse distributional agreement.

use proptest::prelude::*;

use dg_edge_meg::{edge_index, edge_pair, pair_count, SparseTwoStateEdgeMeg, TwoStateEdgeMeg};
use dynagraph::EvolvingGraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_index_round_trips(u in 0u32..5000, v in 0u32..5000) {
        prop_assume!(u != v);
        let e = edge_index(u, v);
        prop_assert_eq!(edge_pair(e), (u.min(v), u.max(v)));
    }

    #[test]
    fn pair_index_is_dense_bijection(n in 2u32..40) {
        let mut seen = vec![false; pair_count(n as usize)];
        for v in 0..n {
            for u in 0..v {
                let e = edge_index(u, v);
                prop_assert!(!seen[e]);
                seen[e] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn stationary_density_tracks_alpha(
        n in 8usize..32,
        p in 0.02f64..0.5,
        q in 0.02f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let alpha = p / (p + q);
        let rounds = 300;
        let mut total = 0usize;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = alpha * pair_count(n) as f64;
        // 4-sigma-ish band for the time average.
        prop_assert!(
            (mean - expected).abs() < 0.35 * expected + 3.0,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn sparse_and_dense_agree_on_density(
        n in 8usize..28,
        p in 0.02f64..0.4,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let rounds = 250;
        let mut dense = TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut sparse = SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
        let mut dsum = 0usize;
        let mut ssum = 0usize;
        for _ in 0..rounds {
            dsum += dense.step().edge_count();
            ssum += sparse.step().edge_count();
        }
        let d = dsum as f64 / rounds as f64;
        let s = ssum as f64 / rounds as f64;
        let expected = p / (p + q) * pair_count(n) as f64;
        prop_assert!((d - expected).abs() < 0.4 * expected + 3.0, "dense {d} vs {expected}");
        prop_assert!((s - expected).abs() < 0.4 * expected + 3.0, "sparse {s} vs {expected}");
    }

    #[test]
    fn reset_is_deterministic(
        n in 4usize..20,
        p in 0.05f64..0.5,
        q in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let mut g = TwoStateEdgeMeg::stationary(n, p, q, 0).unwrap();
        g.reset(seed);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(seed);
        let b: Vec<_> = g.step().edges().collect();
        prop_assert_eq!(a, b);
    }
}
