//! Property tests for the mobility crate: containment, path-family
//! invariants, cell-list correctness against the naive pair scan.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_mobility::{
    CellList, GeometricMeg, GridWalk, ManhattanWaypoint, MobilityModel, PathFamily, Point,
    RandomDirection, RandomWaypoint,
};
use dynagraph::delta::assert_replays_rebuild;
use dynagraph::EvolvingGraph;

fn check_contained<M: MobilityModel>(model: &M, rounds: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = model.sample_initial(&mut rng);
    let side = model.side();
    for _ in 0..rounds {
        model.step_state(&mut s, &mut rng);
        let p = model.position(&s);
        assert!(
            (0.0..=side + 1e-9).contains(&p.x) && (0.0..=side + 1e-9).contains(&p.y),
            "escaped the square: {p:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn geometric_meg_deltas_replay_rebuild(
        n in 2usize..24,
        r in 0.5f64..2.0,
        seed in any::<u64>(),
    ) {
        // Meeting enter/leave deltas must reproduce the cell-list
        // snapshot sequence exactly, including across reset.
        let model = GridWalk::new(8, 1).unwrap();
        let mut rebuild = GeometricMeg::new(model, n, r, seed).unwrap();
        let mut delta = GeometricMeg::new(model, n, r, seed).unwrap();
        assert!(delta.has_native_deltas());
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
        rebuild.reset(seed ^ 5);
        delta.reset(seed ^ 5);
        assert_replays_rebuild(&mut rebuild, &mut delta, 15);
    }

    #[test]
    fn waypoint_meg_deltas_replay_rebuild(
        n in 2usize..20,
        seed in any::<u64>(),
    ) {
        let model = RandomWaypoint::new(10.0, 0.5, 1.5).unwrap();
        let mut rebuild = GeometricMeg::new(model, n, 1.5, seed).unwrap();
        let mut delta = GeometricMeg::new(model, n, 1.5, seed).unwrap();
        rebuild.warm_up(5);
        delta.warm_up(5);
        assert_replays_rebuild(&mut rebuild, &mut delta, 12);
    }

    #[test]
    fn waypoint_stays_in_square(
        side in 2.0f64..50.0,
        vmin in 0.1f64..2.0,
        extra in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let wp = RandomWaypoint::new(side, vmin, vmin + extra).unwrap();
        check_contained(&wp, 300, seed);
    }

    #[test]
    fn manhattan_stays_in_square(side in 2.0f64..50.0, seed in any::<u64>()) {
        let mw = ManhattanWaypoint::new(side, 1.0, 1.0).unwrap();
        check_contained(&mw, 300, seed);
    }

    #[test]
    fn direction_stays_in_square(
        side in 2.0f64..50.0,
        speed in 0.1f64..3.0,
        seed in any::<u64>(),
    ) {
        prop_assume!(speed < side);
        let rd = RandomDirection::new(side, speed, 2, 20).unwrap();
        check_contained(&rd, 300, seed);
    }

    #[test]
    fn walk_positions_are_grid_points(m in 2usize..20, rho in 1usize..4, seed in any::<u64>()) {
        let walk = GridWalk::new(m, rho).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = walk.sample_initial(&mut rng);
        for _ in 0..100 {
            walk.step_state(&mut s, &mut rng);
            let p = walk.position(&s);
            prop_assert_eq!(p.x.fract(), 0.0);
            prop_assert_eq!(p.y.fract(), 0.0);
            prop_assert!(p.x <= (m - 1) as f64 && p.y <= (m - 1) as f64);
        }
    }

    #[test]
    fn cell_list_matches_naive(
        n in 1usize..120,
        side in 2.0f64..30.0,
        r_frac in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let r = r_frac * side / 2.0;
        let mut rng = SmallRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        let mut cells = CellList::new(side, r);
        cells.rebuild(&points);
        let mut got: Vec<(u32, u32)> = Vec::new();
        cells.for_each_pair_within(&points, r, |i, j| got.push((i, j)));
        got.sort_unstable();
        got.dedup();
        let mut want = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if points[i].distance(points[j]) <= r {
                    want.push((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn edges_family_always_valid(m in 2usize..7) {
        let g = dg_graph::generators::grid(m, m);
        let f = PathFamily::edges_family(&g).unwrap();
        prop_assert!(f.is_simple());
        prop_assert!(f.is_reversible());
        prop_assert_eq!(f.path_count(), 2 * g.edge_count());
        // Congestion equals degree for the edges family.
        for u in g.nodes() {
            prop_assert_eq!(f.congestion(u), g.degree(u));
        }
    }

    #[test]
    fn l_paths_invariants(rows in 2usize..6, cols in 2usize..6) {
        let (graph, f) = PathFamily::grid_l_paths(rows, cols);
        prop_assert!(f.is_simple());
        prop_assert!(f.is_reversible());
        prop_assert!(f.delta_regularity().unwrap() >= 1.0);
        prop_assert!(f.delta_regularity().unwrap() < 4.0);
        // Every path's hops are grid edges and its length is the Manhattan
        // distance + 1 (shortest paths).
        for i in 0..f.path_count() {
            let p = f.path(i);
            for w in p.windows(2) {
                prop_assert!(graph.has_edge(w[0], w[1]));
            }
            let (a, b) = (p[0], *p.last().unwrap());
            let (ar, ac) = ((a as usize) / cols, (a as usize) % cols);
            let (br, bc) = ((b as usize) / cols, (b as usize) % cols);
            let manhattan = ar.abs_diff(br) + ac.abs_diff(bc);
            prop_assert_eq!(p.len(), manhattan + 1);
        }
    }
}
