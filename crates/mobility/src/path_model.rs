//! The random-path model as a dynamic graph (§4.1, Corollary 5).
//!
//! Node states are `(h, h_i)` — "on path `h`, at its `i`-th point". A node
//! walks its path one edge per round; at the end point it picks a uniform
//! path from `P(end)` and continues. Two nodes are connected when they
//! occupy the same point. With the all-edges family this is exactly the
//! random walk model with `ρ = 1`, `r = 0`.
//!
//! For simple + reversible families the stationary distribution over
//! states is **uniform** (Theorem 11 of \[14\]); [`RandomPathModel`] can
//! therefore sample exact stationary starts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dynagraph::{mix_seed, EvolvingGraph, Snapshot};

use crate::{MobilityError, PathFamily};

/// Per-node state of the random-path model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathState {
    /// Path index into the family.
    path: u32,
    /// Position index along the path (`1 ..= ℓ(h) − 1`, 0-based into the
    /// point list; the state `(h, h_i)` of the paper has `i = pos + 1`).
    pos: u32,
}

/// The random-path model `RP = (H, P)` over `n` nodes as an
/// [`EvolvingGraph`].
///
/// # Parity and laziness
///
/// On a *bipartite* mobility graph (grids!), a node that moves exactly one
/// edge per round alternates sides deterministically, so two nodes whose
/// phases differ **never** co-locate: the product chain is periodic and
/// the paper's ergodicity premise fails. The standard remedy — implicit in
/// the paper's random walk model, where a node picks its next position
/// "within ρ hops", which includes staying put — is laziness: with
/// probability `laziness` a node does not advance this round. Laziness
/// preserves the uniform stationary distribution and makes the chain
/// aperiodic. Use [`RandomPathModel::stationary_lazy`] on bipartite
/// graphs.
///
/// # Examples
///
/// ```
/// use dg_graph::generators;
/// use dg_mobility::{PathFamily, RandomPathModel};
/// use dynagraph::{flooding, EvolvingGraph};
///
/// let (_, family) = PathFamily::grid_l_paths(4, 4);
/// // The grid is bipartite: use a lazy variant so phases mix.
/// let mut model = RandomPathModel::stationary_lazy(family, 32, 0.25, 7).unwrap();
/// let run = flooding::flood(&mut model, 0, 100_000);
/// assert!(run.flooding_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RandomPathModel {
    family: PathFamily,
    laziness: f64,
    /// Prefix sums of `ℓ(h) − 1` for uniform stationary state sampling.
    state_prefix: Vec<u64>,
    states: Vec<PathState>,
    points: Vec<u32>,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    /// Reusable bucket heads/next for same-point grouping.
    bucket_head: Vec<u32>,
    bucket_next: Vec<u32>,
    touched: Vec<u32>,
}

const NIL: u32 = u32::MAX;

impl RandomPathModel {
    /// Creates the model with **stationary** initial states (uniform over
    /// the `Σ (ℓ(h) − 1)` states — exact for simple + reversible
    /// families, Theorem 11 of \[14\]).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] when `n < 2`.
    pub fn stationary(family: PathFamily, n: usize, seed: u64) -> Result<Self, MobilityError> {
        Self::stationary_lazy(family, n, 0.0, seed)
    }

    /// Like [`RandomPathModel::stationary`], but each node independently
    /// pauses with probability `laziness` per round — required for
    /// bipartite mobility graphs (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] when `n < 2` or
    /// `laziness` is outside `[0, 1)`.
    pub fn stationary_lazy(
        family: PathFamily,
        n: usize,
        laziness: f64,
        seed: u64,
    ) -> Result<Self, MobilityError> {
        if n < 2 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "n",
                value: n as f64,
            });
        }
        if !(0.0..1.0).contains(&laziness) {
            return Err(MobilityError::ParameterOutOfRange {
                name: "laziness",
                value: laziness,
            });
        }
        let mut state_prefix = Vec::with_capacity(family.path_count() + 1);
        state_prefix.push(0u64);
        for i in 0..family.path_count() {
            let prev = *state_prefix.last().expect("non-empty");
            state_prefix.push(prev + (family.path(i).len() - 1) as u64);
        }
        let point_count = family.point_count();
        let mut model = RandomPathModel {
            family,
            laziness,
            state_prefix,
            states: vec![PathState { path: 0, pos: 1 }; n],
            points: vec![0; n],
            rng: SmallRng::seed_from_u64(seed),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            bucket_head: vec![NIL; point_count],
            bucket_next: vec![NIL; n],
            touched: Vec::new(),
        };
        model.reset(seed);
        Ok(model)
    }

    /// The path family.
    pub fn family(&self) -> &PathFamily {
        &self.family
    }

    /// The current point of every node (updated by each step).
    pub fn current_points(&self) -> &[u32] {
        &self.points
    }

    fn sample_stationary_state(&mut self) -> PathState {
        let total = *self.state_prefix.last().expect("non-empty");
        let x = self.rng.gen_range(0..total);
        let path = match self.state_prefix.binary_search(&x) {
            Ok(i) => i,      // x is exactly a prefix boundary: state 0 of path i
            Err(i) => i - 1, // x falls inside path i-1's range
        };
        let offset = x - self.state_prefix[path];
        PathState {
            path: path as u32,
            pos: offset as u32 + 1,
        }
    }

    fn point_of(&self, s: PathState) -> u32 {
        self.family.path(s.path as usize)[s.pos as usize]
    }
}

impl EvolvingGraph for RandomPathModel {
    fn node_count(&self) -> usize {
        self.states.len()
    }

    fn step(&mut self) -> &Snapshot {
        for i in 0..self.states.len() {
            if self.laziness > 0.0 && self.rng.gen_bool(self.laziness) {
                continue; // pause this round; position unchanged
            }
            let mut s = self.states[i];
            let path = self.family.path(s.path as usize);
            if (s.pos as usize) < path.len() - 1 {
                s.pos += 1;
            } else {
                let end = *path.last().expect("paths have >= 2 points");
                let options = self.family.starts_at(end);
                let choice = options[self.rng.gen_range(0..options.len())];
                s = PathState {
                    path: choice,
                    pos: 1,
                };
            }
            self.states[i] = s;
            self.points[i] = self.point_of(s);
        }
        // Same-point connection: bucket nodes by point.
        for &p in &self.touched {
            self.bucket_head[p as usize] = NIL;
        }
        self.touched.clear();
        for (i, &p) in self.points.iter().enumerate() {
            if self.bucket_head[p as usize] == NIL {
                self.touched.push(p);
            }
            self.bucket_next[i] = self.bucket_head[p as usize];
            self.bucket_head[p as usize] = i as u32;
        }
        self.edge_buf.clear();
        for &p in &self.touched {
            let mut i = self.bucket_head[p as usize];
            while i != NIL {
                let mut j = self.bucket_next[i as usize];
                while j != NIL {
                    self.edge_buf.push((i.min(j), i.max(j)));
                    j = self.bucket_next[j as usize];
                }
                i = self.bucket_next[i as usize];
            }
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        &self.snapshot
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x9A7C));
        for i in 0..self.states.len() {
            let s = self.sample_stationary_state();
            self.states[i] = s;
            self.points[i] = self.point_of(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;
    use dynagraph::flooding::flood;

    #[test]
    fn walk_equivalence_stays_on_graph() {
        let g = generators::cycle(6);
        let family = PathFamily::edges_family(&g).unwrap();
        let mut model = RandomPathModel::stationary(family, 8, 3).unwrap();
        for _ in 0..100 {
            model.step();
            for &p in model.current_points() {
                assert!((p as usize) < 6);
            }
        }
    }

    #[test]
    fn stationary_point_occupancy_uniform_on_regular_graph() {
        // Edges family on a cycle: point occupancy must be uniform.
        let g = generators::cycle(8);
        let family = PathFamily::edges_family(&g).unwrap();
        let mut model = RandomPathModel::stationary(family, 4, 5).unwrap();
        let mut counts = [0u64; 8];
        let rounds = 40_000;
        for _ in 0..rounds {
            model.step();
            for &p in model.current_points() {
                counts[p as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        for (p, &c) in counts.iter().enumerate() {
            let freq = c as f64 / total as f64;
            assert!((freq - 0.125).abs() < 0.01, "point {p}: freq {freq}");
        }
    }

    #[test]
    fn same_point_edges_only() {
        let (_, family) = PathFamily::grid_l_paths(3, 3);
        let mut model = RandomPathModel::stationary(family, 10, 9).unwrap();
        for _ in 0..50 {
            let snap = model.step().clone();
            let pts = model.current_points().to_vec();
            for (u, v) in snap.edges() {
                assert_eq!(pts[u as usize], pts[v as usize]);
            }
            // And conversely: co-located nodes are connected.
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i] == pts[j] {
                        assert!(snap.has_edge(i as u32, j as u32));
                    }
                }
            }
        }
    }

    #[test]
    fn floods_on_l_path_grid_with_laziness() {
        let (_, family) = PathFamily::grid_l_paths(3, 3);
        let mut model = RandomPathModel::stationary_lazy(family, 24, 0.25, 1).unwrap();
        let run = flood(&mut model, 0, 50_000);
        assert!(run.flooding_time().is_some());
    }

    #[test]
    fn bipartite_parity_traps_zero_laziness() {
        // On a bipartite grid with always-move dynamics, nodes of opposite
        // phase never co-locate: flooding cannot complete. This documents
        // the ergodicity caveat; laziness is the fix.
        let (_, family) = PathFamily::grid_l_paths(3, 3);
        let mut model = RandomPathModel::stationary(family, 24, 1).unwrap();
        let run = flood(&mut model, 0, 3000);
        assert!(
            run.flooding_time().is_none(),
            "parity classes should not mix without laziness"
        );
        assert!(run.informed_count() < 24);
    }

    #[test]
    fn reset_reproducible() {
        let (_, family) = PathFamily::grid_l_paths(3, 3);
        let mut model = RandomPathModel::stationary(family, 8, 0).unwrap();
        model.reset(77);
        let a: Vec<_> = model.step().edges().collect();
        let pa = model.current_points().to_vec();
        model.reset(77);
        let b: Vec<_> = model.step().edges().collect();
        let pb = model.current_points().to_vec();
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn reset_matches_fresh() {
        // The zero-rebuild reuse contract: a used instance reset(s) must
        // realize a fresh stationary(s) exactly, with no residue in the
        // same-point buckets.
        dynagraph::assert_reset_matches_fresh(
            |seed| {
                let (_, family) = PathFamily::grid_l_paths(3, 3);
                RandomPathModel::stationary_lazy(family, 10, 0.25, seed).unwrap()
            },
            1,
            77,
            14,
        );
    }

    #[test]
    fn rejects_tiny_n() {
        let g = generators::cycle(4);
        let family = PathFamily::edges_family(&g).unwrap();
        assert!(RandomPathModel::stationary(family, 1, 0).is_err());
    }
}
