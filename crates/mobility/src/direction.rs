//! The random direction (bounce) model — another random-trip instance.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::{MobilityError, MobilityModel, Point};

/// State of a random-direction node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionState {
    /// Current position.
    pub pos: Point,
    /// Unit direction vector.
    pub dir: (f64, f64),
    /// Rounds remaining on the current leg.
    pub remaining: u32,
}

/// The random direction model: each leg picks a uniform direction and a
/// uniform leg duration in `[min_leg, max_leg]` rounds, travels at
/// constant speed, and reflects off the square's walls.
///
/// Unlike the waypoint model its stationary positional distribution is
/// (near-)uniform, which makes it a useful contrast for the (δ, λ)
/// conditions of Corollary 4 — δ close to 1 here, markedly larger for the
/// waypoint.
///
/// # Examples
///
/// ```
/// use dg_mobility::{MobilityModel, RandomDirection};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let rd = RandomDirection::new(50.0, 1.0, 10, 30).unwrap();
/// let mut rng = SmallRng::seed_from_u64(5);
/// let mut s = rd.sample_initial(&mut rng);
/// for _ in 0..500 {
///     rd.step_state(&mut s, &mut rng);
/// }
/// let p = rd.position(&s);
/// assert!(p.x >= 0.0 && p.x <= 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDirection {
    side: f64,
    speed: f64,
    min_leg: u32,
    max_leg: u32,
}

impl RandomDirection {
    /// Creates the model over `[0, side]²`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] unless `side > 0`,
    /// `speed > 0` and `1 <= min_leg <= max_leg`.
    pub fn new(side: f64, speed: f64, min_leg: u32, max_leg: u32) -> Result<Self, MobilityError> {
        if !side.is_finite() || side <= 0.0 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "side",
                value: side,
            });
        }
        if !speed.is_finite() || speed <= 0.0 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "speed",
                value: speed,
            });
        }
        if min_leg == 0 || max_leg < min_leg {
            return Err(MobilityError::ParameterOutOfRange {
                name: "min_leg/max_leg",
                value: min_leg as f64,
            });
        }
        Ok(RandomDirection {
            side,
            speed,
            min_leg,
            max_leg,
        })
    }

    fn sample_leg(&self, rng: &mut SmallRng) -> (f64, f64, u32) {
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let dur = if self.min_leg == self.max_leg {
            self.min_leg
        } else {
            rng.gen_range(self.min_leg..=self.max_leg)
        };
        (theta.cos(), theta.sin(), dur)
    }
}

impl MobilityModel for RandomDirection {
    type State = DirectionState;

    fn side(&self) -> f64 {
        self.side
    }

    fn sample_initial(&self, rng: &mut SmallRng) -> DirectionState {
        let (dx, dy, dur) = self.sample_leg(rng);
        DirectionState {
            pos: Point::new(rng.gen::<f64>() * self.side, rng.gen::<f64>() * self.side),
            dir: (dx, dy),
            remaining: dur,
        }
    }

    fn worst_initial(&self) -> DirectionState {
        DirectionState {
            pos: Point::new(0.0, 0.0),
            dir: (
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
            remaining: self.min_leg,
        }
    }

    fn step_state(&self, state: &mut DirectionState, rng: &mut SmallRng) {
        let mut x = state.pos.x + state.dir.0 * self.speed;
        let mut y = state.pos.y + state.dir.1 * self.speed;
        let (mut dx, mut dy) = state.dir;
        // Reflect off walls (at most once per axis per round since
        // speed < side in any sane configuration).
        if x < 0.0 {
            x = -x;
            dx = -dx;
        } else if x > self.side {
            x = 2.0 * self.side - x;
            dx = -dx;
        }
        if y < 0.0 {
            y = -y;
            dy = -dy;
        } else if y > self.side {
            y = 2.0 * self.side - y;
            dy = -dy;
        }
        state.pos = Point::new(x.clamp(0.0, self.side), y.clamp(0.0, self.side));
        state.dir = (dx, dy);
        state.remaining = state.remaining.saturating_sub(1);
        if state.remaining == 0 {
            let (ndx, ndy, dur) = self.sample_leg(rng);
            state.dir = (ndx, ndy);
            state.remaining = dur;
        }
    }

    fn position(&self, state: &DirectionState) -> Point {
        state.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_validated() {
        assert!(RandomDirection::new(0.0, 1.0, 1, 2).is_err());
        assert!(RandomDirection::new(10.0, 0.0, 1, 2).is_err());
        assert!(RandomDirection::new(10.0, 1.0, 0, 2).is_err());
        assert!(RandomDirection::new(10.0, 1.0, 3, 2).is_err());
    }

    #[test]
    fn stays_in_square_with_reflection() {
        let rd = RandomDirection::new(10.0, 2.5, 5, 20).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = rd.worst_initial();
        for _ in 0..2000 {
            rd.step_state(&mut s, &mut rng);
            assert!(
                s.pos.x >= 0.0 && s.pos.x <= 10.0 && s.pos.y >= 0.0 && s.pos.y <= 10.0,
                "escaped: {:?}",
                s.pos
            );
        }
    }

    #[test]
    fn direction_renewed_after_leg() {
        let rd = RandomDirection::new(100.0, 1.0, 3, 3).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut s = rd.sample_initial(&mut rng);
        let d0 = s.dir;
        rd.step_state(&mut s, &mut rng);
        rd.step_state(&mut s, &mut rng);
        // Third step exhausts the 3-round leg and samples a new direction.
        rd.step_state(&mut s, &mut rng);
        assert!(
            (s.dir.0 - d0.0).abs() > 1e-12 || (s.dir.1 - d0.1).abs() > 1e-12,
            "direction should renew"
        );
    }

    #[test]
    fn near_uniform_occupancy() {
        // Long-run occupancy of the bounce model is near uniform: compare
        // the center cell to a border cell.
        let rd = RandomDirection::new(10.0, 1.0, 5, 15).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut s = rd.sample_initial(&mut rng);
        let mut grid = dg_stats::Grid2d::new(10.0, 4);
        for _ in 0..200 {
            rd.step_state(&mut s, &mut rng); // warm up
        }
        for _ in 0..60_000 {
            rd.step_state(&mut s, &mut rng);
            grid.push(s.pos.x, s.pos.y);
        }
        let center = grid.probability(1, 1)
            + grid.probability(1, 2)
            + grid.probability(2, 1)
            + grid.probability(2, 2);
        // Uniform would put 0.25 mass on the 4 central cells; allow slack
        // but rule out waypoint-grade center bias (which gives ~0.45).
        assert!((center - 0.25).abs() < 0.12, "center mass = {center}");
    }
}
