//! Planar geometry over the mobility square.

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dg_mobility::Point;
    /// let a = Point::new(0.0, 0.0);
    /// let b = Point::new(3.0, 4.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Clamps the point into the square `[0, side]²`.
    pub fn clamped(self, side: f64) -> Point {
        Point {
            x: self.x.clamp(0.0, side),
            y: self.y.clamp(0.0, side),
        }
    }

    /// Moves `step` units from `self` toward `target`, stopping exactly at
    /// the target if it is closer than `step`. Returns the new point and
    /// whether the target was reached.
    pub fn advance_toward(self, target: Point, step: f64) -> (Point, bool) {
        let d = self.distance(target);
        if d <= step {
            return (target, true);
        }
        let frac = step / d;
        (
            Point {
                x: self.x + (target.x - self.x) * frac,
                y: self.y + (target.y - self.y) * frac,
            },
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(a.distance(a), 0.0);
        assert_eq!(a.distance_sq(Point::new(4.0, 5.0)), 25.0);
        // Symmetry.
        let b = Point::new(-2.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn clamp() {
        let p = Point::new(-1.0, 11.0).clamped(10.0);
        assert_eq!(p, Point::new(0.0, 10.0));
    }

    #[test]
    fn advance_partial_and_arrival() {
        let a = Point::new(0.0, 0.0);
        let t = Point::new(10.0, 0.0);
        let (p, arrived) = a.advance_toward(t, 4.0);
        assert!(!arrived);
        assert!((p.x - 4.0).abs() < 1e-12);
        let (p, arrived) = p.advance_toward(t, 100.0);
        assert!(arrived);
        assert_eq!(p, t);
    }

    #[test]
    fn advance_zero_distance_target() {
        let a = Point::new(3.0, 3.0);
        let (p, arrived) = a.advance_toward(a, 1.0);
        assert!(arrived);
        assert_eq!(p, a);
    }
}
