//! Meeting-time estimation for random walks on mobility graphs.
//!
//! The flooding bound of Dimitriou–Nikoletseas–Spirakis (\[15\] in the
//! paper) charges the **meeting time** `T*` of two independent walks;
//! the paper's Corollary 6 charges the **mixing time** instead. On
//! k-augmented grids the meeting time stays `Ω(s log s)` while the mixing
//! time falls like `1/k²` — this module measures the former so experiment
//! T10 can exhibit the separation with data on both sides.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_graph::{Graph, NodeId};
use dg_stats::Summary;
use dynagraph::mix_seed;

/// Result of a meeting-time estimation.
#[derive(Debug, Clone)]
pub struct MeetingTimeEstimate {
    /// Summary over completed trials (rounds until co-location).
    pub rounds: Summary,
    /// Trials that hit the round cap without meeting.
    pub incomplete: usize,
}

/// Estimates the meeting time of two independent lazy random walks on
/// `graph`: both start at independent uniform nodes and walk (stay with
/// probability `laziness`, otherwise move to a uniform neighbour) until
/// they occupy the same node. Trials that start co-located count as 0.
///
/// # Panics
///
/// Panics if the graph is empty, has an isolated node (the walk would be
/// stuck), `laziness` is outside `[0, 1)`, or `trials == 0`.
///
/// # Examples
///
/// ```
/// use dg_graph::generators;
/// use dg_mobility::meeting::estimate_meeting_time;
///
/// let est = estimate_meeting_time(&generators::complete(8), 0.0, 100, 10_000, 7);
/// assert_eq!(est.incomplete, 0);
/// // On K8 two walkers co-locate within a few rounds on average.
/// assert!(est.rounds.mean() < 20.0);
/// ```
pub fn estimate_meeting_time(
    graph: &Graph,
    laziness: f64,
    trials: usize,
    max_rounds: u32,
    seed: u64,
) -> MeetingTimeEstimate {
    let n = graph.node_count();
    assert!(n > 0, "graph must be non-empty");
    assert!((0.0..1.0).contains(&laziness), "laziness must be in [0, 1)");
    assert!(trials > 0, "need at least one trial");
    for u in graph.nodes() {
        assert!(graph.degree(u) > 0, "graph has an isolated node");
    }
    let mut rounds = Summary::new();
    let mut incomplete = 0usize;
    for trial in 0..trials {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, trial as u64));
        let mut a = rng.gen_range(0..n) as NodeId;
        let mut b = rng.gen_range(0..n) as NodeId;
        let mut t = 0u32;
        let mut met = a == b;
        while !met && t < max_rounds {
            a = lazy_step(graph, a, laziness, &mut rng);
            b = lazy_step(graph, b, laziness, &mut rng);
            t += 1;
            met = a == b;
        }
        if met {
            rounds.push(t as f64);
        } else {
            incomplete += 1;
        }
    }
    MeetingTimeEstimate { rounds, incomplete }
}

fn lazy_step<R: Rng>(graph: &Graph, u: NodeId, laziness: f64, rng: &mut R) -> NodeId {
    if laziness > 0.0 && rng.gen_bool(laziness) {
        return u;
    }
    let neigh = graph.neighbors(u);
    neigh[rng.gen_range(0..neigh.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    #[test]
    fn complete_graph_meets_fast() {
        let est = estimate_meeting_time(&generators::complete(10), 0.2, 200, 10_000, 1);
        assert_eq!(est.incomplete, 0);
        assert!(est.rounds.mean() < 25.0, "mean = {}", est.rounds.mean());
    }

    #[test]
    fn cycle_meets_slower_as_it_grows() {
        let small = estimate_meeting_time(&generators::cycle(8), 0.25, 150, 100_000, 2);
        let large = estimate_meeting_time(&generators::cycle(32), 0.25, 150, 100_000, 2);
        assert_eq!(small.incomplete + large.incomplete, 0);
        assert!(
            large.rounds.mean() > 3.0 * small.rounds.mean(),
            "large {} vs small {}",
            large.rounds.mean(),
            small.rounds.mean()
        );
    }

    #[test]
    fn meeting_time_flat_in_k_while_mixing_falls() {
        // The paper's separation: on k-augmented grids the meeting time
        // barely moves with k while the exact mixing time collapses.
        let m = 8;
        let meet = |k: usize| {
            estimate_meeting_time(
                &generators::k_augmented_grid(m, m, k),
                0.25,
                150,
                1_000_000,
                3,
            )
            .rounds
            .mean()
        };
        let mix = |k: usize| {
            dg_markov::random_walk_chain(&generators::k_augmented_grid(m, m, k), 0.25)
                .unwrap()
                .mixing_time(0.25, 1 << 24)
                .unwrap() as f64
        };
        let (meet1, meet4) = (meet(1), meet(4));
        let (mix1, mix4) = (mix(1), mix(4));
        let meeting_drop = meet1 / meet4;
        let mixing_drop = mix1 / mix4;
        assert!(
            mixing_drop > 2.0 * meeting_drop,
            "mixing should collapse much faster: meeting {meet1}->{meet4}, mixing {mix1}->{mix4}"
        );
    }

    #[test]
    #[should_panic(expected = "isolated node")]
    fn isolated_node_rejected() {
        let g = dg_graph::GraphBuilder::new(2).build();
        let _ = estimate_meeting_time(&g, 0.0, 1, 10, 0);
    }
}
