//! Running a geometric mobility model as a dynamic graph.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dynagraph::{mix_seed, EdgeDelta, EvolvingGraph, Snapshot};

use crate::{CellList, MobilityError, Point};

/// A geometric mobility model: independent per-node dynamics over the
/// square `[0, side]²`.
///
/// This is the geometric specialization of
/// [`dynagraph::node_meg::NodeChain`]: states expose a position, and the
/// connection map is the disk `distance <= r` (handled by
/// [`GeometricMeg`] with a cell-list index rather than an all-pairs scan).
pub trait MobilityModel {
    /// Per-node state (position, destination, speed, trajectory phase...).
    type State: Clone + Send;

    /// Side length `L` of the mobility square.
    fn side(&self) -> f64;

    /// Samples a node's initial state.
    fn sample_initial(&self, rng: &mut SmallRng) -> Self::State;

    /// A deterministic worst-case initial state (used to probe positional
    /// mixing from the most biased start, e.g. parked in a corner).
    fn worst_initial(&self) -> Self::State;

    /// Advances one node one round.
    fn step_state(&self, state: &mut Self::State, rng: &mut SmallRng);

    /// The position encoded in a state.
    fn position(&self, state: &Self::State) -> Point;
}

/// A geometric node-MEG: `n` independent copies of a [`MobilityModel`]
/// with disk connection of radius `r`, built each round via a cell list.
///
/// # Examples
///
/// ```
/// use dg_mobility::{GeometricMeg, GridWalk};
/// use dynagraph::EvolvingGraph;
///
/// let model = GridWalk::new(16, 1).unwrap(); // 16x16 grid, 1 hop per round
/// let mut meg = GeometricMeg::new(model, 32, 1.0, 7).unwrap();
/// let snap = meg.step();
/// assert_eq!(snap.node_count(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct GeometricMeg<M: MobilityModel> {
    model: M,
    radius: f64,
    states: Vec<M::State>,
    positions: Vec<Point>,
    cells: CellList,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    prev_edges: Vec<(u32, u32)>,
    synced: bool,
}

impl<M: MobilityModel> GeometricMeg<M> {
    /// Creates a geometric MEG over `n` nodes with transmission radius
    /// `r`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] when `n < 2` or
    /// `r <= 0`.
    pub fn new(model: M, n: usize, radius: f64, seed: u64) -> Result<Self, MobilityError> {
        if n < 2 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "n",
                value: n as f64,
            });
        }
        if radius <= 0.0 || !radius.is_finite() {
            return Err(MobilityError::ParameterOutOfRange {
                name: "radius",
                value: radius,
            });
        }
        let side = model.side();
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0x6E0));
        let states: Vec<M::State> = (0..n).map(|_| model.sample_initial(&mut rng)).collect();
        let positions = states.iter().map(|s| model.position(s)).collect();
        Ok(GeometricMeg {
            model,
            radius,
            states,
            positions,
            cells: CellList::new(side, radius),
            rng,
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            prev_edges: Vec::new(),
            synced: false,
        })
    }

    /// Moves every node one round and regenerates the meeting pairs in
    /// `edge_buf` via the cell list (shared by both stepping paths).
    fn advance(&mut self) {
        for (s, p) in self.states.iter_mut().zip(self.positions.iter_mut()) {
            self.model.step_state(s, &mut self.rng);
            *p = self.model.position(s);
        }
        self.cells.rebuild(&self.positions);
        self.edge_buf.clear();
        let edges = &mut self.edge_buf;
        self.cells
            .for_each_pair_within(&self.positions, self.radius, |i, j| {
                edges.push((i, j));
            });
    }

    /// The transmission radius `r`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The mobility model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Current node positions (updated by each [`EvolvingGraph::step`]).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Current hidden states.
    pub fn states(&self) -> &[M::State] {
        &self.states
    }
}

impl<M: MobilityModel> EvolvingGraph for GeometricMeg<M> {
    fn node_count(&self) -> usize {
        self.states.len()
    }

    fn step(&mut self) -> &Snapshot {
        self.advance();
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        self.advance();
        // Sorting the pair list turns one merge pass against the
        // previous round into the meeting enter/leave event stream —
        // O(m log m) on the current meetings, no CSR materialization.
        self.edge_buf.sort_unstable();
        if self.synced {
            delta.record_transition(&self.prev_edges, &self.edge_buf);
        } else {
            delta.record_full(self.edge_buf.iter().copied());
            self.synced = true;
        }
        std::mem::swap(&mut self.prev_edges, &mut self.edge_buf);
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0x6E0));
        for s in &mut self.states {
            *s = self.model.sample_initial(&mut self.rng);
        }
        for (p, s) in self.positions.iter_mut().zip(self.states.iter()) {
            *p = self.model.position(s);
        }
        self.synced = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridWalk;

    #[test]
    fn snapshot_matches_naive_disk_graph() {
        let model = GridWalk::new(8, 1).unwrap();
        let mut meg = GeometricMeg::new(model, 24, 1.5, 3).unwrap();
        for _ in 0..10 {
            let snap = meg.step().clone();
            let pos = meg.positions().to_vec();
            // Naive disk graph over the same positions.
            let mut expected = Vec::new();
            for i in 0..pos.len() {
                for j in (i + 1)..pos.len() {
                    if pos[i].distance(pos[j]) <= 1.5 {
                        expected.push((i as u32, j as u32));
                    }
                }
            }
            let mut got: Vec<_> = snap.edges().collect();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn reset_reproducible() {
        let model = GridWalk::new(6, 1).unwrap();
        let mut meg = GeometricMeg::new(model, 10, 1.0, 0).unwrap();
        meg.reset(5);
        let a: Vec<_> = meg.step().edges().collect();
        meg.reset(5);
        let b: Vec<_> = meg.step().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_matches_fresh() {
        // The zero-rebuild reuse contract for the geometric MEG.
        dynagraph::assert_reset_matches_fresh(
            |seed| GeometricMeg::new(GridWalk::new(8, 1).unwrap(), 24, 1.5, seed).unwrap(),
            2,
            9,
            15,
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let model = GridWalk::new(6, 1).unwrap();
        assert!(GeometricMeg::new(model, 1, 1.0, 0).is_err());
        assert!(GeometricMeg::new(model, 10, 0.0, 0).is_err());
    }
}
