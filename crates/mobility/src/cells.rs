//! Cell-list spatial index for radius queries.
//!
//! Disk-graph snapshots need all pairs within distance `r`. Bucketing the
//! square into cells of side `>= r` reduces the candidate pairs to the
//! 3 × 3 cell neighbourhood of each point: `O(n + k)` per round for `k`
//! output pairs, instead of the `O(n²)` all-pairs scan.

use crate::Point;

/// A rebuildable cell list over the square `[0, side]²`.
///
/// # Examples
///
/// ```
/// use dg_mobility::{CellList, Point};
///
/// let pts = vec![Point::new(0.5, 0.5), Point::new(1.0, 0.5), Point::new(9.0, 9.0)];
/// let mut cells = CellList::new(10.0, 1.5);
/// cells.rebuild(&pts);
/// let mut pairs = Vec::new();
/// cells.for_each_pair_within(&pts, 1.5, |i, j| pairs.push((i, j)));
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct CellList {
    side: f64,
    cell_size: f64,
    grid: usize,
    /// Head of each cell's singly-linked bucket (`u32::MAX` = empty).
    heads: Vec<u32>,
    /// Next pointer per point.
    next: Vec<u32>,
}

const NIL: u32 = u32::MAX;

impl CellList {
    /// Creates a cell list for the square `[0, side]²` with cells of side
    /// at least `min_cell` (one cell minimum per axis).
    ///
    /// # Panics
    ///
    /// Panics unless `side > 0` and `min_cell > 0`.
    pub fn new(side: f64, min_cell: f64) -> Self {
        assert!(side > 0.0 && min_cell > 0.0, "invalid cell-list geometry");
        let grid = ((side / min_cell).floor() as usize).max(1);
        CellList {
            side,
            cell_size: side / grid as f64,
            grid,
            heads: vec![NIL; grid * grid],
            next: Vec::new(),
        }
    }

    /// Cells per axis.
    pub fn grid(&self) -> usize {
        self.grid
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x / self.cell_size) as usize).min(self.grid - 1);
        let cy = ((p.y / self.cell_size) as usize).min(self.grid - 1);
        (cx, cy)
    }

    /// Re-buckets all points (positions clamped into the square).
    pub fn rebuild(&mut self, points: &[Point]) {
        self.heads.fill(NIL);
        self.next.clear();
        self.next.resize(points.len(), NIL);
        for (i, &p) in points.iter().enumerate() {
            let p = p.clamped(self.side);
            let (cx, cy) = self.cell_of(p);
            let cell = cy * self.grid + cx;
            self.next[i] = self.heads[cell];
            self.heads[cell] = i as u32;
        }
    }

    /// Calls `f(i, j)` (with `i < j`) for every pair of points at
    /// Euclidean distance at most `r`. Requires `rebuild` to have been
    /// called with the same `points`.
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds the cell size times the neighbourhood reach
    /// (i.e. callers must construct the list with `min_cell >= r`).
    pub fn for_each_pair_within(&self, points: &[Point], r: f64, mut f: impl FnMut(u32, u32)) {
        assert!(
            r <= self.cell_size + 1e-12 || self.grid == 1,
            "radius {r} exceeds cell size {}",
            self.cell_size
        );
        let r_sq = r * r;
        for cy in 0..self.grid {
            for cx in 0..self.grid {
                let mut i = self.heads[cy * self.grid + cx];
                while i != NIL {
                    // Same cell: only j after i in the list to avoid dups.
                    let mut j = self.next[i as usize];
                    while j != NIL {
                        if points[i as usize].distance_sq(points[j as usize]) <= r_sq {
                            f(i.min(j), i.max(j));
                        }
                        j = self.next[j as usize];
                    }
                    // Forward half-neighbourhood: E, N, NE, NW.
                    for (dx, dy) in [(1isize, 0isize), (0, 1), (1, 1), (-1, 1)] {
                        let nx = cx as isize + dx;
                        let ny = cy as isize + dy;
                        if nx < 0 || ny < 0 || nx >= self.grid as isize || ny >= self.grid as isize
                        {
                            continue;
                        }
                        let mut j = self.heads[ny as usize * self.grid + nx as usize];
                        while j != NIL {
                            if points[i as usize].distance_sq(points[j as usize]) <= r_sq {
                                f(i.min(j), i.max(j));
                            }
                            j = self.next[j as usize];
                        }
                    }
                    i = self.next[i as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn naive_pairs(points: &[Point], r: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].distance(points[j]) <= r {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_random_points() {
        let mut rng = SmallRng::seed_from_u64(17);
        for &(n, side, r) in &[(50usize, 10.0, 1.0), (200, 25.0, 2.5), (10, 3.0, 3.0)] {
            let points: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
                .collect();
            let mut cells = CellList::new(side, r);
            cells.rebuild(&points);
            let mut got = Vec::new();
            cells.for_each_pair_within(&points, r, |i, j| got.push((i, j)));
            got.sort_unstable();
            got.dedup();
            let want = naive_pairs(&points, r);
            assert_eq!(got, want, "n={n} side={side} r={r}");
        }
    }

    #[test]
    fn no_pairs_when_far() {
        let points = vec![Point::new(0.0, 0.0), Point::new(9.0, 9.0)];
        let mut cells = CellList::new(10.0, 2.0);
        cells.rebuild(&points);
        let mut count = 0;
        cells.for_each_pair_within(&points, 2.0, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn boundary_points_bucketed() {
        // Points exactly on the far boundary must land in the last cell.
        let points = vec![Point::new(10.0, 10.0), Point::new(9.5, 9.5)];
        let mut cells = CellList::new(10.0, 1.0);
        cells.rebuild(&points);
        let mut count = 0;
        cells.for_each_pair_within(&points, 1.0, |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn single_cell_grid() {
        let points = vec![Point::new(0.1, 0.1), Point::new(0.2, 0.2)];
        let mut cells = CellList::new(1.0, 5.0); // min_cell > side: one cell
        assert_eq!(cells.grid(), 1);
        cells.rebuild(&points);
        let mut count = 0;
        cells.for_each_pair_within(&points, 0.5, |_, _| count += 1);
        assert_eq!(count, 1);
    }
}
