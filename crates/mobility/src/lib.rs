//! Geometric and graph mobility models — §4.1 of
//! Clementi–Silvestri–Trevisan (PODC 2012).
//!
//! Every model here is a node-MEG: nodes evolve independently, and
//! adjacency is a deterministic function of the two states. Geometric
//! models connect nodes within Euclidean distance `r` over a square of
//! side `L`; graph models connect nodes at the same point of a mobility
//! graph `H(V, A)`.
//!
//! * [`GridWalk`] — the **random walk model**: nodes walk on an `m × m`
//!   grid (`ρ` hops per round), disk connection of radius `r`;
//! * [`RandomWaypoint`] — the classic waypoint model (uniform destination,
//!   speed in `[v_min, v_max]`), the paper's headline application, plus the
//!   [`ManhattanWaypoint`] variant of \[13\] and the bouncing
//!   [`RandomDirection`] model as further random-trip instances;
//! * [`GeometricMeg`] — runs any [`MobilityModel`] as an
//!   [`dynagraph::EvolvingGraph`] using a cell-list spatial index
//!   (`O(n + |E_t|)` per round instead of `O(n²)`);
//! * [`positional`] — occupancy estimation, the analytic waypoint density,
//!   empirical positional mixing times, and the (δ, λ)-uniformity
//!   extraction of Corollary 4;
//! * [`PathFamily`] / [`RandomPathModel`] — the **random paths on graphs**
//!   model of Corollary 5, with simplicity/reversibility/δ-regularity
//!   checks and the grid L-path and all-edges (= random walk) families;
//! * [`region`] — random trip over arbitrary convex regions (disk,
//!   rectangle): Corollary 4's full `R ⊆ R^d` generality;
//! * [`meeting`] — meeting times of two walks, the quantity behind the
//!   competing bound of \[15\].
//!
//! # Examples
//!
//! ```
//! use dg_mobility::{GeometricMeg, RandomWaypoint};
//! use dynagraph::{flooding, EvolvingGraph};
//!
//! // 64 nodes over a 10x10 square, radius 2, speeds in [0.5, 1.0].
//! let model = RandomWaypoint::new(10.0, 0.5, 1.0).unwrap();
//! let mut meg = GeometricMeg::new(model, 64, 2.0, 42).unwrap();
//! meg.warm_up(200); // approach the stationary (center-biased) regime
//! let run = flooding::flood(&mut meg, 0, 100_000);
//! assert!(run.flooding_time().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod direction;
mod error;
mod geom;
pub mod meeting;
mod meg;
mod path_model;
pub mod paths;
pub mod positional;
pub mod region;
mod walk;
mod waypoint;

pub use cells::CellList;
pub use direction::RandomDirection;
pub use error::MobilityError;
pub use geom::Point;
pub use meg::{GeometricMeg, MobilityModel};
pub use path_model::RandomPathModel;
pub use paths::PathFamily;
pub use walk::GridWalk;
pub use waypoint::{waypoint_density, ManhattanWaypoint, RandomWaypoint, WaypointState};
