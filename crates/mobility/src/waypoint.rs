//! The random waypoint model (§4.1) and its Manhattan variant \[13\].

use rand::rngs::SmallRng;
use rand::Rng;

use crate::{MobilityError, MobilityModel, Point};

/// State of a waypoint node: where it is, where it is heading, how fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointState {
    /// Current position.
    pub pos: Point,
    /// Current destination ("waypoint").
    pub dest: Point,
    /// Speed in distance units per round.
    pub speed: f64,
}

/// The standard random waypoint model over a square of side `L`: each
/// node repeatedly picks a uniform destination and a uniform speed in
/// `[v_min, v_max]`, then travels in a straight line.
///
/// The stationary positional distribution is famously *non-uniform* —
/// biased toward the center of the square (see [`waypoint_density`]); the
/// paper's Corollary 4 absorbs this bias into the (δ, λ) constants. The
/// mixing time is `Θ(L / v_max)` (with `v_max = O(v_min)`).
///
/// Initialization is uniform-position (not stationary); warm the process
/// up for a few multiples of `L / v_max` rounds before measuring.
///
/// # Examples
///
/// ```
/// use dg_mobility::{MobilityModel, RandomWaypoint};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let wp = RandomWaypoint::new(100.0, 1.0, 2.0).unwrap();
/// let mut rng = SmallRng::seed_from_u64(3);
/// let mut s = wp.sample_initial(&mut rng);
/// for _ in 0..1000 {
///     wp.step_state(&mut s, &mut rng);
///     let p = wp.position(&s);
///     assert!(p.x >= 0.0 && p.x <= 100.0 && p.y >= 0.0 && p.y <= 100.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    side: f64,
    vmin: f64,
    vmax: f64,
}

impl RandomWaypoint {
    /// Creates the model over `[0, side]²` with speeds uniform in
    /// `[vmin, vmax]`.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] unless
    /// `0 < vmin <= vmax` and `side > 0`.
    pub fn new(side: f64, vmin: f64, vmax: f64) -> Result<Self, MobilityError> {
        if !side.is_finite() || side <= 0.0 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "side",
                value: side,
            });
        }
        if !vmin.is_finite() || !vmax.is_finite() || vmin <= 0.0 || vmax < vmin {
            return Err(MobilityError::ParameterOutOfRange {
                name: "vmin/vmax",
                value: vmin,
            });
        }
        Ok(RandomWaypoint { side, vmin, vmax })
    }

    /// Maximum speed `v_max`.
    pub fn vmax(&self) -> f64 {
        self.vmax
    }

    /// Minimum speed `v_min`.
    pub fn vmin(&self) -> f64 {
        self.vmin
    }

    /// The `Θ(L / v_max)` mixing-time scale of the model \[1, 29\].
    pub fn mixing_scale(&self) -> f64 {
        self.side / self.vmax
    }

    fn sample_point(&self, rng: &mut SmallRng) -> Point {
        Point::new(rng.gen::<f64>() * self.side, rng.gen::<f64>() * self.side)
    }

    fn sample_speed(&self, rng: &mut SmallRng) -> f64 {
        if self.vmin == self.vmax {
            self.vmin
        } else {
            rng.gen_range(self.vmin..self.vmax)
        }
    }
}

impl MobilityModel for RandomWaypoint {
    type State = WaypointState;

    fn side(&self) -> f64 {
        self.side
    }

    fn sample_initial(&self, rng: &mut SmallRng) -> WaypointState {
        WaypointState {
            pos: self.sample_point(rng),
            dest: self.sample_point(rng),
            speed: self.sample_speed(rng),
        }
    }

    fn worst_initial(&self) -> WaypointState {
        // Parked in the corner, heading to the corner: the first step
        // draws a fresh leg, so this is the most biased legal start.
        WaypointState {
            pos: Point::new(0.0, 0.0),
            dest: Point::new(0.0, 0.0),
            speed: self.vmin,
        }
    }

    fn step_state(&self, state: &mut WaypointState, rng: &mut SmallRng) {
        let (pos, arrived) = state.pos.advance_toward(state.dest, state.speed);
        state.pos = pos;
        if arrived {
            state.dest = self.sample_point(rng);
            state.speed = self.sample_speed(rng);
        }
    }

    fn position(&self, state: &WaypointState) -> Point {
        state.pos
    }
}

/// The Manhattan-path waypoint variant analyzed in \[13\]: nodes choose a
/// uniform destination but travel axis-aligned — first horizontally, then
/// vertically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManhattanWaypoint {
    inner: RandomWaypoint,
}

impl ManhattanWaypoint {
    /// Creates the model (same parameters as [`RandomWaypoint::new`]).
    ///
    /// # Errors
    ///
    /// Same as [`RandomWaypoint::new`].
    pub fn new(side: f64, vmin: f64, vmax: f64) -> Result<Self, MobilityError> {
        Ok(ManhattanWaypoint {
            inner: RandomWaypoint::new(side, vmin, vmax)?,
        })
    }
}

impl MobilityModel for ManhattanWaypoint {
    type State = WaypointState;

    fn side(&self) -> f64 {
        self.inner.side
    }

    fn sample_initial(&self, rng: &mut SmallRng) -> WaypointState {
        self.inner.sample_initial(rng)
    }

    fn worst_initial(&self) -> WaypointState {
        self.inner.worst_initial()
    }

    fn step_state(&self, state: &mut WaypointState, rng: &mut SmallRng) {
        // Leg 1: match x coordinate; leg 2: match y.
        let intermediate = Point::new(state.dest.x, state.pos.y);
        let target = if (state.pos.x - state.dest.x).abs() > 1e-12 {
            intermediate
        } else {
            state.dest
        };
        let (pos, reached) = state.pos.advance_toward(target, state.speed);
        state.pos = pos;
        if reached && pos.distance(state.dest) < 1e-12 {
            state.dest = self.inner.sample_point(rng);
            state.speed = self.inner.sample_speed(rng);
        }
    }

    fn position(&self, state: &WaypointState) -> Point {
        state.pos
    }
}

/// Bettstetter's product-form approximation of the stationary positional
/// density of the random waypoint over a square of side `L`:
/// `f(x, y) ≈ 36 · x(L−x) · y(L−y) / L⁶` — maximal at the center,
/// vanishing at the border.
///
/// The exact density (Le Boudec \[25\], via Palm calculus) differs in the
/// constants but shares the center bias; the approximation is all the
/// (δ, λ) conditions of Corollary 4 need.
///
/// # Examples
///
/// ```
/// use dg_mobility::waypoint_density;
/// let center = waypoint_density(5.0, 5.0, 10.0);
/// let corner = waypoint_density(0.5, 0.5, 10.0);
/// assert!(center > 4.0 * corner);
/// ```
pub fn waypoint_density(x: f64, y: f64, side: f64) -> f64 {
    assert!(side > 0.0, "side must be positive");
    let x = x.clamp(0.0, side);
    let y = y.clamp(0.0, side);
    36.0 * x * (side - x) * y * (side - y) / side.powi(6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_validated() {
        assert!(RandomWaypoint::new(0.0, 1.0, 1.0).is_err());
        assert!(RandomWaypoint::new(10.0, 0.0, 1.0).is_err());
        assert!(RandomWaypoint::new(10.0, 2.0, 1.0).is_err());
        assert!(RandomWaypoint::new(10.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn moves_at_most_speed_per_round() {
        let wp = RandomWaypoint::new(50.0, 1.0, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = wp.sample_initial(&mut rng);
        for _ in 0..500 {
            let before = s.pos;
            wp.step_state(&mut s, &mut rng);
            assert!(before.distance(s.pos) <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn eventually_repicks_destination() {
        let wp = RandomWaypoint::new(10.0, 5.0, 5.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut s = wp.sample_initial(&mut rng);
        let first_dest = s.dest;
        let mut changed = false;
        for _ in 0..100 {
            wp.step_state(&mut s, &mut rng);
            if s.dest.distance(first_dest) > 1e-12 {
                changed = true;
                break;
            }
        }
        assert!(changed, "destination never renewed");
    }

    #[test]
    fn manhattan_moves_axis_aligned() {
        let mw = ManhattanWaypoint::new(20.0, 1.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let mut s = mw.sample_initial(&mut rng);
        for _ in 0..300 {
            let before = s.pos;
            mw.step_state(&mut s, &mut rng);
            let dx = (s.pos.x - before.x).abs();
            let dy = (s.pos.y - before.y).abs();
            // Every move is along one axis only (within a leg).
            assert!(dx < 1e-9 || dy < 1e-9, "diagonal move: dx={dx} dy={dy}");
        }
    }

    #[test]
    fn density_properties() {
        let l = 10.0;
        // Integrates to ~1 by construction (product of 1-D densities).
        let cells = 100;
        let w = l / cells as f64;
        let mut total = 0.0;
        for i in 0..cells {
            for j in 0..cells {
                total += waypoint_density((i as f64 + 0.5) * w, (j as f64 + 0.5) * w, l) * w * w;
            }
        }
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
        // Vanishes at the border, peaks at the center.
        assert_eq!(waypoint_density(0.0, 5.0, l), 0.0);
        let peak = waypoint_density(5.0, 5.0, l);
        assert!(peak > waypoint_density(2.0, 5.0, l));
        assert!((peak - 36.0 * 25.0 * 25.0 / l.powi(6) * 1.0).abs() < 1e-12);
    }
}
