//! Path families over mobility graphs — the random paths model (§4.1).
//!
//! A random-path model `RP = (H, P)` is specified by a graph `H(V, A)` and
//! a family `P` of feasible paths closed under chaining (every path's end
//! point starts some path). The paper's Corollary 5 needs three checkable
//! properties, all implemented here:
//!
//! * **simple** — no path revisits a point (start = end allowed);
//! * **reversible** — the reverse of every path is in the family;
//! * **δ-regular** — no point is a much busier crossroad than average:
//!   `#P(u) <= δ · (Σ_v #P(v)) / |V|` where `#P(u)` counts the paths
//!   *passing through* `u` (positions `2 ..= ℓ(h)` along a path).

use std::collections::HashSet;

use dg_graph::Graph;

use crate::MobilityError;

/// A validated family of feasible paths over a mobility graph.
///
/// # Examples
///
/// ```
/// use dg_graph::generators;
/// use dg_mobility::PathFamily;
///
/// // The all-edges family turns the random-path model into the plain
/// // random walk on H.
/// let h = generators::cycle(5);
/// let family = PathFamily::edges_family(&h).unwrap();
/// assert_eq!(family.path_count(), 10); // both directions of 5 edges
/// assert!(family.is_simple());
/// assert!(family.is_reversible());
/// assert!((family.delta_regularity().unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PathFamily {
    point_count: usize,
    paths: Vec<Vec<u32>>,
    starts: Vec<Vec<u32>>,
}

impl PathFamily {
    /// Validates and wraps a family of paths over `graph`.
    ///
    /// # Errors
    ///
    /// * [`MobilityError::Empty`] for an empty family;
    /// * [`MobilityError::PathTooShort`] for a path with fewer than two
    ///   points;
    /// * [`MobilityError::PathNotInGraph`] when consecutive points are not
    ///   adjacent in `graph`;
    /// * [`MobilityError::ChainingViolated`] when some path ends at a
    ///   point from which no path starts.
    pub fn new(graph: &Graph, paths: Vec<Vec<u32>>) -> Result<Self, MobilityError> {
        if paths.is_empty() {
            return Err(MobilityError::Empty);
        }
        let point_count = graph.node_count();
        let mut starts = vec![Vec::new(); point_count];
        for (idx, path) in paths.iter().enumerate() {
            if path.len() < 2 {
                return Err(MobilityError::PathTooShort { path: idx });
            }
            for w in path.windows(2) {
                if !graph.has_edge(w[0], w[1]) {
                    return Err(MobilityError::PathNotInGraph {
                        path: idx,
                        hop: (w[0], w[1]),
                    });
                }
            }
            starts[path[0] as usize].push(idx as u32);
        }
        // Chaining: every end point must start at least one path.
        for path in &paths {
            let end = *path.last().expect("validated length >= 2");
            if starts[end as usize].is_empty() {
                return Err(MobilityError::ChainingViolated { point: end });
            }
        }
        Ok(PathFamily {
            point_count,
            paths,
            starts,
        })
    }

    /// Number of points `|V|` of the mobility graph.
    pub fn point_count(&self) -> usize {
        self.point_count
    }

    /// Number of paths `|P|`.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The `idx`-th path.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn path(&self, idx: usize) -> &[u32] {
        &self.paths[idx]
    }

    /// Indices of the paths starting at point `u` (the set `P(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn starts_at(&self, u: u32) -> &[u32] {
        &self.starts[u as usize]
    }

    /// Total number of node-MEG states `|S| = Σ_h (ℓ(h) − 1)` (states are
    /// `(h, h_i)` for `2 <= i <= ℓ(h)`).
    pub fn state_count(&self) -> usize {
        self.paths.iter().map(|p| p.len() - 1).sum()
    }

    /// `true` if no path revisits a point (start may equal end — a cycle).
    pub fn is_simple(&self) -> bool {
        let mut seen: HashSet<u32> = HashSet::new();
        for path in &self.paths {
            seen.clear();
            let closes_cycle = path.first() == path.last() && path.len() > 2;
            let interior = if closes_cycle {
                &path[..path.len() - 1]
            } else {
                &path[..]
            };
            for &p in interior {
                if !seen.insert(p) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the reverse of every path belongs to the family.
    pub fn is_reversible(&self) -> bool {
        let set: HashSet<&[u32]> = self.paths.iter().map(|p| p.as_slice()).collect();
        self.paths.iter().all(|p| {
            let rev: Vec<u32> = p.iter().rev().copied().collect();
            set.contains(rev.as_slice())
        })
    }

    /// `#P(u)`: the number of paths *passing through* `u`, i.e. with
    /// `h_i = u` for some `2 <= i <= ℓ(h)` (the paper's congestion count;
    /// the start point is excluded).
    pub fn congestion(&self, u: u32) -> usize {
        self.congestions()[u as usize]
    }

    /// `#P(u)` for every point.
    pub fn congestions(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.point_count];
        for path in &self.paths {
            for &p in &path[1..] {
                counts[p as usize] += 1;
            }
        }
        counts
    }

    /// The δ-regularity constant: `max_u #P(u) / (Σ_v #P(v) / |V|)`.
    /// `None` when the average is zero.
    pub fn delta_regularity(&self) -> Option<f64> {
        let counts = self.congestions();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let avg = total as f64 / self.point_count as f64;
        let max = *counts.iter().max().expect("non-empty") as f64;
        Some(max / avg)
    }

    /// The all-edges family: both directions of every edge of `graph` as
    /// 2-point paths. The resulting random-path model *is* the random walk
    /// on `graph` (ρ = 1).
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::Empty`] for an edgeless graph, or
    /// [`MobilityError::ChainingViolated`] if some edge endpoint has
    /// degree 0 elsewhere (cannot happen for edges, so in practice only
    /// `Empty` occurs).
    pub fn edges_family(graph: &Graph) -> Result<Self, MobilityError> {
        let mut paths = Vec::with_capacity(graph.edge_count() * 2);
        for (u, v) in graph.edges() {
            paths.push(vec![u, v]);
            paths.push(vec![v, u]);
        }
        Self::new(graph, paths)
    }

    /// The grid L-path family on a `rows × cols` grid: for every ordered
    /// pair of distinct points, the row-first and the column-first
    /// staircase path (deduplicated when the pair shares a row or
    /// column). Simple, reversible, and O(1)-regular — the basic instance
    /// discussed after Corollary 5 ("H is a grid and the feasible paths
    /// are the shortest ones").
    ///
    /// Returns the grid graph alongside the family.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols < 2`.
    pub fn grid_l_paths(rows: usize, cols: usize) -> (Graph, Self) {
        assert!(rows * cols >= 2, "need at least two grid points");
        let graph = dg_graph::generators::grid(rows, cols);
        let idx = |r: usize, c: usize| dg_graph::generators::grid_index(rows, cols, r, c);
        let mut paths: Vec<Vec<u32>> = Vec::new();
        for r1 in 0..rows {
            for c1 in 0..cols {
                for r2 in 0..rows {
                    for c2 in 0..cols {
                        if r1 == r2 && c1 == c2 {
                            continue;
                        }
                        // Row-first: along row r1 to column c2, then along
                        // column c2 to row r2.
                        let mut row_first = Vec::new();
                        let mut c = c1 as isize;
                        let dc = if c2 >= c1 { 1 } else { -1 };
                        loop {
                            row_first.push(idx(r1, c as usize));
                            if c == c2 as isize {
                                break;
                            }
                            c += dc;
                        }
                        let mut r = r1 as isize;
                        let dr = if r2 >= r1 { 1 } else { -1 };
                        while r != r2 as isize {
                            r += dr;
                            row_first.push(idx(r as usize, c2));
                        }
                        // Column-first: along column c1, then row r2.
                        let mut col_first = Vec::new();
                        let mut r = r1 as isize;
                        loop {
                            col_first.push(idx(r as usize, c1));
                            if r == r2 as isize {
                                break;
                            }
                            r += dr;
                        }
                        let mut c = c1 as isize;
                        while c != c2 as isize {
                            c += dc;
                            col_first.push(idx(r2, c as usize));
                        }
                        let straight = r1 == r2 || c1 == c2;
                        paths.push(row_first);
                        if !straight {
                            paths.push(col_first);
                        }
                    }
                }
            }
        }
        let family = Self::new(&graph, paths).expect("L-paths are valid by construction");
        (graph, family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    #[test]
    fn validation_errors() {
        let g = generators::path(3);
        assert!(matches!(
            PathFamily::new(&g, vec![]),
            Err(MobilityError::Empty)
        ));
        assert!(matches!(
            PathFamily::new(&g, vec![vec![0]]),
            Err(MobilityError::PathTooShort { path: 0 })
        ));
        assert!(matches!(
            PathFamily::new(&g, vec![vec![0, 2]]),
            Err(MobilityError::PathNotInGraph { .. })
        ));
        // 0->1 ends at 1, but nothing starts at 1: chaining violated.
        assert!(matches!(
            PathFamily::new(&g, vec![vec![0, 1]]),
            Err(MobilityError::ChainingViolated { point: 1 })
        ));
    }

    #[test]
    fn edges_family_is_walk() {
        let g = generators::grid(3, 3);
        let f = PathFamily::edges_family(&g).unwrap();
        assert_eq!(f.path_count(), 2 * g.edge_count());
        assert!(f.is_simple());
        assert!(f.is_reversible());
        // #P(u) counts in-edges = degree: delta = max deg / avg deg = 2 / (24/9).
        let delta = f.delta_regularity().unwrap();
        assert!((delta - 4.0 / (24.0 / 9.0)).abs() < 1e-12);
        // Every point starts deg(u) paths.
        assert_eq!(f.starts_at(4).len(), 4);
        assert_eq!(f.state_count(), f.path_count());
    }

    #[test]
    fn grid_l_paths_valid_simple_reversible() {
        let (graph, f) = PathFamily::grid_l_paths(3, 3);
        assert_eq!(graph.node_count(), 9);
        assert!(f.is_simple());
        assert!(f.is_reversible());
        // Ordered pairs: 72; straight pairs share row (9*2=18... compute):
        // same-row ordered pairs: 3 rows * 3*2 = 18; same-col: 18; rest 36
        // get two paths each.
        assert_eq!(f.path_count(), 18 + 18 + 36 * 2);
        let delta = f.delta_regularity().unwrap();
        assert!(delta < 3.0, "delta = {delta}");
    }

    #[test]
    fn l_paths_congestion_center_heaviest() {
        let (_, f) = PathFamily::grid_l_paths(5, 5);
        let c = f.congestions();
        let center = c[dg_graph::generators::grid_index(5, 5, 2, 2) as usize];
        let corner = c[0];
        assert!(center > corner);
    }

    #[test]
    fn non_simple_family_detected() {
        let g = generators::cycle(4);
        // 0-1-2-3-0-1: revisits 0's neighbour 1? build 0,1,2,3,0 cycle:
        // simple cycle (start == end allowed).
        let cycle_path = vec![0u32, 1, 2, 3, 0];
        let mut paths = vec![cycle_path.clone()];
        // Chaining needs a path starting at 0: the cycle itself does.
        let f = PathFamily::new(&g, paths.clone()).unwrap();
        assert!(f.is_simple());
        // A path revisiting an interior point is not simple: 0,1,0,1? Not
        // edges... use 0,1,2,1 on the cycle graph.
        paths = vec![vec![0, 1, 2, 1], vec![1, 0], vec![0, 1]];
        let f = PathFamily::new(&g, paths).unwrap();
        assert!(!f.is_simple());
    }

    #[test]
    fn reversibility_detected() {
        let g = generators::path(3);
        let f = PathFamily::new(&g, vec![vec![0, 1], vec![1, 0], vec![1, 2], vec![2, 1]]).unwrap();
        assert!(f.is_reversible());
        let f2 =
            PathFamily::new(&g, vec![vec![0, 1, 2], vec![2, 1], vec![1, 0], vec![0, 1]]).unwrap();
        assert!(!f2.is_reversible());
    }
}
