//! Random trip over general regions — the full generality of Corollary 4.
//!
//! Corollary 4 is stated for a random trip over *any* bounded connected
//! region `R ⊆ R^d`, not just the square. This module provides waypoint
//! dynamics over an arbitrary **convex** region (straight legs between
//! waypoints stay inside a convex region), with destinations sampled by
//! rejection inside the region's bounding square, plus region-aware
//! (δ, λ) extraction.

use rand::rngs::SmallRng;
use rand::Rng;

use dg_stats::Grid2d;

use crate::positional::DeltaLambda;
use crate::waypoint::WaypointState;
use crate::{MobilityError, MobilityModel, Point};

/// A convex planar region inside the square `[0, side]²`.
///
/// Convexity is required so that straight waypoint legs stay inside the
/// region; implementations must guarantee it.
pub trait Region: Send + Sync {
    /// Side length of the bounding square.
    fn bounding_side(&self) -> f64;

    /// `true` if the point lies inside the region.
    fn contains(&self, p: Point) -> bool;

    /// A point guaranteed to lie inside the region (used as the
    /// worst-case initial position; pick one near the boundary).
    fn boundary_point(&self) -> Point;

    /// Area of the region (used for the `vol(R)` factor of Corollary 4).
    fn area(&self) -> f64;
}

/// The disk inscribed in the square `[0, side]²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    side: f64,
}

impl Disk {
    /// Creates the disk of diameter `side` centered at `(side/2, side/2)`.
    ///
    /// # Panics
    ///
    /// Panics unless `side > 0`.
    pub fn new(side: f64) -> Self {
        assert!(side > 0.0 && side.is_finite(), "invalid side");
        Disk { side }
    }

    fn radius(&self) -> f64 {
        self.side / 2.0
    }

    fn center(&self) -> Point {
        Point::new(self.side / 2.0, self.side / 2.0)
    }
}

impl Region for Disk {
    fn bounding_side(&self) -> f64 {
        self.side
    }

    fn contains(&self, p: Point) -> bool {
        p.distance(self.center()) <= self.radius()
    }

    fn boundary_point(&self) -> Point {
        Point::new(self.side / 2.0 - self.radius() + 1e-9, self.side / 2.0)
    }

    fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius() * self.radius()
    }
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` (a degenerate but
/// useful convex region for tests and for non-square aspect ratios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Creates the rectangle.
    ///
    /// # Panics
    ///
    /// Panics unless `x0 < x1`, `y0 < y1`, and all bounds are finite and
    /// non-negative.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite(),
            "bounds must be finite"
        );
        assert!(
            x0 >= 0.0 && y0 >= 0.0 && x0 < x1 && y0 < y1,
            "invalid rectangle"
        );
        Rect { x0, y0, x1, y1 }
    }
}

impl Region for Rect {
    fn bounding_side(&self) -> f64 {
        self.x1.max(self.y1)
    }

    fn contains(&self, p: Point) -> bool {
        (self.x0..=self.x1).contains(&p.x) && (self.y0..=self.y1).contains(&p.y)
    }

    fn boundary_point(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }
}

/// The random waypoint over an arbitrary convex [`Region`]: destinations
/// uniform in the region (rejection-sampled from the bounding square),
/// straight legs, speed uniform in `[v_min, v_max]`.
///
/// # Examples
///
/// ```
/// use dg_mobility::region::{Disk, RegionWaypoint};
/// use dg_mobility::MobilityModel;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let wp = RegionWaypoint::new(Disk::new(10.0), 1.0, 1.0).unwrap();
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut s = wp.sample_initial(&mut rng);
/// for _ in 0..500 {
///     wp.step_state(&mut s, &mut rng);
/// }
/// // The node never leaves the disk.
/// assert!(Disk::new(10.0).contains(wp.position(&s)));
/// # use dg_mobility::region::Region;
/// ```
#[derive(Debug, Clone)]
pub struct RegionWaypoint<R> {
    region: R,
    vmin: f64,
    vmax: f64,
}

impl<R: Region> RegionWaypoint<R> {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] unless
    /// `0 < vmin <= vmax`.
    pub fn new(region: R, vmin: f64, vmax: f64) -> Result<Self, MobilityError> {
        if !vmin.is_finite() || !vmax.is_finite() || vmin <= 0.0 || vmax < vmin {
            return Err(MobilityError::ParameterOutOfRange {
                name: "vmin/vmax",
                value: vmin,
            });
        }
        Ok(RegionWaypoint { region, vmin, vmax })
    }

    /// The region.
    pub fn region(&self) -> &R {
        &self.region
    }

    fn sample_in_region(&self, rng: &mut SmallRng) -> Point {
        let side = self.region.bounding_side();
        // Rejection sampling; convex regions inside their bounding square
        // have acceptance probability >= area / side², bounded away from 0.
        loop {
            let p = Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side);
            if self.region.contains(p) {
                return p;
            }
        }
    }

    fn sample_speed(&self, rng: &mut SmallRng) -> f64 {
        if self.vmin == self.vmax {
            self.vmin
        } else {
            rng.gen_range(self.vmin..self.vmax)
        }
    }
}

impl<R: Region> MobilityModel for RegionWaypoint<R> {
    type State = WaypointState;

    fn side(&self) -> f64 {
        self.region.bounding_side()
    }

    fn sample_initial(&self, rng: &mut SmallRng) -> WaypointState {
        WaypointState {
            pos: self.sample_in_region(rng),
            dest: self.sample_in_region(rng),
            speed: self.sample_speed(rng),
        }
    }

    fn worst_initial(&self) -> WaypointState {
        let p = self.region.boundary_point();
        WaypointState {
            pos: p,
            dest: p,
            speed: self.vmin,
        }
    }

    fn step_state(&self, state: &mut WaypointState, rng: &mut SmallRng) {
        let (pos, arrived) = state.pos.advance_toward(state.dest, state.speed);
        state.pos = pos;
        if arrived {
            state.dest = self.sample_in_region(rng);
            state.speed = self.sample_speed(rng);
        }
    }

    fn position(&self, state: &WaypointState) -> Point {
        state.pos
    }
}

/// Region-aware `(δ, λ)` extraction: like
/// [`crate::positional::estimate_delta_lambda`] but only scoring cells
/// whose center lies at depth `r` inside the region, and measuring
/// density relative to `1/area(R)` instead of the bounding square.
///
/// # Panics
///
/// Panics if the occupancy grid is empty or no cell center is `r`-deep in
/// the region.
pub fn estimate_delta_lambda_in_region<R: Region>(
    occupancy: &Grid2d,
    region: &R,
    r: f64,
) -> DeltaLambda {
    assert!(occupancy.total() > 0, "occupancy grid is empty");
    let cells = occupancy.cells();
    let side = region.bounding_side();
    let w = side / cells as f64;
    let cell_area = w * w;
    // Relative density w.r.t. the uniform density over the region.
    let uniform_mass = cell_area / region.area();
    let mut interior: Vec<f64> = Vec::new();
    let mut max_rel: f64 = 0.0;
    for cy in 0..cells {
        for cx in 0..cells {
            let center = Point::new((cx as f64 + 0.5) * w, (cy as f64 + 0.5) * w);
            if !region.contains(center) {
                continue;
            }
            let rel = occupancy.probability(cx, cy) / uniform_mass;
            max_rel = max_rel.max(rel);
            // Depth test: the whole r-disk around the center must fit.
            let deep = [(r, 0.0), (-r, 0.0), (0.0, r), (0.0, -r)]
                .iter()
                .all(|&(dx, dy)| region.contains(Point::new(center.x + dx, center.y + dy)));
            if deep {
                interior.push(rel);
            }
        }
    }
    assert!(!interior.is_empty(), "radius leaves no interior cells");
    interior.sort_by(|a, b| b.partial_cmp(a).expect("finite densities"));
    let keep = (interior.len() / 2).max(1);
    let min_rel_b = interior[keep - 1];
    let delta_b = if min_rel_b > 0.0 {
        1.0 / min_rel_b
    } else {
        f64::INFINITY
    };
    // lambda counts B relative to the region's cell count, approximated by
    // area(R)/cell_area.
    let region_cells = (region.area() / cell_area).max(1.0);
    DeltaLambda {
        delta: max_rel.max(delta_b).max(1.0),
        lambda: (keep as f64 / region_cells).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::positional;
    use rand::SeedableRng;

    #[test]
    fn disk_geometry() {
        let d = Disk::new(10.0);
        assert!(d.contains(Point::new(5.0, 5.0)));
        assert!(d.contains(Point::new(5.0, 0.1)));
        assert!(!d.contains(Point::new(0.5, 0.5))); // corner outside disk
        assert!(d.contains(d.boundary_point()));
        assert!((d.area() - std::f64::consts::PI * 25.0).abs() < 1e-9);
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(1.0, 2.0, 4.0, 3.0);
        assert!(r.contains(Point::new(2.0, 2.5)));
        assert!(!r.contains(Point::new(0.5, 2.5)));
        assert_eq!(r.area(), 3.0);
        assert!(r.contains(r.boundary_point()));
    }

    #[test]
    fn disk_waypoint_never_leaves_disk() {
        let disk = Disk::new(12.0);
        let wp = RegionWaypoint::new(disk, 1.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut s = wp.sample_initial(&mut rng);
        for _ in 0..3000 {
            wp.step_state(&mut s, &mut rng);
            assert!(
                disk.contains(wp.position(&s)),
                "left the disk at {:?}",
                wp.position(&s)
            );
        }
    }

    #[test]
    fn disk_waypoint_center_biased() {
        let disk = Disk::new(12.0);
        let wp = RegionWaypoint::new(disk, 1.0, 1.0).unwrap();
        let occ = positional::stationary_occupancy(&wp, 6, 1000, 60_000, 7);
        // Probability of the 4 central cells exceeds the uniform-over-disk
        // prediction: the waypoint bias survives the region change.
        let center: f64 = [(2, 2), (2, 3), (3, 2), (3, 3)]
            .iter()
            .map(|&(x, y)| occ.probability(x, y))
            .sum();
        let cell_area = (12.0 / 6.0) * (12.0 / 6.0);
        let uniform = 4.0 * cell_area / disk.area();
        assert!(
            center > 1.2 * uniform,
            "center {center} vs uniform {uniform}"
        );
    }

    #[test]
    fn region_delta_lambda_finite() {
        let disk = Disk::new(12.0);
        let wp = RegionWaypoint::new(disk, 1.0, 1.0).unwrap();
        let occ = positional::stationary_occupancy(&wp, 8, 1000, 80_000, 9);
        let dl = estimate_delta_lambda_in_region(&occ, &disk, 1.0);
        assert!(dl.delta >= 1.0 && dl.delta < 10.0, "delta = {}", dl.delta);
        assert!(
            dl.lambda > 0.05 && dl.lambda <= 1.0,
            "lambda = {}",
            dl.lambda
        );
    }

    #[test]
    fn invalid_speeds_rejected() {
        assert!(RegionWaypoint::new(Disk::new(5.0), 0.0, 1.0).is_err());
        assert!(RegionWaypoint::new(Disk::new(5.0), 2.0, 1.0).is_err());
    }
}
