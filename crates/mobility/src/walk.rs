//! The random walk mobility model over an `m × m` grid (§1, §4.1).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::{MobilityError, MobilityModel, Point};

/// The random walk model: nodes occupy the integer points of an `m × m`
/// grid (side length `m − 1`); each round a node performs `rho` hops, each
/// to a uniformly random 4-neighbour (staying put only at boundaries when
/// a hop is blocked).
///
/// Positions are the integer grid coordinates, so a transmission radius
/// `r = 1` connects exactly grid-adjacent nodes and `r = √2` adds
/// diagonals.
///
/// # Examples
///
/// ```
/// use dg_mobility::{GridWalk, MobilityModel};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let walk = GridWalk::new(8, 1).unwrap();
/// assert_eq!(walk.side(), 7.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut s = walk.sample_initial(&mut rng);
/// let before = walk.position(&s);
/// walk.step_state(&mut s, &mut rng);
/// let after = walk.position(&s);
/// assert!(before.distance(after) <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridWalk {
    m: usize,
    rho: usize,
}

/// Grid coordinates of a walking node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPos {
    /// Column in `0..m`.
    pub ix: u16,
    /// Row in `0..m`.
    pub iy: u16,
}

impl GridWalk {
    /// Creates a walk on the `m × m` grid with `rho` hops per round.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::ParameterOutOfRange`] when `m < 2` or
    /// `rho == 0`.
    pub fn new(m: usize, rho: usize) -> Result<Self, MobilityError> {
        if m < 2 || m > u16::MAX as usize {
            return Err(MobilityError::ParameterOutOfRange {
                name: "m",
                value: m as f64,
            });
        }
        if rho == 0 {
            return Err(MobilityError::ParameterOutOfRange {
                name: "rho",
                value: 0.0,
            });
        }
        Ok(GridWalk { m, rho })
    }

    /// Grid points per side.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Hops per round.
    pub fn rho(&self) -> usize {
        self.rho
    }
}

impl MobilityModel for GridWalk {
    type State = GridPos;

    fn side(&self) -> f64 {
        (self.m - 1) as f64
    }

    fn sample_initial(&self, rng: &mut SmallRng) -> GridPos {
        GridPos {
            ix: rng.gen_range(0..self.m) as u16,
            iy: rng.gen_range(0..self.m) as u16,
        }
    }

    fn worst_initial(&self) -> GridPos {
        GridPos { ix: 0, iy: 0 }
    }

    fn step_state(&self, state: &mut GridPos, rng: &mut SmallRng) {
        for _ in 0..self.rho {
            let dir = rng.gen_range(0..4u8);
            let (dx, dy): (i32, i32) = match dir {
                0 => (1, 0),
                1 => (-1, 0),
                2 => (0, 1),
                _ => (0, -1),
            };
            let nx = state.ix as i32 + dx;
            let ny = state.iy as i32 + dy;
            if nx >= 0 && ny >= 0 && (nx as usize) < self.m && (ny as usize) < self.m {
                state.ix = nx as u16;
                state.iy = ny as u16;
            }
        }
    }

    fn position(&self, state: &GridPos) -> Point {
        Point::new(state.ix as f64, state.iy as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stays_on_grid() {
        let walk = GridWalk::new(5, 3).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = walk.worst_initial();
        for _ in 0..1000 {
            walk.step_state(&mut s, &mut rng);
            assert!((s.ix as usize) < 5 && (s.iy as usize) < 5);
        }
    }

    #[test]
    fn rho_bounds_round_displacement() {
        let walk = GridWalk::new(20, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut s = walk.sample_initial(&mut rng);
        for _ in 0..200 {
            let before = walk.position(&s);
            walk.step_state(&mut s, &mut rng);
            let after = walk.position(&s);
            // Manhattan displacement per round is at most rho.
            let manhattan = (before.x - after.x).abs() + (before.y - after.y).abs();
            assert!(manhattan <= 4.0 + 1e-12);
        }
    }

    #[test]
    fn long_run_occupancy_covers_grid() {
        let walk = GridWalk::new(4, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut s = walk.worst_initial();
        let mut seen = [false; 16];
        for _ in 0..5000 {
            walk.step_state(&mut s, &mut rng);
            seen[s.iy as usize * 4 + s.ix as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "walk failed to cover the grid");
    }

    #[test]
    fn invalid_params() {
        assert!(GridWalk::new(1, 1).is_err());
        assert!(GridWalk::new(5, 0).is_err());
    }
}
