//! Error type for mobility model construction.

use core::fmt;

/// Errors from constructing mobility models and path families.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MobilityError {
    /// A numeric parameter was invalid.
    ParameterOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A path was shorter than two points.
    PathTooShort {
        /// Index of the offending path.
        path: usize,
    },
    /// A path used an edge absent from the mobility graph.
    PathNotInGraph {
        /// Index of the offending path.
        path: usize,
        /// The missing hop.
        hop: (u32, u32),
    },
    /// The family violates the chaining property: some path ends at a
    /// point from which no path starts.
    ChainingViolated {
        /// The dead-end point.
        point: u32,
    },
    /// The family is empty, or a dimension disagreed.
    Empty,
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::ParameterOutOfRange { name, value } => {
                write!(f, "parameter {name} = {value} out of range")
            }
            MobilityError::PathTooShort { path } => {
                write!(f, "path {path} has fewer than two points")
            }
            MobilityError::PathNotInGraph { path, hop } => {
                write!(f, "path {path} uses hop {:?} absent from the graph", hop)
            }
            MobilityError::ChainingViolated { point } => {
                write!(f, "no path starts at endpoint {point} (chaining property)")
            }
            MobilityError::Empty => write!(f, "empty path family"),
        }
    }
}

impl std::error::Error for MobilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            MobilityError::ParameterOutOfRange {
                name: "r",
                value: -1.0,
            },
            MobilityError::PathTooShort { path: 3 },
            MobilityError::PathNotInGraph {
                path: 1,
                hop: (0, 5),
            },
            MobilityError::ChainingViolated { point: 2 },
            MobilityError::Empty,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
