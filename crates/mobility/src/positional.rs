//! Positional-distribution analytics for geometric mobility models.
//!
//! The paper's Corollary 4 turns the β-independence condition into two
//! *uniformity conditions* on the stationary positional density `F_T`:
//!
//! * (a) `F_T(u) <= δ / vol(R)` everywhere;
//! * (b) some region `B` with `vol(B_r) >= λ · vol(R)` has
//!   `F_T(u) >= 1 / (δ · vol(R))` on it.
//!
//! This module estimates the positional distribution empirically
//! (occupancy grids), extracts empirical `(δ, λ)`, and measures the
//! *positional mixing time* — the TV-convergence of a worst-case-started
//! node's position to stationarity, which is the quantity the proofs
//! consume at epoch boundaries (Lemma 17).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dg_stats::Grid2d;
use dynagraph::mix_seed;

use crate::MobilityModel;

/// Long-run occupancy of a single node: `samples` positions recorded every
/// round after `warm_up` rounds — the empirical stationary positional
/// distribution.
///
/// # Examples
///
/// ```
/// use dg_mobility::{positional, RandomWaypoint};
///
/// let wp = RandomWaypoint::new(10.0, 1.0, 1.0).unwrap();
/// let occ = positional::stationary_occupancy(&wp, 4, 500, 20_000, 3);
/// // Waypoint center bias: central cells carry more mass than corners.
/// assert!(occ.probability(1, 1) > occ.probability(0, 0));
/// ```
pub fn stationary_occupancy<M: MobilityModel>(
    model: &M,
    cells: usize,
    warm_up: usize,
    samples: usize,
    seed: u64,
) -> Grid2d {
    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0x0CC0));
    let mut grid = Grid2d::new(model.side(), cells);
    let mut state = model.sample_initial(&mut rng);
    for _ in 0..warm_up {
        model.step_state(&mut state, &mut rng);
    }
    for _ in 0..samples {
        model.step_state(&mut state, &mut rng);
        let p = model.position(&state);
        grid.push(p.x, p.y);
    }
    grid
}

/// Ensemble occupancy at a fixed time: `replicas` independent nodes all
/// started from [`MobilityModel::worst_initial`], evolved `rounds` rounds,
/// final positions recorded. Converges to the stationary occupancy as
/// `rounds` grows — the basis of the positional mixing estimate.
pub fn ensemble_occupancy<M: MobilityModel>(
    model: &M,
    cells: usize,
    rounds: usize,
    replicas: usize,
    seed: u64,
) -> Grid2d {
    let mut grid = Grid2d::new(model.side(), cells);
    for rep in 0..replicas {
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0xE5E0 + rep as u64));
        let mut state = model.worst_initial();
        for _ in 0..rounds {
            model.step_state(&mut state, &mut rng);
        }
        let p = model.position(&state);
        grid.push(p.x, p.y);
    }
    grid
}

/// Result of a positional mixing measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionalMixing {
    /// First checkpoint (in rounds) where the TV distance dropped to
    /// `eps`.
    pub rounds: usize,
    /// The TV distance observed there.
    pub tv: f64,
}

/// Estimates the positional mixing time: evolves `replicas` worst-case
/// started replicas, and every `stride` rounds compares the replica
/// position histogram against `reference` (a stationary occupancy) in TV
/// distance. Returns the first checkpoint at or below `eps`, or `None` if
/// `max_rounds` is reached first.
///
/// Note the empirical TV has a positive floor of order
/// `√(cells²/replicas)`; choose `eps` above that floor.
pub fn positional_mixing_time<M: MobilityModel>(
    model: &M,
    reference: &Grid2d,
    eps: f64,
    replicas: usize,
    stride: usize,
    max_rounds: usize,
    seed: u64,
) -> Option<PositionalMixing> {
    assert!(stride > 0, "stride must be positive");
    let cells = reference.cells();
    let mut rngs: Vec<SmallRng> = (0..replicas)
        .map(|rep| SmallRng::seed_from_u64(mix_seed(seed, 0x31B0 + rep as u64)))
        .collect();
    let mut states: Vec<M::State> = (0..replicas).map(|_| model.worst_initial()).collect();
    let mut rounds = 0;
    while rounds < max_rounds {
        for _ in 0..stride {
            for (s, rng) in states.iter_mut().zip(rngs.iter_mut()) {
                model.step_state(s, rng);
            }
        }
        rounds += stride;
        let mut grid = Grid2d::new(model.side(), cells);
        for s in &states {
            let p = model.position(s);
            grid.push(p.x, p.y);
        }
        let tv = grid.tv_distance(reference);
        if tv <= eps {
            return Some(PositionalMixing { rounds, tv });
        }
    }
    None
}

/// Empirical `(δ, λ)` uniformity constants of Corollary 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaLambda {
    /// Density-uniformity constant δ (≥ 1).
    pub delta: f64,
    /// Volume fraction λ of the well-covered region `B`.
    pub lambda: f64,
}

/// Extracts empirical `(δ, λ)` from an occupancy grid.
///
/// Cells are scored by *relative density* (occupancy probability divided
/// by the uniform probability). Condition (a) fixes
/// `δ_a = max relative density`; for condition (b) we take `B` to be the
/// denser half of the cells whose `r`-disk stays inside the square, set
/// `δ_b = 1 / min relative density over B`, and report
/// `δ = max(δ_a, δ_b)`, `λ = |B| / #cells`.
///
/// # Panics
///
/// Panics if the grid is empty or `r` is too large for any interior cell
/// to exist.
pub fn estimate_delta_lambda(occupancy: &Grid2d, side: f64, r: f64) -> DeltaLambda {
    assert!(occupancy.total() > 0, "occupancy grid is empty");
    let cells = occupancy.cells();
    let w = side / cells as f64;
    // Cells whose r-disk stays inside the square: centers at distance >= r
    // from every wall.
    let margin = (r / w).ceil() as usize;
    assert!(
        2 * margin < cells,
        "radius {r} leaves no interior cells at this resolution"
    );
    let uniform = 1.0 / (cells * cells) as f64;
    let mut interior: Vec<f64> = Vec::new();
    let mut max_rel: f64 = 0.0;
    for cy in 0..cells {
        for cx in 0..cells {
            let rel = occupancy.probability(cx, cy) / uniform;
            max_rel = max_rel.max(rel);
            if cx >= margin && cx < cells - margin && cy >= margin && cy < cells - margin {
                interior.push(rel);
            }
        }
    }
    interior.sort_by(|a, b| b.partial_cmp(a).expect("finite densities"));
    let keep = (interior.len() / 2).max(1);
    let b_cells = &interior[..keep];
    let min_rel_b = *b_cells.last().expect("kept at least one cell");
    let delta_b = if min_rel_b > 0.0 {
        1.0 / min_rel_b
    } else {
        f64::INFINITY
    };
    DeltaLambda {
        delta: max_rel.max(delta_b).max(1.0),
        lambda: keep as f64 / (cells * cells) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridWalk, RandomDirection, RandomWaypoint};

    #[test]
    fn waypoint_center_bias_detected() {
        let wp = RandomWaypoint::new(10.0, 1.0, 1.0).unwrap();
        let occ = stationary_occupancy(&wp, 8, 500, 60_000, 1);
        let dl = estimate_delta_lambda(&occ, 10.0, 1.0);
        // Waypoint density peaks at 2.25x uniform (36/16): delta clearly
        // above 1.5, and a decent B exists.
        assert!(dl.delta > 1.5, "delta = {}", dl.delta);
        assert!(dl.lambda > 0.1, "lambda = {}", dl.lambda);
    }

    #[test]
    fn bounce_model_close_to_uniform() {
        let rd = RandomDirection::new(10.0, 1.0, 5, 15).unwrap();
        let occ = stationary_occupancy(&rd, 8, 500, 60_000, 2);
        let dl = estimate_delta_lambda(&occ, 10.0, 1.0);
        let wp = RandomWaypoint::new(10.0, 1.0, 1.0).unwrap();
        let occ_wp = stationary_occupancy(&wp, 8, 500, 60_000, 2);
        let dl_wp = estimate_delta_lambda(&occ_wp, 10.0, 1.0);
        assert!(
            dl.delta < dl_wp.delta,
            "bounce delta {} should undercut waypoint delta {}",
            dl.delta,
            dl_wp.delta
        );
    }

    #[test]
    fn ensemble_converges_to_stationary() {
        let walk = GridWalk::new(8, 1).unwrap();
        let reference = stationary_occupancy(&walk, 4, 500, 40_000, 3);
        let early = ensemble_occupancy(&walk, 4, 1, 2000, 4);
        let late = ensemble_occupancy(&walk, 4, 300, 2000, 4);
        let tv_early = early.tv_distance(&reference);
        let tv_late = late.tv_distance(&reference);
        assert!(
            tv_late < tv_early,
            "tv should shrink: early {tv_early}, late {tv_late}"
        );
        assert!(tv_late < 0.1, "tv_late = {tv_late}");
    }

    #[test]
    fn mixing_time_found_for_small_walk() {
        let walk = GridWalk::new(6, 1).unwrap();
        let reference = stationary_occupancy(&walk, 3, 500, 40_000, 5);
        let mix = positional_mixing_time(&walk, &reference, 0.08, 2000, 5, 2000, 6);
        let mix = mix.expect("walk on 6x6 grid mixes quickly");
        assert!(mix.rounds >= 5);
        assert!(mix.rounds <= 500, "rounds = {}", mix.rounds);
        assert!(mix.tv <= 0.08);
    }

    #[test]
    fn delta_lambda_uniform_grid_is_tight() {
        // A perfectly uniform synthetic occupancy gives delta ~ 1.
        let mut g = Grid2d::new(10.0, 8);
        for cy in 0..8 {
            for cx in 0..8 {
                for _ in 0..100 {
                    g.push(
                        (cx as f64 + 0.5) * 10.0 / 8.0,
                        (cy as f64 + 0.5) * 10.0 / 8.0,
                    );
                }
            }
        }
        let dl = estimate_delta_lambda(&g, 10.0, 1.0);
        assert!((dl.delta - 1.0).abs() < 1e-9);
        assert!(dl.lambda >= 0.25);
    }

    #[test]
    #[should_panic(expected = "no interior cells")]
    fn huge_radius_panics() {
        let mut g = Grid2d::new(10.0, 4);
        g.push(5.0, 5.0);
        let _ = estimate_delta_lambda(&g, 10.0, 6.0);
    }
}
