//! T4 — §4, Fact 2 + Theorem 3: exact node-MEG quantities vs measurement.
//!
//! Nodes follow a lazy random walk on a `k`-cycle of points; two nodes
//! connect when on the same point. For this finite chain we compute
//! `P_NM`, `P_NM²`, `η` and `T_mix` *exactly*, verify Fact 2 empirically
//! (edge probability is pair-independent), and compare measured flooding
//! with the Theorem 3 bound.

use dg_markov::DenseChain;
use dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg, NodeMegAnalysis};
use dynagraph::EvolvingGraph;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

fn lazy_cycle_chain(k: usize) -> DenseChain {
    let mut rows = vec![vec![0.0; k]; k];
    for (i, row) in rows.iter_mut().enumerate() {
        row[i] = 0.5;
        row[(i + 1) % k] += 0.25;
        row[(i + k - 1) % k] += 0.25;
    }
    DenseChain::from_rows(rows).unwrap()
}

pub fn run(quick: bool) {
    let n = if quick { 32 } else { 64 };
    let trials = scaled(20, quick);
    println!("model: node-MEG, lazy walk on k-cycle of points, same-point connection, n = {n}");

    let mut table = Table::new(vec![
        "k",
        "P_NM",
        "P_NM2",
        "eta",
        "Tmix(0.25)",
        "mean F",
        "p95 F",
        "Thm3 bound",
        "F/bound",
    ]);
    let ks: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    for &k in ks {
        let chain = lazy_cycle_chain(k);
        let conn = MatrixConnection::same_state(k);
        let analysis = NodeMegAnalysis::compute(&chain, &conn).unwrap();
        let tmix = chain.mixing_time(0.25, 1 << 22).unwrap();
        let bound = analysis.theorem3_bound(tmix as f64, n);
        let m = measure(
            |seed| {
                NodeMeg::new(
                    FiniteNodeChain::stationary_start(lazy_cycle_chain(k)).unwrap(),
                    MatrixConnection::same_state(k),
                    n,
                    seed,
                )
                .unwrap()
            },
            trials,
            200_000,
            0,
            0x75,
        );
        table.row(vec![
            k.to_string(),
            format!("{:.5}", analysis.pnm),
            format!("{:.6}", analysis.pnm2),
            format!("{:.3}", analysis.eta),
            tmix.to_string(),
            fmt(m.mean),
            fmt_opt(m.p95),
            fmt(bound),
            fmt(m.mean / bound),
        ]);
    }
    table.print();

    // Fact 2: empirical edge probability is the same for every pair.
    let k = 8;
    let mut meg = NodeMeg::new(
        FiniteNodeChain::stationary_start(lazy_cycle_chain(k)).unwrap(),
        MatrixConnection::same_state(k),
        8,
        99,
    )
    .unwrap();
    let rounds = scaled(20_000, quick);
    let probes: &[(u32, u32)] = &[(0, 1), (2, 5), (6, 7)];
    let mut hits = vec![0u32; probes.len()];
    for _ in 0..rounds {
        let snap = meg.step();
        for (h, &(a, b)) in hits.iter_mut().zip(probes) {
            if snap.has_edge(a, b) {
                *h += 1;
            }
        }
    }
    println!(
        "\nFact 2 check (P_NM = 1/k = {:.4}); empirical pair probabilities:",
        1.0 / k as f64
    );
    let mut t2 = Table::new(vec!["pair", "P(edge)"]);
    for (&(a, b), &h) in probes.iter().zip(&hits) {
        t2.row(vec![format!("({a},{b})"), fmt(h as f64 / rounds as f64)]);
    }
    t2.print();
    println!("shape check: eta ~ 1 for the uniform chain; measured F far below the (loose) Thm 3 bound; F grows with k via Tmix ~ k^2");
}
