//! T12 — §5: randomized transmission protocols as thinned flooding.
//!
//! The paper's conclusion reduces "transmit to a random subset of
//! neighbours" to flooding on a virtual dynamic graph with edges removed.
//! We compare plain flooding, γ-thinned flooding (each edge transmits
//! independently with probability γ), and the push-k protocol on the same
//! underlying processes — all through the same `Simulation` builder,
//! varying only the protocol/model axis.

use dg_edge_meg::TwoStateEdgeMeg;
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::engine::{PushGossip, Simulation};
use dynagraph::{EvolvingGraph, ThinnedEvolvingGraph};

use crate::common::scaled;
use crate::table::{fmt, Table};

fn thinned_mean<G: EvolvingGraph, F: Fn(u64) -> G + Sync>(
    make: F,
    gamma: f64,
    trials: usize,
    warm: usize,
    base: u64,
) -> f64 {
    Simulation::builder()
        .model(move |seed| ThinnedEvolvingGraph::new(make(seed), gamma, seed).unwrap())
        .trials(trials)
        .max_rounds(500_000)
        .warm_up(warm)
        .base_seed(base)
        .run()
        .mean()
}

fn push_mean<G: EvolvingGraph, F: Fn(u64) -> G + Sync>(
    make: F,
    fanout: usize,
    trials: usize,
    warm: usize,
    base: u64,
) -> f64 {
    Simulation::builder()
        .model(make)
        .protocol(PushGossip::new(fanout))
        .trials(trials)
        .max_rounds(500_000)
        .warm_up(warm)
        .base_seed(base)
        .run()
        .mean()
}

pub fn run(quick: bool) {
    let trials = scaled(16, quick);

    // Substrate 1: moderately dense edge-MEG.
    let n = if quick { 64 } else { 128 };
    let (p, q) = (0.05, 0.2);
    println!("substrate 1: edge-MEG(n={n}, p={p}, q={q})");
    let make_meg = |seed: u64| TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
    let mut table = Table::new(vec!["protocol", "mean rounds", "vs flooding"]);
    let flood_f = thinned_mean(make_meg, 1.0, trials, 0, 0x96);
    for &gamma in &[1.0, 0.5, 0.25] {
        let f = thinned_mean(make_meg, gamma, trials, 0, 0x96);
        table.row(vec![
            format!("thinned gamma={gamma}"),
            fmt(f),
            fmt(f / flood_f),
        ]);
    }
    for &k in &[1usize, 2, 4] {
        let f = push_mean(make_meg, k, trials, 0, 0x97);
        table.row(vec![format!("push-{k}"), fmt(f), fmt(f / flood_f)]);
    }
    table.print();

    // Substrate 2: random waypoint MANET.
    let n2 = if quick { 36 } else { 64 };
    let side = (n2 as f64).sqrt() * 1.2;
    let r = 1.5;
    println!("\nsubstrate 2: waypoint MANET (n={n2}, L={side:.1}, r={r})");
    let make_wp = |seed: u64| {
        GeometricMeg::new(RandomWaypoint::new(side, 1.0, 1.0).unwrap(), n2, r, seed).unwrap()
    };
    let warm = (8.0 * side) as usize;
    let mut t2 = Table::new(vec!["protocol", "mean rounds", "vs flooding"]);
    let flood2 = thinned_mean(make_wp, 1.0, trials, warm, 0x98);
    for &gamma in &[1.0, 0.5, 0.25] {
        let f = thinned_mean(make_wp, gamma, trials, warm, 0x98);
        t2.row(vec![
            format!("thinned gamma={gamma}"),
            fmt(f),
            fmt(f / flood2),
        ]);
    }
    for &k in &[1usize, 2] {
        let f = push_mean(make_wp, k, trials, warm, 0x99);
        t2.row(vec![format!("push-{k}"), fmt(f), fmt(f / flood2)]);
    }
    t2.print();
    println!(
        "shape check: gamma = 1 reproduces flooding exactly; smaller gamma / fanout slow the spread \
         by a bounded factor (the virtual graph is a MEG with alpha scaled by gamma, Thm 1 still applies)"
    );
}
