//! T12 — §5: randomized transmission protocols as thinned flooding.
//!
//! The paper's conclusion reduces "transmit to a random subset of
//! neighbours" to flooding on a virtual dynamic graph with edges removed.
//! We compare plain flooding, γ-thinned flooding (each edge transmits
//! independently with probability γ), and the push-k protocol on the same
//! underlying processes — each protocol family is one `Grid` axis, and
//! the adaptive scheduler decides per cell how many trials a tight mean
//! needs (slow sparse protocols are noisy and get more).

use dg_edge_meg::TwoStateEdgeMeg;
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::engine::{PushGossip, Simulation};
use dynagraph::sweep::{Axis, Cell, Grid, Sweep, SweepReport, Trial};
use dynagraph::{EvolvingGraph, ThinnedEvolvingGraph};

use crate::common::{budget, flood_trial, fmt_ci, FloodWorker};
use crate::table::{fmt, fmt_opt, Table};

/// γ-thinned flooding over a substrate: one cell per γ.
fn thinned_sweep<G: EvolvingGraph, F: Fn(u64) -> G + Sync + Copy>(
    make: F,
    quick: bool,
    warm: usize,
    base: u64,
) -> SweepReport {
    Sweep::over(Grid::new().axis(Axis::explicit("gamma", [1.0, 0.5, 0.25])))
        .budget(budget(quick))
        .base_seed(base)
        .run_with_state(FloodWorker::new, |cell: &Cell, trial: Trial, worker| {
            let gamma = cell.get("gamma");
            flood_trial(
                worker,
                move |seed| ThinnedEvolvingGraph::new(make(seed), gamma, seed).unwrap(),
                cell,
                500_000,
                warm,
                trial,
            )
        })
        .unwrap()
}

/// Push-k gossip over a substrate: one cell per fanout.
fn push_sweep<G: EvolvingGraph, F: Fn(u64) -> G + Sync + Copy>(
    make: F,
    fanouts: Vec<usize>,
    quick: bool,
    warm: usize,
    base: u64,
) -> SweepReport {
    Sweep::over(Grid::new().axis(Axis::ints("fanout", fanouts)))
        .budget(budget(quick))
        .base_seed(base)
        .run_with_state(FloodWorker::new, |cell: &Cell, trial: Trial, worker| {
            let fanout = cell.usize("fanout");
            let (slot, scratch) = worker.parts(cell.id());
            Simulation::builder()
                .model(make)
                .protocol(PushGossip::new(fanout))
                .max_rounds(500_000)
                .warm_up(warm)
                .base_seed(trial.cell_seed)
                .run_trial_with(trial.index, slot, scratch)
                .time
                .map(f64::from)
        })
        .unwrap()
}

/// Prints both protocol families against the γ = 1 flooding baseline.
fn print_tables(thinned: &SweepReport, push: &SweepReport) {
    let flood_mean = thinned.cell(0).mean().unwrap_or(f64::NAN);
    let mut table = Table::new(vec![
        "protocol",
        "mean rounds",
        "95% CI",
        "trials",
        "vs flooding",
    ]);
    for cell in thinned.cells() {
        let gamma = thinned.axis_value(cell, "gamma");
        table.row(vec![
            format!("thinned gamma={gamma}"),
            fmt_opt(cell.mean()),
            fmt_ci(cell),
            cell.trials().to_string(),
            fmt(cell.mean().unwrap_or(f64::NAN) / flood_mean),
        ]);
    }
    for cell in push.cells() {
        let k = push.axis_usize(cell, "fanout");
        table.row(vec![
            format!("push-{k}"),
            fmt_opt(cell.mean()),
            fmt_ci(cell),
            cell.trials().to_string(),
            fmt(cell.mean().unwrap_or(f64::NAN) / flood_mean),
        ]);
    }
    table.print();
}

pub fn run(quick: bool) {
    // Substrate 1: moderately dense edge-MEG.
    let n = if quick { 64 } else { 128 };
    let (p, q) = (0.05, 0.2);
    println!("substrate 1: edge-MEG(n={n}, p={p}, q={q})");
    let make_meg = move |seed: u64| TwoStateEdgeMeg::stationary(n, p, q, seed).unwrap();
    let thinned = thinned_sweep(make_meg, quick, 0, 0x96);
    let push = push_sweep(make_meg, vec![1, 2, 4], quick, 0, 0x97);
    print_tables(&thinned, &push);

    // Substrate 2: random waypoint MANET.
    let n2 = if quick { 36 } else { 64 };
    let side = (n2 as f64).sqrt() * 1.2;
    let r = 1.5;
    println!("\nsubstrate 2: waypoint MANET (n={n2}, L={side:.1}, r={r})");
    let make_wp = move |seed: u64| {
        GeometricMeg::new(RandomWaypoint::new(side, 1.0, 1.0).unwrap(), n2, r, seed).unwrap()
    };
    let warm = (8.0 * side) as usize;
    let thinned2 = thinned_sweep(make_wp, quick, warm, 0x98);
    let push2 = push_sweep(make_wp, vec![1, 2], quick, warm, 0x99);
    print_tables(&thinned2, &push2);
    println!(
        "shape check: gamma = 1 reproduces flooding exactly; smaller gamma / fanout slow the spread \
         by a bounded factor (the virtual graph is a MEG with alpha scaled by gamma, Thm 1 still applies)"
    );
}
