//! T7 — §4.1 headline: sparse waypoint flooding is `Õ(√n / v_max)`.
//!
//! The paper's flagship instantiation: `L ~ √n`, `r = Θ(1)`, `r = O(v)`,
//! where every snapshot is sparse and highly disconnected, yet flooding
//! completes in `O(√n/v · log³ n)` — almost matching the trivial
//! `Ω(√n/v)` lower bound. We sweep `n` with `L = √n` and fit the log-log
//! slope of F vs n (prediction: ≈ 0.5), and report snapshot disconnection
//! to confirm the regime. A resolution ablation (footnote 3) reruns one
//! configuration at doubled radius granularity.

use dg_mobility::{GeometricMeg, RandomWaypoint};
use dg_stats::log_log_fit;
use dynagraph::theory;
use dynagraph::EvolvingGraph;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(16, quick);
    let v = 1.0;
    let r = 1.0;
    println!("sparse regime: L = sqrt(n), r = {r}, v = {v}; flooding from a stationary start");

    let ns: &[usize] = if quick {
        &[64, 144, 256]
    } else {
        &[64, 144, 256, 400, 576]
    };
    let mut table = Table::new(vec![
        "n",
        "L",
        "mean F",
        "p95 F",
        "sqrt(n)/v",
        "bound",
        "F/sqrt(n)",
        "disconn",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let side = (n as f64).sqrt();
        let warm = (8.0 * side / v) as usize;
        let m = measure(
            |seed| GeometricMeg::new(RandomWaypoint::new(side, v, v).unwrap(), n, r, seed).unwrap(),
            trials,
            200_000,
            warm,
            0x84,
        );
        // Disconnection of individual snapshots (largest component share).
        let mut g =
            GeometricMeg::new(RandomWaypoint::new(side, v, v).unwrap(), n, r, 0x85).unwrap();
        g.warm_up(warm);
        let mut disconnected = 0usize;
        let probes = 50;
        for _ in 0..probes {
            let snap = g.step();
            let graph = snap.to_graph();
            if dg_graph::traversal::largest_component_size(&graph) < n {
                disconnected += 1;
            }
        }
        let lower = theory::waypoint_sparse_lower_bound(n, v);
        let bound = theory::waypoint_sparse_bound(n, v);
        table.row(vec![
            n.to_string(),
            fmt(side),
            fmt(m.mean),
            fmt_opt(m.p95),
            fmt(lower),
            fmt(bound),
            fmt(m.mean / lower),
            format!("{disconnected}/{probes}"),
        ]);
        xs.push(n as f64);
        ys.push(m.mean);
    }
    table.print();
    if let Some(fit) = log_log_fit(&xs, &ys) {
        println!(
            "log-log slope of F vs n: {:.3} (r2 = {:.3}) — paper predicts ~0.5 (F = Õ(sqrt(n)))",
            fit.slope, fit.r2
        );
    }

    // Footnote 3 ablation: the discretization/geometry resolution must not
    // change the answer. Here we halve the speed and double time (same
    // physical trajectory sampled twice as finely): F in *physical time*
    // units (rounds * v) should be ~2x rounds, i.e. same physical time.
    let n = if quick { 144 } else { 256 };
    let side = (n as f64).sqrt();
    let fine_v = 0.5;
    let coarse = measure(
        |seed| GeometricMeg::new(RandomWaypoint::new(side, v, v).unwrap(), n, r, seed).unwrap(),
        trials,
        200_000,
        (8.0 * side) as usize,
        0x86,
    );
    let fine = measure(
        |seed| {
            GeometricMeg::new(
                RandomWaypoint::new(side, fine_v, fine_v).unwrap(),
                n,
                r,
                seed,
            )
            .unwrap()
        },
        trials,
        400_000,
        (16.0 * side) as usize,
        0x87,
    );
    println!(
        "\nresolution ablation (footnote 3): F(v=1) = {:.1} rounds vs F(v=0.5) = {:.1} rounds; \
         physical-time ratio = {:.2} (≈1 expected, finer time steps don't change physical flooding time)",
        coarse.mean,
        fine.mean,
        fine.mean * fine_v / (coarse.mean * v)
    );
}
