//! T1 — Lemmas 13–14: the two-phase structure of flooding.
//!
//! On a sparse stationary edge-MEG we record the growth curve `|I_t|` and
//! extract (i) the doubling rounds of the spreading phase — Lemma 13
//! predicts bounded gaps between consecutive doublings while
//! `|I_t| <= n/2` — and (ii) the saturation tail — Lemma 14 predicts it is
//! shorter than the whole spreading phase by a `log n` factor.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_stats::Summary;
use dynagraph::analysis::GrowthCurve;
use dynagraph::flooding::flood;
use dynagraph::mix_seed;

use crate::common::scaled;
use crate::table::{fmt, Table};

pub fn run(quick: bool) {
    let n = if quick { 300 } else { 1000 };
    let p = 1.5 / n as f64;
    let q = 0.2;
    let trials = scaled(20, quick);
    println!("model: stationary edge-MEG, n={n}, p=1.5/n={p:.5}, q={q}");
    println!("alpha = p/(p+q) = {:.5} (avg degree ~ {:.2})", p / (p + q), (n - 1) as f64 * p / (p + q));

    let mut spreading = Summary::new();
    let mut saturation = Summary::new();
    let mut max_gap = Summary::new();
    let mut total = Summary::new();
    let mut example_curve: Option<GrowthCurve> = None;
    for t in 0..trials {
        let mut g = SparseTwoStateEdgeMeg::stationary(n, p, q, mix_seed(0x71, t as u64)).unwrap();
        let run = flood(&mut g, 0, 200_000);
        let curve = GrowthCurve::from_run(&run, n);
        if let (Some(se), Some(ct)) = (curve.spreading_phase_end(), curve.completion_time()) {
            spreading.push(se as f64);
            saturation.push((ct - se) as f64);
            total.push(ct as f64);
            if let Some(g) = curve.max_doubling_gap() {
                max_gap.push(g as f64);
            }
            if example_curve.is_none() {
                example_curve = Some(curve);
            }
        }
    }

    let mut table = Table::new(vec!["phase metric", "mean", "min", "max"]);
    table.row(vec![
        "flooding time F".to_string(),
        fmt(total.mean()),
        fmt(total.min()),
        fmt(total.max()),
    ]);
    table.row(vec![
        "spreading phase (|I| reaches n/2)".to_string(),
        fmt(spreading.mean()),
        fmt(spreading.min()),
        fmt(spreading.max()),
    ]);
    table.row(vec![
        "saturation tail".to_string(),
        fmt(saturation.mean()),
        fmt(saturation.min()),
        fmt(saturation.max()),
    ]);
    table.row(vec![
        "max doubling gap (Lemma 13)".to_string(),
        fmt(max_gap.mean()),
        fmt(max_gap.min()),
        fmt(max_gap.max()),
    ]);
    table.print();

    if let Some(curve) = example_curve {
        println!("\nexample growth curve (|I_t| at each doubling):");
        let rounds = curve.doubling_rounds();
        let mut t2 = Table::new(vec!["target |I|", "first round"]);
        let mut target = 2u64;
        for r in rounds {
            t2.row(vec![target.to_string(), r.to_string()]);
            target *= 2;
        }
        t2.print();
    }
    println!(
        "\nshape check: saturation tail ({:.1}) << spreading phase ({:.1}) as Lemmas 13-14 predict",
        saturation.mean(),
        spreading.mean()
    );
}
