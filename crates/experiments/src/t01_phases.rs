//! T1 — Lemmas 13–14: the two-phase structure of flooding.
//!
//! Two views of the same regime (sparse stationary edge-MEG):
//!
//! 1. a `Grid` sweep of the flooding time `F` over `n` — the adaptive
//!    scheduler decides per cell how many trials a tight mean needs, so
//!    the table carries honest 95% CIs instead of a hard-coded count;
//! 2. the per-round growth curve `|I_t|` streamed through the engine's
//!    `PhaseObserver` at the headline `n`, extracting (i) the doubling
//!    rounds of the spreading phase — Lemma 13 predicts bounded gaps
//!    between consecutive doublings while `|I_t| <= n/2` — and (ii) the
//!    saturation tail — Lemma 14 predicts it is shorter than the whole
//!    spreading phase by a `log n` factor.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_stats::Summary;
use dynagraph::engine::{PhaseObserver, Simulation};
use dynagraph::sweep::{Axis, Grid, Sweep};

use crate::common::{budget, flood_trial, fmt_ci, scaled, FloodWorker};
use crate::table::{fmt, fmt_opt, Table};

const Q: f64 = 0.2;

pub fn run(quick: bool) {
    let ns: Vec<usize> = if quick {
        vec![150, 300]
    } else {
        vec![250, 500, 1000]
    };
    let n_head = *ns.last().unwrap();
    println!("model: stationary edge-MEG, p=1.5/n, q={Q} (stationary density alpha = p/(p+q))");

    // View 1: flooding time vs n, one Grid instead of a hand loop.
    let grid = Grid::new().axis(Axis::ints("n", ns));
    let report = Sweep::over(grid)
        .budget(budget(quick))
        .base_seed(0x71)
        .run_with_state(FloodWorker::new, |cell, trial, worker| {
            let n = cell.usize("n");
            let p = 1.5 / n as f64;
            flood_trial(
                worker,
                move |seed| SparseTwoStateEdgeMeg::stationary(n, p, Q, seed).unwrap(),
                cell,
                200_000,
                0,
                trial,
            )
        })
        .unwrap();
    let mut table = Table::new(vec![
        "n",
        "mean F",
        "95% CI",
        "p95 F",
        "trials",
        "incomplete",
    ]);
    for cell in report.cells() {
        table.row(vec![
            report.axis_usize(cell, "n").to_string(),
            fmt_opt(cell.mean()),
            fmt_ci(cell),
            fmt_opt(cell.p95()),
            cell.trials().to_string(),
            cell.incomplete().to_string(),
        ]);
    }
    table.print();
    println!(
        "(adaptive budget: {} of {} possible trials ran; cells stop at a 5% relative CI)",
        report.total_trials(),
        report.cells().len() * report.budget().max_trials
    );

    // View 2: phase structure at the headline n.
    let n = n_head;
    let p = 1.5 / n as f64;
    let trials = scaled(20, quick);
    let (report, observers) = Simulation::builder()
        .model(|seed| SparseTwoStateEdgeMeg::stationary(n, p, Q, seed).unwrap())
        .trials(trials)
        .max_rounds(200_000)
        .base_seed(0x71)
        .observers(|_trial| PhaseObserver::new())
        .run_observed();
    // Fold the per-trial streaming observers in trial order.
    let mut spreading = Summary::new();
    let mut saturation = Summary::new();
    let mut max_gap = Summary::new();
    let mut total = Summary::new();
    let mut example_doubling: Option<Vec<u32>> = None;
    for obs in &observers {
        spreading.merge(obs.spreading());
        saturation.merge(obs.saturation());
        total.merge(obs.total());
        max_gap.merge(obs.max_doubling_gap());
        if example_doubling.is_none() {
            example_doubling = obs.example_doubling_rounds().map(<[u32]>::to_vec);
        }
    }
    if report.incomplete() > 0 {
        println!(
            "({} of {trials} trials hit the round cap)",
            report.incomplete()
        );
    }

    println!("\nphase structure at n={n}:");
    let mut table = Table::new(vec!["phase metric", "mean", "min", "max"]);
    table.row(vec![
        "flooding time F".to_string(),
        fmt(total.mean()),
        fmt(total.min()),
        fmt(total.max()),
    ]);
    table.row(vec![
        "spreading phase (|I| reaches n/2)".to_string(),
        fmt(spreading.mean()),
        fmt(spreading.min()),
        fmt(spreading.max()),
    ]);
    table.row(vec![
        "saturation tail".to_string(),
        fmt(saturation.mean()),
        fmt(saturation.min()),
        fmt(saturation.max()),
    ]);
    table.row(vec![
        "max doubling gap (Lemma 13)".to_string(),
        fmt(max_gap.mean()),
        fmt(max_gap.min()),
        fmt(max_gap.max()),
    ]);
    table.print();

    if let Some(rounds) = example_doubling {
        println!("\nexample growth curve (|I_t| at each doubling):");
        let mut t2 = Table::new(vec!["target |I|", "first round"]);
        let mut target = 2u64;
        for r in rounds {
            t2.row(vec![target.to_string(), r.to_string()]);
            target *= 2;
        }
        t2.print();
    }
    println!(
        "\nshape check: saturation tail ({:.1}) << spreading phase ({:.1}) as Lemmas 13-14 predict",
        saturation.mean(),
        spreading.mean()
    );
}
