//! T1 — Lemmas 13–14: the two-phase structure of flooding.
//!
//! On a sparse stationary edge-MEG we stream the growth curve `|I_t|`
//! through the engine's `PhaseObserver` and extract (i) the doubling
//! rounds of the spreading phase — Lemma 13 predicts bounded gaps between
//! consecutive doublings while `|I_t| <= n/2` — and (ii) the saturation
//! tail — Lemma 14 predicts it is shorter than the whole spreading phase
//! by a `log n` factor.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_stats::Summary;
use dynagraph::engine::{PhaseObserver, Simulation};

use crate::common::scaled;
use crate::table::{fmt, Table};

pub fn run(quick: bool) {
    let n = if quick { 300 } else { 1000 };
    let p = 1.5 / n as f64;
    let q = 0.2;
    let trials = scaled(20, quick);
    println!("model: stationary edge-MEG, n={n}, p=1.5/n={p:.5}, q={q}");
    println!(
        "alpha = p/(p+q) = {:.5} (avg degree ~ {:.2})",
        p / (p + q),
        (n - 1) as f64 * p / (p + q)
    );

    let (report, observers) = Simulation::builder()
        .model(|seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap())
        .trials(trials)
        .max_rounds(200_000)
        .base_seed(0x71)
        .observers(|_trial| PhaseObserver::new())
        .run_observed();
    // Fold the per-trial streaming observers in trial order.
    let mut spreading = Summary::new();
    let mut saturation = Summary::new();
    let mut max_gap = Summary::new();
    let mut total = Summary::new();
    let mut example_doubling: Option<Vec<u32>> = None;
    for obs in &observers {
        spreading.merge(obs.spreading());
        saturation.merge(obs.saturation());
        total.merge(obs.total());
        max_gap.merge(obs.max_doubling_gap());
        if example_doubling.is_none() {
            example_doubling = obs.example_doubling_rounds().map(<[u32]>::to_vec);
        }
    }
    if report.incomplete() > 0 {
        println!(
            "({} of {trials} trials hit the round cap)",
            report.incomplete()
        );
    }

    let mut table = Table::new(vec!["phase metric", "mean", "min", "max"]);
    table.row(vec![
        "flooding time F".to_string(),
        fmt(total.mean()),
        fmt(total.min()),
        fmt(total.max()),
    ]);
    table.row(vec![
        "spreading phase (|I| reaches n/2)".to_string(),
        fmt(spreading.mean()),
        fmt(spreading.min()),
        fmt(spreading.max()),
    ]);
    table.row(vec![
        "saturation tail".to_string(),
        fmt(saturation.mean()),
        fmt(saturation.min()),
        fmt(saturation.max()),
    ]);
    table.row(vec![
        "max doubling gap (Lemma 13)".to_string(),
        fmt(max_gap.mean()),
        fmt(max_gap.min()),
        fmt(max_gap.max()),
    ]);
    table.print();

    if let Some(rounds) = example_doubling {
        println!("\nexample growth curve (|I_t| at each doubling):");
        let mut t2 = Table::new(vec!["target |I|", "first round"]);
        let mut target = 2u64;
        for r in rounds {
            t2.row(vec![target.to_string(), r.to_string()]);
            target *= 2;
        }
        t2.print();
    }
    println!(
        "\nshape check: saturation tail ({:.1}) << spreading phase ({:.1}) as Lemmas 13-14 predict",
        saturation.mean(),
        spreading.mean()
    );
}
