//! Experiment harness for the PODC 2012 reproduction.
//!
//! Each subcommand regenerates one table/series of `EXPERIMENTS.md`:
//!
//! ```text
//! dg-experiments t1            # run experiment T1
//! dg-experiments t2 t7         # run a subset
//! dg-experiments all           # run everything
//! dg-experiments all --quick   # reduced sizes (CI-friendly)
//! ```

mod common;
mod t01_phases;
mod t02_edge_meg;
mod t03_hidden_edge;
mod t04_node_meg;
mod t05_wp_density;
mod t06_wp_mixing;
mod t07_wp_flooding;
mod t08_walk_grid;
mod t09_rand_paths;
mod t10_k_augmented;
mod t11_stationarity;
mod t12_gossip;
mod t13_extensions;
mod t19_tradeoff;
mod table;

/// One registered experiment: id, description, entry point taking the
/// `--quick` flag.
type Experiment = (&'static str, &'static str, fn(bool));

const EXPERIMENTS: &[Experiment] = &[
    (
        "t1",
        "Lemmas 13-14: spreading/saturation phase structure",
        t01_phases::run,
    ),
    (
        "t2",
        "Appendix A: two-state edge-MEG vs CMMPS'10 and general bounds",
        t02_edge_meg::run,
    ),
    (
        "t3",
        "Appendix A: generalized (hidden-chain) edge-MEG",
        t03_hidden_edge::run,
    ),
    (
        "t4",
        "Fact 2 + Theorem 3: exact node-MEG analysis vs measurement",
        t04_node_meg::run,
    ),
    (
        "t5",
        "S4.1: waypoint positional density, center bias, (delta,lambda)",
        t05_wp_density::run,
    ),
    (
        "t6",
        "S4.1: waypoint positional mixing ~ L/v",
        t06_wp_mixing::run,
    ),
    (
        "t7",
        "S4.1 headline: sparse waypoint flooding ~ sqrt(n)/v",
        t07_wp_flooding::run,
    ),
    (
        "t8",
        "S4.1: random walk on grid, flooding vs n and r",
        t08_walk_grid::run,
    ),
    (
        "t9",
        "Corollary 5: random L-paths on grids, flooding ~ D polylog",
        t09_rand_paths::run,
    ),
    (
        "t10",
        "Corollary 6: k-augmented grids, flooding ~ 1/k^2",
        t10_k_augmented::run,
    ),
    (
        "t11",
        "S3 conditions: empirical (M,alpha,beta) and Theorem 1",
        t11_stationarity::run,
    ),
    (
        "t12",
        "S5: randomized push protocols as thinned flooding",
        t12_gossip::run,
    ),
    (
        "t13",
        "extensions: barbell mixing, jamming, disk waypoint, interval connectivity",
        t13_extensions::run,
    ),
    (
        "t19",
        "time-vs-messages trade-off on the edge-MEG density grid (multi-metric sweep)",
        t19_tradeoff::run,
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if selected.is_empty() {
        eprintln!("usage: dg-experiments <t1..t19|all> [--quick]");
        eprintln!("\navailable experiments:");
        for (id, desc, _) in EXPERIMENTS {
            eprintln!("  {id:<4} {desc}");
        }
        std::process::exit(2);
    }
    let run_all = selected.contains(&"all");
    let mut matched = false;
    for (id, desc, f) in EXPERIMENTS {
        if run_all || selected.contains(id) {
            matched = true;
            println!("\n=== {} — {desc} ===", id.to_uppercase());
            let start = std::time::Instant::now();
            f(quick);
            println!("[{} done in {:.1?}]", id, start.elapsed());
        }
    }
    if !matched {
        eprintln!("no experiment matched {selected:?}; use t1..t19 or all");
        std::process::exit(2);
    }
}
