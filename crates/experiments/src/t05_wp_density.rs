//! T5 — §4.1: the waypoint positional density and its (δ, λ) constants.
//!
//! The stationary positional distribution of the random waypoint is
//! biased toward the center ("far from uniform", §1). We estimate it,
//! print the relative-density heatmap, compare against Bettstetter's
//! product-form density in TV distance, and extract the empirical (δ, λ)
//! constants that Corollary 4 consumes. The bouncing random-direction
//! model serves as the near-uniform contrast.

use dg_mobility::{positional, waypoint_density, RandomDirection, RandomWaypoint};

use crate::table::{fmt, Table};

pub fn run(quick: bool) {
    let side = 16.0;
    let cells = 8;
    let samples = if quick { 60_000 } else { 400_000 };
    let warm = 2_000;
    let r = 1.0;

    let wp = RandomWaypoint::new(side, 1.0, 1.0).unwrap();
    let occ = positional::stationary_occupancy(&wp, cells, warm, samples, 0x76);
    println!("random waypoint on [0,{side}]², {samples} stationary samples, {cells}x{cells} cells");
    println!("relative density (1.00 = uniform):");
    for cy in (0..cells).rev() {
        let mut line = String::new();
        for cx in 0..cells {
            let rel = occ.probability(cx, cy) * (cells * cells) as f64;
            line.push_str(&format!("{rel:5.2} "));
        }
        println!("  {line}");
    }

    let tv_analytic = occ.tv_distance_to_density(|x, y| waypoint_density(x, y, side));
    let tv_uniform = occ.tv_distance_to_density(|_, _| 1.0 / (side * side));
    let dl = positional::estimate_delta_lambda(&occ, side, r);

    let rd = RandomDirection::new(side, 1.0, 8, 24).unwrap();
    let occ_rd = positional::stationary_occupancy(&rd, cells, warm, samples, 0x77);
    let dl_rd = positional::estimate_delta_lambda(&occ_rd, side, r);
    let tv_rd_uniform = occ_rd.tv_distance_to_density(|_, _| 1.0 / (side * side));

    let mut table = Table::new(vec![
        "model",
        "TV vs analytic Fwp",
        "TV vs uniform",
        "delta",
        "lambda",
    ]);
    table.row(vec![
        "random waypoint".to_string(),
        fmt(tv_analytic),
        fmt(tv_uniform),
        fmt(dl.delta),
        fmt(dl.lambda),
    ]);
    table.row(vec![
        "random direction".to_string(),
        "-".to_string(),
        fmt(tv_rd_uniform),
        fmt(dl_rd.delta),
        fmt(dl_rd.lambda),
    ]);
    table.print();
    println!(
        "shape check: waypoint is far from uniform (TV {:.3}) but close to Bettstetter Fwp (TV {:.3});\n  its (delta, lambda) are absolute constants — exactly the Corollary 4 premise;\n  the bounce model is near uniform (TV {:.3}), so its delta is smaller",
        tv_uniform, tv_analytic, tv_rd_uniform
    );
}
