//! T5 — §4.1: the waypoint positional density, its (δ, λ) constants,
//! and flooding across the density spectrum.
//!
//! The stationary positional distribution of the random waypoint is
//! biased toward the center ("far from uniform", §1). We estimate it,
//! print the relative-density heatmap, compare against Bettstetter's
//! product-form density in TV distance, and extract the empirical (δ, λ)
//! constants that Corollary 4 consumes. The bouncing random-direction
//! model serves as the near-uniform contrast.
//!
//! A `Grid` sweep then walks the *node density* spectrum — fixed `n`,
//! growing box side `L` — and measures flooding time with adaptive trial
//! budgets: dense cells are near-deterministic and stop at the trial
//! minimum, while the sparse disconnected regime is noisy and earns its
//! trials (this grid is also the `benches/t15_sweep` workload).

use dg_mobility::{positional, waypoint_density, GeometricMeg, RandomDirection, RandomWaypoint};
use dynagraph::sweep::{Axis, Grid, Sweep};

use crate::common::{budget, flood_trial, fmt_ci, scaled, FloodWorker};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let side = 16.0;
    let cells = 8;
    let samples = scaled(400_000, quick);
    let warm = 2_000;
    let r = 1.0;

    let wp = RandomWaypoint::new(side, 1.0, 1.0).unwrap();
    let occ = positional::stationary_occupancy(&wp, cells, warm, samples, 0x76);
    println!("random waypoint on [0,{side}]², {samples} stationary samples, {cells}x{cells} cells");
    println!("relative density (1.00 = uniform):");
    for cy in (0..cells).rev() {
        let mut line = String::new();
        for cx in 0..cells {
            let rel = occ.probability(cx, cy) * (cells * cells) as f64;
            line.push_str(&format!("{rel:5.2} "));
        }
        println!("  {line}");
    }

    let tv_analytic = occ.tv_distance_to_density(|x, y| waypoint_density(x, y, side));
    let tv_uniform = occ.tv_distance_to_density(|_, _| 1.0 / (side * side));
    let dl = positional::estimate_delta_lambda(&occ, side, r);

    let rd = RandomDirection::new(side, 1.0, 8, 24).unwrap();
    let occ_rd = positional::stationary_occupancy(&rd, cells, warm, samples, 0x77);
    let dl_rd = positional::estimate_delta_lambda(&occ_rd, side, r);
    let tv_rd_uniform = occ_rd.tv_distance_to_density(|_, _| 1.0 / (side * side));

    let mut table = Table::new(vec![
        "model",
        "TV vs analytic Fwp",
        "TV vs uniform",
        "delta",
        "lambda",
    ]);
    table.row(vec![
        "random waypoint".to_string(),
        fmt(tv_analytic),
        fmt(tv_uniform),
        fmt(dl.delta),
        fmt(dl.lambda),
    ]);
    table.row(vec![
        "random direction".to_string(),
        "-".to_string(),
        fmt(tv_rd_uniform),
        fmt(dl_rd.delta),
        fmt(dl_rd.lambda),
    ]);
    table.print();
    println!(
        "shape check: waypoint is far from uniform (TV {:.3}) but close to Bettstetter Fwp (TV {:.3});\n  its (delta, lambda) are absolute constants — exactly the Corollary 4 premise;\n  the bounce model is near uniform (TV {:.3}), so its delta is smaller",
        tv_uniform, tv_analytic, tv_rd_uniform
    );

    // The density grid: flooding time as the box dilutes a fixed swarm.
    let (n, report) = density_sweep(quick);
    println!(
        "\nflooding across the density spectrum: waypoint MANET, n={n}, r={r}, v=1, L sweeps n/L²"
    );
    let mut t2 = Table::new(vec![
        "L",
        "density n/L^2",
        "mean F",
        "95% CI",
        "p95 F",
        "trials",
        "incomplete",
    ]);
    for cell in report.cells() {
        let l = report.axis_value(cell, "L");
        t2.row(vec![
            fmt(l),
            fmt(n as f64 / (l * l)),
            fmt_opt(cell.mean()),
            fmt_ci(cell),
            fmt_opt(cell.p95()),
            cell.trials().to_string(),
            cell.incomplete().to_string(),
        ]);
    }
    t2.print();
    println!(
        "(adaptive budget spent {} trials; dense cells stop at the minimum, the sparse tail earns its trials)",
        report.total_trials()
    );
}

/// The t05 density grid: flooding time of a fixed waypoint swarm as the
/// box side `L` grows (density `n/L²` falls). Shared with
/// `benches/t15_sweep` and `benches/t16_trial_reuse`, which record the
/// trial savings of the adaptive budget and the setup savings of
/// zero-rebuild trials on exactly this workload.
///
/// Trials are zero-rebuild (per-worker model cache + engine scratch via
/// [`FloodWorker`]), and the grid carries a per-cell `max_rounds`
/// policy: flooding time grows with `L`, so instead of every cell
/// paying the sparse tail's worst-case cap, each cell's censoring
/// budget scales with its own expected flooding time — a censored trial
/// in a dense cell stops orders of magnitude earlier.
pub fn density_sweep(quick: bool) -> (usize, dynagraph::sweep::SweepReport) {
    let n = if quick { 36 } else { 64 };
    let r = 1.0;
    let sides: Vec<f64> = if quick {
        vec![5.0, 8.0]
    } else {
        vec![5.0, 7.0, 9.0, 11.0, 13.0]
    };
    let grid = Grid::new()
        .axis(Axis::explicit("L", sides))
        // Mean F here is O(10²) even in the sparsest cell; 2000·L keeps
        // >100x headroom per cell while the dense cells' censor cap
        // drops from the old grid-wide 200k to 10k.
        .max_rounds(|cell| (2_000.0 * cell.get("L")) as u32);
    let report = Sweep::over(grid)
        .budget(budget(quick))
        .base_seed(0x78)
        .run_with_state(FloodWorker::new, |cell, trial, worker| {
            let l = cell.get("L");
            let warm = (8.0 * l) as usize;
            flood_trial(
                worker,
                move |seed| {
                    GeometricMeg::new(RandomWaypoint::new(l, 1.0, 1.0).unwrap(), n, r, seed)
                        .unwrap()
                },
                cell,
                200_000,
                warm,
                trial,
            )
        })
        .unwrap();
    (n, report)
}
