//! T19 — the time-vs-messages trade-off on the edge-MEG density grid.
//!
//! Flooding on the sparse stationary edge-MEG speeds up as the edge
//! death rate `q` falls: a lower `q` raises the stationary density
//! `alpha = p/(p+q)`, so each round's snapshot carries more live edges
//! and the information front moves faster. But flooding retransmits
//! over *every* live edge incident to an informed node, so the same
//! density that buys rounds costs messages — the classic time/cost
//! trade-off, measured here from one sweep instead of two.
//!
//! One multi-metric sweep (`dg-sweep/2`) records `(rounds, messages,
//! coverage)` per trial. Both `rounds` and `messages` gate the stopping
//! rule — a cell stops only when *both* means are tight (5% relative
//! CI for rounds from the harness budget, a per-metric 10% override
//! for messages) — while `coverage` is observe-only. The phase diagram
//! for either observable therefore comes from the same trials, same
//! seeds, same artifact.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dynagraph::sweep::{Axis, CiTarget, Grid, Metric, Sweep};

use crate::common::{budget, flood_trial_metrics, fmt_ci_of, FloodWorker};
use crate::table::{fmt_opt, Table};

pub fn run(quick: bool) {
    let ns: Vec<usize> = if quick {
        vec![150, 300]
    } else {
        vec![250, 500, 1000]
    };
    let qs = [0.05, 0.2, 0.8];
    println!(
        "model: stationary edge-MEG, p=1.5/n, q in {qs:?} (stationary density alpha = p/(p+q))"
    );

    let metrics = vec![
        Metric::new("rounds"),
        Metric::target("messages", CiTarget::Relative(0.1)),
        Metric::observe("coverage"),
    ];
    let grid = Grid::new()
        .axis(Axis::ints("n", ns))
        .axis(Axis::explicit("q", qs))
        .metrics(metrics.clone());
    let report = Sweep::over(grid)
        .budget(budget(quick))
        .base_seed(0x719)
        .run_metrics_with_state(FloodWorker::new, |cell, trial, worker| {
            let n = cell.usize("n");
            let q = cell.get("q");
            let p = 1.5 / n as f64;
            flood_trial_metrics(
                worker,
                move |seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap(),
                cell,
                n,
                200_000,
                0,
                trial,
                &metrics,
            )
        })
        .unwrap();

    let (rounds, messages, coverage) = (0usize, 1usize, 2usize);
    let mut table = Table::new(vec![
        "n",
        "q",
        "mean F",
        "CI(F)",
        "mean msgs",
        "CI(msgs)",
        "msgs/node",
        "coverage",
        "trials",
    ]);
    for cell in report.cells() {
        let n = report.axis_usize(cell, "n");
        table.row(vec![
            n.to_string(),
            format!("{}", cell.values[1]),
            fmt_opt(cell.mean_of(rounds)),
            fmt_ci_of(cell, rounds),
            fmt_opt(cell.mean_of(messages)),
            fmt_ci_of(cell, messages),
            fmt_opt(cell.mean_of(messages).map(|m| m / n as f64)),
            fmt_opt(cell.mean_of(coverage)),
            cell.trials().to_string(),
        ]);
    }
    table.print();
    println!(
        "(per-metric stopping: cells stop when rounds AND messages are tight; {} of {} possible trials ran)",
        report.total_trials(),
        report.cells().len() * report.budget().max_trials
    );

    // The headline shape: at the largest n, sweeping q down trades
    // messages for rounds.
    let n_head = report.axes()[0].values().last().copied().unwrap();
    let fast = report
        .cell_at(&[("n", n_head), ("q", qs[0])])
        .unwrap()
        .expect("grid value");
    let slow = report
        .cell_at(&[("n", n_head), ("q", *qs.last().unwrap())])
        .unwrap()
        .expect("grid value");
    if let (Some(tf), Some(ts), Some(mf), Some(ms)) = (
        fast.mean_of(rounds),
        slow.mean_of(rounds),
        fast.mean_of(messages),
        slow.mean_of(messages),
    ) {
        println!(
            "\ntrade-off at n={}: q={} floods {:.1}x faster than q={} but sends {:.1}x the messages",
            n_head as usize,
            qs[0],
            ts / tf,
            qs.last().unwrap(),
            mf / ms,
        );
    }
}
