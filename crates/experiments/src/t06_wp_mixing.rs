//! T6 — §4.1: the waypoint positional mixing time is `Θ(L / v_max)`.
//!
//! We start replicas from the worst (corner) state, evolve them, and
//! measure when the ensemble position histogram reaches the stationary
//! occupancy in TV distance. Sweeping `L` at fixed `v` must scale the
//! mixing time linearly; sweeping `v` at fixed `L` inversely.

use dg_mobility::{positional, RandomWaypoint};
use dg_stats::LinearFit;

use crate::common::scaled;
use crate::table::{fmt, Table};

pub fn run(quick: bool) {
    let cells = 4;
    let replicas = scaled(8_000, quick);
    let samples = scaled(300_000, quick);
    let eps = 0.05;

    println!("series 1: L sweep at v = 1 (expect T_pos-mix ~ L)");
    let mut table = Table::new(vec!["L", "T_pos-mix", "T/L"]);
    let sides: &[f64] = if quick {
        &[8.0, 16.0]
    } else {
        &[8.0, 16.0, 32.0, 64.0]
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &side in sides {
        let wp = RandomWaypoint::new(side, 1.0, 1.0).unwrap();
        let reference =
            positional::stationary_occupancy(&wp, cells, (8.0 * side) as usize, samples, 0x80);
        let mix = positional::positional_mixing_time(
            &wp,
            &reference,
            eps,
            replicas,
            (side / 4.0).ceil() as usize,
            (400.0 * side) as usize,
            0x81,
        );
        match mix {
            Some(m) => {
                table.row(vec![
                    fmt(side),
                    m.rounds.to_string(),
                    fmt(m.rounds as f64 / side),
                ]);
                xs.push(side);
                ys.push(m.rounds as f64);
            }
            None => {
                table.row(vec![fmt(side), "-".into(), "-".into()]);
            }
        }
    }
    table.print();
    if let Some(fit) = LinearFit::fit(&xs, &ys) {
        println!(
            "linear fit T = {:.2}·L + {:.1} (r2 = {:.3}) — consistent with Θ(L/v)",
            fit.slope, fit.intercept, fit.r2
        );
    }

    println!("\nseries 2: v sweep at L = 32 (expect T_pos-mix ~ 1/v)");
    let side = 32.0;
    let mut t2 = Table::new(vec!["v", "T_pos-mix", "T*v/L"]);
    let speeds: &[f64] = if quick {
        &[1.0, 2.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    for &v in speeds {
        let wp = RandomWaypoint::new(side, v, v).unwrap();
        let reference =
            positional::stationary_occupancy(&wp, cells, (8.0 * side / v) as usize, samples, 0x82);
        let mix = positional::positional_mixing_time(
            &wp,
            &reference,
            eps,
            replicas,
            ((side / v / 4.0).ceil() as usize).max(1),
            (400.0 * side / v) as usize,
            0x83,
        );
        match mix {
            Some(m) => {
                t2.row(vec![
                    fmt(v),
                    m.rounds.to_string(),
                    fmt(m.rounds as f64 * v / side),
                ]);
            }
            None => {
                t2.row(vec![fmt(v), "-".into(), "-".into()]);
            }
        }
    }
    t2.print();
    println!("shape check: T/L and T*v/L columns are roughly constant — T_pos-mix = Θ(L/v)");
}
