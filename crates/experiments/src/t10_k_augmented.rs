//! T10 — Corollary 6 and the k-augmented grid separation from \[15\].
//!
//! The random walk on a k-augmented grid of `s` points: the meeting time
//! stays `Ω(s log s)` (so the DNS'06 bound `O(T* log n)` cannot improve
//! with `k`), while the walk's **mixing time** falls like `1/k²` — and
//! with it Corollary 6's flooding bound. We compute the exact lazy-walk
//! mixing time per `k`, measure flooding, and tabulate both against the
//! k-independent meeting-time bound.

use dg_graph::generators;
use dg_markov::random_walk_chain;
use dg_mobility::{PathFamily, RandomPathModel};
use dynagraph::theory;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(12, quick);
    let m = if quick { 8 } else { 12 };
    let s = m * m;
    let n = s;
    let laziness = 0.25;
    println!(
        "random walk (edges family) on k-augmented {m}x{m} grids, s = {s} points, n = {n} nodes"
    );

    let ks: &[usize] = if quick { &[1, 2, 3] } else { &[1, 2, 3, 4] };
    let meet_trials = scaled(200, quick);
    let mut table = Table::new(vec![
        "k",
        "Tmix(exact)",
        "Tmix*k^2",
        "T*(meeting)",
        "mean F",
        "p95 F",
        "ours~Tmix polylog",
        "DNS bound",
    ]);
    for &k in ks {
        let h = generators::k_augmented_grid(m, m, k);
        let chain = random_walk_chain(&h, laziness).expect("augmented grids are connected");
        let tmix = chain
            .mixing_time(0.25, 1 << 24)
            .expect("lazy walk is ergodic");
        let meeting =
            dg_mobility::meeting::estimate_meeting_time(&h, laziness, meet_trials, 1 << 22, 0xA0);
        let meas = measure(
            |seed| {
                let h = generators::k_augmented_grid(m, m, k);
                let family = PathFamily::edges_family(&h).unwrap();
                RandomPathModel::stationary_lazy(family, n, laziness, seed).unwrap()
            },
            trials,
            500_000,
            0,
            0x91,
        );
        let dns = theory::dns_meeting_time_bound(s, n);
        let lg = (n as f64).ln();
        // Our bound's k-dependence is carried entirely by Tmix: report
        // Tmix · log³ n (the delta factors are k-mildly-varying constants).
        let ours = tmix as f64 * lg * lg * lg;
        table.row(vec![
            k.to_string(),
            tmix.to_string(),
            fmt((tmix * k * k) as f64),
            fmt(meeting.rounds.mean()),
            fmt(meas.mean),
            fmt_opt(meas.p95),
            fmt(ours),
            fmt(dns),
        ]);
    }
    table.print();
    println!(
        "shape check: exact Tmix falls ~1/k² (Tmix·k² roughly flat) while the measured \
         meeting time T* barely moves — so Corollary 6's bound falls ~1/k² and the \
         meeting-time bound of [15] cannot; measured F decreases with k accordingly \
         (capped below by the D/k spatial traversal time)"
    );
}
