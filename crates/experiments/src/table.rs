//! Minimal aligned-column table printer for experiment output.

/// A simple text table with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>w$}", w = w));
            }
            out
        };
        println!("{}", line(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Formats an optional float for table cells; `None` (no completed
/// trials) prints as `-`.
pub fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(x) => fmt(x),
        None => "-".to_string(),
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}
