//! T13 — extensions beyond the paper (all implemented in this repo):
//!
//! 1. **Mixing-time sensitivity on mobility graphs:** random walk model on
//!    a barbell vs a hypercube of comparable size — Theorem 1 charges the
//!    mixing time, so the slow-mixing barbell must flood far slower at
//!    equal density.
//! 2. **Failure injection:** per-round node jamming degrades flooding
//!    gracefully (the jammed process is still a MEG with scaled α).
//! 3. **Corollary 4 over a non-square region:** waypoint on a disk —
//!    center bias and (δ, λ) persist.
//! 4. **Worst-case contrast:** T-interval connectivity of \[21\] fails
//!    outright in the sparse regime where flooding is near-optimal.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_graph::generators;
use dg_mobility::region::{estimate_delta_lambda_in_region, Disk, RegionWaypoint};
use dg_mobility::{positional, PathFamily, RandomPathModel};
use dynagraph::flooding::flood;
use dynagraph::{interval, JammedEvolvingGraph, RecordedEvolution};

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(12, quick);

    // 1. Barbell vs hypercube random walk model (same-point connection).
    println!("1) mixing-time sensitivity: random walk model on slow- vs fast-mixing graphs");
    let mut t1 = Table::new(vec![
        "mobility graph",
        "|V|",
        "walk Tmix",
        "n",
        "mean F",
        "p95 F",
    ]);
    let laziness = 0.25;
    let bb = generators::barbell(16, 4); // 36 points, Tmix ~ clique² * bridge
    let hc = generators::hypercube(5); // 32 points, Tmix ~ d log d
    for (label, h) in [("barbell(16,4)", bb), ("hypercube(5)", hc)] {
        let n = 2 * h.node_count();
        let chain = dg_markov::random_walk_chain(&h, laziness).expect("connected");
        let tmix = chain.mixing_time(0.25, 1 << 24).expect("ergodic");
        let meas = measure(
            |seed| {
                let family = PathFamily::edges_family(&h).unwrap();
                RandomPathModel::stationary_lazy(family, n, laziness, seed).unwrap()
            },
            trials,
            1 << 22,
            0,
            0xA1,
        );
        t1.row(vec![
            label.to_string(),
            h.node_count().to_string(),
            tmix.to_string(),
            n.to_string(),
            fmt(meas.mean),
            fmt_opt(meas.p95),
        ]);
    }
    t1.print();

    // 2. Jamming ablation on a sparse edge-MEG.
    let n = if quick { 128 } else { 256 };
    let p = 2.0 / n as f64;
    let q = 0.5;
    println!("\n2) failure injection: jam v random nodes per round, edge-MEG(n={n}, p=2/n, q={q})");
    let mut t2 = Table::new(vec!["jammed/round", "mean F", "p95 F"]);
    for frac in [0.0, 0.1, 0.25, 0.5] {
        let victims = (frac * n as f64) as usize;
        let meas = measure(
            |seed| {
                // Canonical wrapper factory shape: every layer takes the
                // trial seed, which is what makes per-worker model reuse
                // (`reset(seed)`) byte-identical to fresh construction.
                JammedEvolvingGraph::new(
                    SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap(),
                    victims,
                    seed,
                )
                .unwrap()
            },
            trials,
            1 << 22,
            0,
            0xA2,
        );
        t2.row(vec![
            format!("{victims}"),
            fmt(meas.mean),
            fmt_opt(meas.p95),
        ]);
    }
    t2.print();

    // 3. Waypoint over a disk: Corollary 4 beyond the square.
    println!("\n3) random trip over a disk (Corollary 4's general region R)");
    let disk = Disk::new(16.0);
    let wp = RegionWaypoint::new(disk, 1.0, 1.0).expect("valid");
    let samples = scaled(300_000, quick);
    let occ = positional::stationary_occupancy(&wp, 8, 2_000, samples, 0xA3);
    let dl = estimate_delta_lambda_in_region(&occ, &disk, 1.0);
    println!(
        "   disk waypoint: delta = {:.2}, lambda = {:.2} (absolute constants, as on the square)",
        dl.delta, dl.lambda
    );

    // 4. Interval connectivity of the sparse regime.
    println!("\n4) worst-case contrast: T-interval connectivity [21] in the sparse regime");
    let n4 = if quick { 200 } else { 400 };
    let mut g = SparseTwoStateEdgeMeg::stationary(n4, 1.5 / n4 as f64, 0.9, 0xA4).unwrap();
    let rec = RecordedEvolution::record(&mut g, 60);
    let frac = interval::connected_snapshot_fraction(&rec);
    let max_t = interval::max_interval_connectivity(&rec);
    let f = rec.flood_from(0).flooding_time();
    println!(
        "   n = {n4}: connected snapshots {:.0}%, max T-interval connectivity {max_t}, \
         flooding on the same realization: {f:?} rounds",
        100.0 * frac
    );
    let _ = flood(&mut g, 0, 10); // keep the process API exercised in this experiment
    println!(
        "\nshape checks: barbell floods orders slower than the hypercube at equal density; \
         jamming degrades F smoothly; the disk keeps constant (delta, lambda); the sparse \
         regime fails even 1-interval connectivity yet floods fast"
    );
}
