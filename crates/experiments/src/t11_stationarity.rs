//! T11 — §3: probing the `(M, α, β)`-stationarity conditions.
//!
//! For three model families we estimate α (min pair probability at epoch
//! boundaries) and β (worst pairwise-incidence ratio), plug the estimates
//! into Theorem 1 — with the epoch `M` set to the model's mixing scale —
//! and compare against measured flooding. An epoch-length ablation shows
//! the bound's linear-in-`M` degradation while the measured flooding time
//! is unchanged (the process does not know about our epochs).

use dg_edge_meg::TwoStateEdgeMeg;
use dg_mobility::{GeometricMeg, RandomWaypoint};
use dynagraph::stationarity::{estimate_alpha_beta, AlphaBetaConfig};
use dynagraph::theory;

use crate::common::{measure, scaled};
use crate::table::{fmt, Table};

pub fn run(quick: bool) {
    let trials = scaled(16, quick);
    let obs = scaled(600, quick);

    let mut table = Table::new(vec![
        "model",
        "M",
        "alpha_min",
        "beta_max",
        "Thm1 bound",
        "mean F",
        "F/bound",
    ]);

    // Model 1: two-state edge-MEG; true alpha = p/(p+q), beta = 1.
    let n1 = 64;
    let (p, q) = (0.02f64, 0.1f64);
    let meg_m = (1.0 / (p + q)).ceil() as usize;
    let cfg = AlphaBetaConfig {
        epoch: meg_m,
        warm_up: 4 * meg_m,
        observations: obs,
        runs: 4,
        pair_samples: 12,
        set_samples: 12,
        set_size: 4,
        base_seed: 0x92,
    };
    let est = estimate_alpha_beta(
        |seed| TwoStateEdgeMeg::stationary(n1, p, q, seed).unwrap(),
        n1,
        &cfg,
    );
    let bound = theory::theorem1_bound(
        meg_m as f64,
        est.alpha_min.max(1e-9),
        est.beta_max.max(1.0),
        n1,
    );
    let meas = measure(
        |seed| TwoStateEdgeMeg::stationary(n1, p, q, seed).unwrap(),
        trials,
        200_000,
        0,
        0x93,
    );
    println!(
        "edge-MEG(n={n1}, p={p}, q={q}): true alpha = {:.4}, true beta = 1; estimated alpha_min = {:.4}, beta_max = {:.3}",
        p / (p + q),
        est.alpha_min,
        est.beta_max
    );
    table.row(vec![
        "edge-MEG".to_string(),
        meg_m.to_string(),
        fmt(est.alpha_min),
        fmt(est.beta_max),
        fmt(bound),
        fmt(meas.mean),
        fmt(meas.mean / bound),
    ]);

    // Model 2: random waypoint, epoch = mixing scale L/v.
    let n2 = 48;
    let side = 12.0;
    let r = 2.0;
    let wp_m = side as usize; // L / v with v = 1
    let cfg2 = AlphaBetaConfig {
        epoch: wp_m,
        warm_up: 8 * wp_m,
        observations: obs / 2,
        runs: 4,
        pair_samples: 12,
        set_samples: 12,
        set_size: 4,
        base_seed: 0x94,
    };
    let est2 = estimate_alpha_beta(
        |seed| {
            GeometricMeg::new(RandomWaypoint::new(side, 1.0, 1.0).unwrap(), n2, r, seed).unwrap()
        },
        n2,
        &cfg2,
    );
    let bound2 = theory::theorem1_bound(
        wp_m as f64,
        est2.alpha_min.max(1e-9),
        est2.beta_max.max(1.0),
        n2,
    );
    let meas2 = measure(
        |seed| {
            GeometricMeg::new(RandomWaypoint::new(side, 1.0, 1.0).unwrap(), n2, r, seed).unwrap()
        },
        trials,
        200_000,
        8 * wp_m,
        0x95,
    );
    table.row(vec![
        "waypoint".to_string(),
        wp_m.to_string(),
        fmt(est2.alpha_min),
        fmt(est2.beta_max),
        fmt(bound2),
        fmt(meas2.mean),
        fmt(meas2.mean / bound2),
    ]);
    table.print();

    // Epoch ablation: Theorem 1's bound grows linearly in M while the
    // process (and measured F) is M-independent.
    println!(
        "\nepoch ablation on the edge-MEG (measured F is M-independent; the bound is linear in M):"
    );
    let mut t2 = Table::new(vec!["M", "Thm1 bound", "measured F"]);
    for mult in [1usize, 2, 4] {
        let m_len = meg_m * mult;
        let b = theory::theorem1_bound(
            m_len as f64,
            est.alpha_min.max(1e-9),
            est.beta_max.max(1.0),
            n1,
        );
        t2.row(vec![m_len.to_string(), fmt(b), fmt(meas.mean)]);
    }
    t2.print();
    println!("shape check: beta_max ~ 1 for independent edges; waypoint beta modestly above 1; measured F below both bounds");
}
