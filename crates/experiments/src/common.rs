//! Shared helpers for the experiment harness.
//!
//! Every experiment drives the unified `Simulation` builder; this module
//! wraps it with the harness' conventions (source 0, one base seed per
//! table) and a table-friendly summary type. Grid-driven experiments
//! additionally share one [`budget`] — the single place `--quick` trial
//! scaling lives — and the [`flood_trial`] glue between the sweep
//! scheduler and the engine.

use std::collections::HashMap;

use dynagraph::engine::{Simulation, SimulationReport, TrialScratch};
use dynagraph::sweep::{trial_metrics, Cell, CellReport, CiTarget, Metric, Trial, TrialBudget};
use dynagraph::EvolvingGraph;

/// Measured spreading statistics for one configuration.
///
/// `p95`/`max` are `None` when no trial completed within the round cap —
/// tables print them as `-` instead of smuggling `NaN` through the
/// formatting; `incomplete` says how many trials were censored.
#[allow(dead_code)] // max/trials are reported by only some experiments
pub struct Measured {
    pub mean: f64,
    pub p95: Option<f64>,
    pub max: Option<f64>,
    pub incomplete: usize,
    pub trials: usize,
}

impl Measured {
    pub fn from(report: &SimulationReport) -> Self {
        Measured {
            mean: report.mean(),
            p95: report.p95(),
            max: report.max(),
            incomplete: report.incomplete(),
            trials: report.trials(),
        }
    }
}

/// Runs seeded flooding trials through the engine and summarizes.
pub fn measure<G, F>(
    make: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
) -> Measured
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    let report = Simulation::builder()
        .model(make)
        .trials(trials)
        .max_rounds(max_rounds)
        .warm_up(warm_up)
        .base_seed(base_seed)
        .run();
    Measured::from(&report)
}

/// Scales a count down in `--quick` mode — the single quick-mode knob
/// (trial caps, sample counts, probe counts all route through here
/// instead of growing per-experiment `if quick` arms).
pub fn scaled(full: usize, quick: bool) -> usize {
    if quick {
        (full / 4).max(3)
    } else {
        full
    }
}

/// The harness-wide adaptive trial budget for Grid-driven experiments:
/// every cell runs at least `scaled(8)` trials, stops as soon as the
/// Student-t 95% CI half-width is within 5% of its mean, and caps at
/// `scaled(48)` — so `--quick` scales sweeps through the same helper as
/// everything else.
pub fn budget(quick: bool) -> TrialBudget {
    TrialBudget::adaptive(
        scaled(8, quick),
        scaled(48, quick),
        CiTarget::Relative(0.05),
    )
}

/// Per-worker reuse state for grid sweeps (hand to
/// [`dynagraph::sweep::Sweep::run_with_state`]): one cached model per
/// cell — constructed on the worker's first trial of that cell, then
/// merely `reset(seed)` for the rest — plus one engine
/// [`TrialScratch`] shared by every cell the worker touches. Together
/// they make a sweep trial *zero-rebuild*: after each (worker, cell)'s
/// first trial, setup allocates nothing.
///
/// The cache holds every cell a worker has visited until the sweep
/// ends (the scheduler interleaves cells, so evicting would thrash);
/// per-worker memory therefore scales with `cells × model size` —
/// fine for this harness' grids, worth bounding if a sweep ever pairs
/// huge models with hundreds of cells.
pub struct FloodWorker<G> {
    models: HashMap<usize, Option<G>>,
    scratch: TrialScratch,
}

impl<G> FloodWorker<G> {
    pub fn new() -> Self {
        FloodWorker {
            models: HashMap::new(),
            scratch: TrialScratch::new(),
        }
    }

    /// The cell's model slot plus the shared scratch — the two handles
    /// `SimulationBuilder::run_trial_with` wants — split-borrowed so
    /// custom builders (non-flooding protocols, observers) can reuse
    /// exactly like [`flood_trial`] does.
    pub fn parts(&mut self, cell_id: usize) -> (&mut Option<G>, &mut TrialScratch) {
        (self.models.entry(cell_id).or_default(), &mut self.scratch)
    }
}

impl<G> Default for FloodWorker<G> {
    fn default() -> Self {
        Self::new()
    }
}

/// One engine flooding trial on behalf of the sweep scheduler: hands the
/// sweep's per-cell seed to the builder and runs exactly the scheduled
/// trial index, so adaptive sweeps are byte-compatible with the engine's
/// own batch loop. The cell's [`Cell::max_rounds`] policy cap applies
/// when present (`max_rounds` is the grid-wide fallback), and the
/// worker's cached model + scratch are reused — byte-identical to
/// fresh construction under the engine's reuse contract. Returns the
/// flooding time (`None` = censored).
pub fn flood_trial<G, F>(
    worker: &mut FloodWorker<G>,
    make: F,
    cell: &Cell,
    max_rounds: u32,
    warm_up: usize,
    trial: Trial,
) -> Option<f64>
where
    G: EvolvingGraph,
    F: Fn(u64) -> G,
{
    let (slot, scratch) = worker.parts(cell.id());
    Simulation::builder()
        .model(make)
        .max_rounds(cell.max_rounds().unwrap_or(max_rounds))
        .warm_up(warm_up)
        .base_seed(trial.cell_seed)
        .run_trial_with(trial.index, slot, scratch)
        .time
        .map(f64::from)
}

/// The multi-metric form of [`flood_trial`]: the same zero-rebuild
/// engine trial, but the whole [`dynagraph::engine::TrialRecord`] is
/// kept and one row slot extracted per declared metric
/// ([`dynagraph::sweep::trial_metrics`]) — `rounds` censors when the
/// cap hits, `messages`/`coverage` always count. `n` is the cell's node
/// count (for the coverage fraction).
#[allow(clippy::too_many_arguments)]
pub fn flood_trial_metrics<G, F>(
    worker: &mut FloodWorker<G>,
    make: F,
    cell: &Cell,
    n: usize,
    max_rounds: u32,
    warm_up: usize,
    trial: Trial,
    metrics: &[Metric],
) -> Vec<Option<f64>>
where
    G: EvolvingGraph,
    F: Fn(u64) -> G,
{
    let (slot, scratch) = worker.parts(cell.id());
    let record = Simulation::builder()
        .model(make)
        .max_rounds(cell.max_rounds().unwrap_or(max_rounds))
        .warm_up(warm_up)
        .base_seed(trial.cell_seed)
        .run_trial_with(trial.index, slot, scratch);
    trial_metrics(&record, n, metrics)
}

/// Formats a sweep cell's 95% CI as `±h` for table cells (`-` when
/// fewer than two trials completed).
pub fn fmt_ci(cell: &CellReport) -> String {
    match cell.ci() {
        Some(ci) => format!("±{:.1}", ci.half_width()),
        None => "-".to_string(),
    }
}

/// [`fmt_ci`] for a specific metric of a multi-metric cell.
pub fn fmt_ci_of(cell: &CellReport, metric: usize) -> String {
    match cell.ci_of(metric) {
        Some(ci) => format!("±{:.1}", ci.half_width()),
        None => "-".to_string(),
    }
}
