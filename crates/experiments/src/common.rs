//! Shared helpers for the experiment harness.
//!
//! Every experiment drives the unified `Simulation` builder; this module
//! wraps it with the harness' conventions (source 0, one base seed per
//! table) and a table-friendly summary type. Grid-driven experiments
//! additionally share one [`budget`] — the single place `--quick` trial
//! scaling lives — and the [`flood_trial`] glue between the sweep
//! scheduler and the engine.

use dynagraph::engine::{Simulation, SimulationReport};
use dynagraph::sweep::{CellReport, CiTarget, Trial, TrialBudget};
use dynagraph::EvolvingGraph;

/// Measured spreading statistics for one configuration.
///
/// `p95`/`max` are `None` when no trial completed within the round cap —
/// tables print them as `-` instead of smuggling `NaN` through the
/// formatting; `incomplete` says how many trials were censored.
#[allow(dead_code)] // max/trials are reported by only some experiments
pub struct Measured {
    pub mean: f64,
    pub p95: Option<f64>,
    pub max: Option<f64>,
    pub incomplete: usize,
    pub trials: usize,
}

impl Measured {
    pub fn from(report: &SimulationReport) -> Self {
        Measured {
            mean: report.mean(),
            p95: report.p95(),
            max: report.max(),
            incomplete: report.incomplete(),
            trials: report.trials(),
        }
    }
}

/// Runs seeded flooding trials through the engine and summarizes.
pub fn measure<G, F>(
    make: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
) -> Measured
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    let report = Simulation::builder()
        .model(make)
        .trials(trials)
        .max_rounds(max_rounds)
        .warm_up(warm_up)
        .base_seed(base_seed)
        .run();
    Measured::from(&report)
}

/// Scales a count down in `--quick` mode — the single quick-mode knob
/// (trial caps, sample counts, probe counts all route through here
/// instead of growing per-experiment `if quick` arms).
pub fn scaled(full: usize, quick: bool) -> usize {
    if quick {
        (full / 4).max(3)
    } else {
        full
    }
}

/// The harness-wide adaptive trial budget for Grid-driven experiments:
/// every cell runs at least `scaled(8)` trials, stops as soon as the
/// Student-t 95% CI half-width is within 5% of its mean, and caps at
/// `scaled(48)` — so `--quick` scales sweeps through the same helper as
/// everything else.
pub fn budget(quick: bool) -> TrialBudget {
    TrialBudget::adaptive(
        scaled(8, quick),
        scaled(48, quick),
        CiTarget::Relative(0.05),
    )
}

/// One engine flooding trial on behalf of the sweep scheduler: hands the
/// sweep's per-cell seed to the builder and runs exactly the scheduled
/// trial index, so adaptive sweeps are byte-compatible with the engine's
/// own batch loop. Returns the flooding time (`None` = censored).
pub fn flood_trial<G, F>(make: F, max_rounds: u32, warm_up: usize, trial: Trial) -> Option<f64>
where
    G: EvolvingGraph,
    F: Fn(u64) -> G,
{
    Simulation::builder()
        .model(make)
        .max_rounds(max_rounds)
        .warm_up(warm_up)
        .base_seed(trial.cell_seed)
        .run_trial(trial.index)
        .time
        .map(f64::from)
}

/// Formats a sweep cell's 95% CI as `±h` for table cells (`-` when
/// fewer than two trials completed).
pub fn fmt_ci(cell: &CellReport) -> String {
    match cell.ci() {
        Some(ci) => format!("±{:.1}", ci.half_width()),
        None => "-".to_string(),
    }
}
