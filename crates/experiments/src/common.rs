//! Shared helpers for the experiment harness.

use dynagraph::flooding::{run_trials, FloodingTrials, TrialConfig};
use dynagraph::EvolvingGraph;

/// Measured flooding statistics for one configuration.
#[allow(dead_code)] // max/trials are reported by only some experiments
pub struct Measured {
    pub mean: f64,
    pub p95: f64,
    pub max: f64,
    pub incomplete: usize,
    pub trials: usize,
}

impl Measured {
    pub fn from(trials: &FloodingTrials, total: usize) -> Self {
        Measured {
            mean: trials.mean(),
            p95: trials.p95().unwrap_or(f64::NAN),
            max: trials.max().unwrap_or(f64::NAN),
            incomplete: trials.incomplete(),
            trials: total,
        }
    }
}

/// Runs seeded flooding trials and summarizes.
pub fn measure<G, F>(
    make: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
) -> Measured
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    let cfg = TrialConfig {
        trials,
        max_rounds,
        source: 0,
        base_seed,
        warm_up,
    };
    let res = run_trials(make, &cfg);
    Measured::from(&res, trials)
}

/// Scales a count down in `--quick` mode.
pub fn scaled(full: usize, quick: bool) -> usize {
    if quick {
        (full / 4).max(3)
    } else {
        full
    }
}
