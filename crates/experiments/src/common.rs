//! Shared helpers for the experiment harness.
//!
//! Every experiment drives the unified `Simulation` builder; this module
//! wraps it with the harness' conventions (source 0, one base seed per
//! table) and a table-friendly summary type.

use dynagraph::engine::{Simulation, SimulationReport};
use dynagraph::EvolvingGraph;

/// Measured spreading statistics for one configuration.
///
/// `p95`/`max` are `None` when no trial completed within the round cap —
/// tables print them as `-` instead of smuggling `NaN` through the
/// formatting; `incomplete` says how many trials were censored.
#[allow(dead_code)] // max/trials are reported by only some experiments
pub struct Measured {
    pub mean: f64,
    pub p95: Option<f64>,
    pub max: Option<f64>,
    pub incomplete: usize,
    pub trials: usize,
}

impl Measured {
    pub fn from(report: &SimulationReport) -> Self {
        Measured {
            mean: report.mean(),
            p95: report.p95(),
            max: report.max(),
            incomplete: report.incomplete(),
            trials: report.trials(),
        }
    }
}

/// Runs seeded flooding trials through the engine and summarizes.
pub fn measure<G, F>(
    make: F,
    trials: usize,
    max_rounds: u32,
    warm_up: usize,
    base_seed: u64,
) -> Measured
where
    G: EvolvingGraph,
    F: Fn(u64) -> G + Sync,
{
    let report = Simulation::builder()
        .model(make)
        .trials(trials)
        .max_rounds(max_rounds)
        .warm_up(warm_up)
        .base_seed(base_seed)
        .run();
    Measured::from(&report)
}

/// Scales a count down in `--quick` mode.
pub fn scaled(full: usize, quick: bool) -> usize {
    if quick {
        (full / 4).max(3)
    } else {
        full
    }
}
