//! T3 — Appendix A: the generalized edge-MEG `EM(n, M, χ)`.
//!
//! A 3-state bursty hidden chain drives every edge. We compute the exact
//! stationary density `α` and the exact hidden-chain mixing time, and
//! check measured flooding against the β = 1 instantiation of Theorem 1:
//! `O(T_mix (1/(nα) + 1)² log² n)`. Sweeping the `cool` rate scales the
//! chain's mixing time; flooding must track it.

use dg_edge_meg::{bursty_chain, HiddenChainEdgeMeg};
use dynagraph::theory;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let n = if quick { 48 } else { 96 };
    let trials = scaled(20, quick);
    println!("model: hidden 3-state bursty chain per edge (dormant -> warm -> on), n = {n}");

    // Uniformly slowing the chain (dividing all rates by s) keeps the
    // stationary distribution — hence alpha and the graph density — fixed
    // while multiplying Tmix by s: flooding must track Tmix.
    let mut table = Table::new(vec![
        "wake",
        "fire",
        "cool",
        "alpha",
        "Tmix(0.25)",
        "mean F",
        "p95 F",
        "bound",
        "F/bound",
    ]);
    for s in [1.0f64, 2.0, 4.0, 8.0] {
        let (wake, fire, cool) = (0.02 / s, 0.4 / s, 0.4 / s);
        let (chain, chi) = bursty_chain(wake, fire, cool);
        let probe = HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), 0).unwrap();
        let alpha = probe.alpha();
        let tmix = probe.mixing_time(0.25).unwrap();
        let bound = theory::edge_meg_hidden_bound(tmix as f64, alpha, n);
        let m = measure(
            |seed| HiddenChainEdgeMeg::stationary(n, chain.clone(), chi.clone(), seed).unwrap(),
            trials,
            500_000,
            0,
            0x74,
        );
        table.row(vec![
            format!("{wake}"),
            format!("{fire}"),
            format!("{cool}"),
            format!("{alpha:.4}"),
            tmix.to_string(),
            fmt(m.mean),
            fmt_opt(m.p95),
            fmt(bound),
            fmt(m.mean / bound),
        ]);
    }
    table.print();
    println!("shape check: measured F stays below the bound and grows with Tmix (slower chains flood slower)");
}
