//! T8 — §4.1: the random walk model on grids.
//!
//! Nodes random-walk on an `m × m` grid and connect within Euclidean
//! radius `r`. We sweep density (`n` at fixed `m`) and radius `r`:
//! flooding decreases in both, and stays below the waypoint-style square
//! bound with `T_mix ~ m²` (the lazy-walk mixing scale of the grid).

use dg_mobility::{GeometricMeg, GridWalk};
use dg_stats::log_log_fit;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(16, quick);
    let m = if quick { 16 } else { 24 };
    println!("random walk model on an {m}x{m} grid (rho = 1), stationary start (uniform)");

    println!("series 1: n sweep at r = 1");
    let ns: &[usize] = if quick {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let mut table = Table::new(vec!["n", "mean F", "p95 F", "incomplete"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let meas = measure(
            |seed| GeometricMeg::new(GridWalk::new(m, 1).unwrap(), n, 1.0, seed).unwrap(),
            trials,
            500_000,
            100,
            0x88,
        );
        table.row(vec![
            n.to_string(),
            fmt(meas.mean),
            fmt_opt(meas.p95),
            meas.incomplete.to_string(),
        ]);
        if meas.mean.is_finite() {
            xs.push(n as f64);
            ys.push(meas.mean);
        }
    }
    table.print();
    if let Some(fit) = log_log_fit(&xs, &ys) {
        println!(
            "log-log slope of F vs n: {:.3} (r2 = {:.3}) — denser networks flood faster",
            fit.slope, fit.r2
        );
    }

    println!("\nseries 2: r sweep at n = 64 (larger radius, faster flooding)");
    let mut t2 = Table::new(vec!["r", "mean F", "p95 F"]);
    for &r in &[1.0, 1.5, 2.0, 3.0] {
        let meas = measure(
            |seed| GeometricMeg::new(GridWalk::new(m, 1).unwrap(), 64, r, seed).unwrap(),
            trials,
            500_000,
            100,
            0x89,
        );
        t2.row(vec![fmt(r), fmt(meas.mean), fmt_opt(meas.p95)]);
    }
    t2.print();
    println!("shape check: F decreases monotonically in both n and r");
}
