//! T9 — Corollary 5: random shortest paths on grids flood in
//! `O(D · polylog n)`.
//!
//! The basic instance named after Corollary 5: `H` is an `m × m` grid and
//! the feasible paths are the L-shaped shortest paths. The family is
//! simple, reversible and O(1)-regular, so the corollary predicts
//! flooding within a polylog factor of the diameter `D = 2(m−1)`. We
//! report the family's δ-regularity and fit F against D.

use dg_mobility::{PathFamily, RandomPathModel};
use dg_stats::log_log_fit;
use dynagraph::theory;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(12, quick);
    let laziness = 0.25; // grids are bipartite; see RandomPathModel docs
    println!("random L-paths on m x m grids, laziness = {laziness}, n = 4·m² nodes");

    let ms: &[usize] = if quick { &[3, 4, 5] } else { &[3, 4, 6, 8] };
    let mut table = Table::new(vec![
        "m",
        "D",
        "|V|",
        "delta",
        "simple",
        "reversible",
        "n",
        "mean F",
        "p95 F",
        "F/D",
        "Cor5 bound",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &m in ms {
        let (_, family) = PathFamily::grid_l_paths(m, m);
        let delta = family.delta_regularity().unwrap();
        let simple = family.is_simple();
        let reversible = family.is_reversible();
        let points = family.point_count();
        let d = 2 * (m - 1);
        let n = 4 * points;
        let meas = measure(
            |seed| {
                let (_, family) = PathFamily::grid_l_paths(m, m);
                RandomPathModel::stationary_lazy(family, n, laziness, seed).unwrap()
            },
            trials,
            500_000,
            0,
            0x90,
        );
        // Tmix of the unique-shortest-path chain is O(D); instantiate the
        // Corollary 5 bound with Tmix = D (constant 1).
        let bound = theory::corollary5_bound(d as f64, points, delta, n);
        table.row(vec![
            m.to_string(),
            d.to_string(),
            points.to_string(),
            fmt(delta),
            simple.to_string(),
            reversible.to_string(),
            n.to_string(),
            fmt(meas.mean),
            fmt_opt(meas.p95),
            fmt(meas.mean / d as f64),
            fmt(bound),
        ]);
        xs.push(d as f64);
        ys.push(meas.mean);
    }
    table.print();
    if let Some(fit) = log_log_fit(&xs, &ys) {
        println!(
            "log-log slope of F vs D: {:.3} (r2 = {:.3}) — Corollary 5 predicts ~1 up to polylog",
            fit.slope, fit.r2
        );
    }
    println!("shape check: delta stays O(1) across m; F/D stays within a polylog band");
}
