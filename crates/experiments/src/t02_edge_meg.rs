//! T2 — Appendix A: the two-state edge-MEG against both bounds.
//!
//! Series 1 sweeps `n` at `p = c/n` (sparse) and fixed `q`: measured
//! flooding vs the CMMPS'10 bound `O(log n / log(1+np))` and the paper's
//! general bound `O((1/(p+q))((p+q)/(np)+1)² log² n)`. The paper claims
//! the general bound is almost tight whenever `q >= np` — the ratio
//! column stays polylogarithmic there.
//!
//! Series 2 sweeps `q` at fixed `n, p`, crossing the `q = np` boundary.

use dg_edge_meg::SparseTwoStateEdgeMeg;
use dg_stats::log_log_fit;
use dynagraph::theory;

use crate::common::{measure, scaled};
use crate::table::{fmt, fmt_opt, Table};

pub fn run(quick: bool) {
    let trials = scaled(20, quick);
    let c = 0.5;
    let q = 0.9;

    println!("series 1: n sweep, p = {c}/n, q = {q} (q >= np = {c}: general bound almost tight)");
    let ns: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let mut table = Table::new(vec![
        "n",
        "p",
        "mean F",
        "p95 F",
        "cmmps",
        "general",
        "F/cmmps",
        "F/general",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let p = c / n as f64;
        let m = measure(
            |seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap(),
            trials,
            500_000,
            0,
            0x72,
        );
        let cmmps = theory::edge_meg_cmmps_bound(n, p);
        let general = theory::edge_meg_general_bound(n, p, q);
        table.row(vec![
            n.to_string(),
            format!("{p:.5}"),
            fmt(m.mean),
            fmt_opt(m.p95),
            fmt(cmmps),
            fmt(general),
            fmt(m.mean / cmmps),
            fmt(m.mean / general),
        ]);
        xs.push(n as f64);
        ys.push(m.mean);
    }
    table.print();
    if let Some(fit) = log_log_fit(&xs, &ys) {
        println!(
            "log-log slope of F vs n: {:.3} (r2={:.3}) — flooding grows ~log n (slope << 1)",
            fit.slope, fit.r2
        );
    }

    let n = 256;
    let p = 0.5 / n as f64;
    let np = n as f64 * p;
    println!("\nseries 2: q sweep at n = {n}, p = 0.5/n (q crosses np = {np})");
    let mut t2 = Table::new(vec![
        "q",
        "q/np",
        "mean F",
        "general",
        "F/general",
        "regime",
    ]);
    for &q in &[0.05, 0.1, 0.25, 0.5, 0.9] {
        let m = measure(
            |seed| SparseTwoStateEdgeMeg::stationary(n, p, q, seed).unwrap(),
            trials,
            500_000,
            0,
            0x73,
        );
        let general = theory::edge_meg_general_bound(n, p, q);
        let ratio = m.mean / general;
        t2.row(vec![
            format!("{q}"),
            fmt(q / np),
            fmt(m.mean),
            fmt(general),
            fmt(ratio),
            (if q >= np { "q>=np (tight)" } else { "q<np" }).to_string(),
        ]);
    }
    t2.print();
    println!("shape check: F/general stays within a polylog factor once q >= np; for tiny q the general bound is loose (as the paper notes, CMMPS is tight there)");
}
