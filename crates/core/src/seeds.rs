//! Deterministic seed derivation for reproducible multi-trial experiments.

/// Mixes a base seed with a stream index into an independent-looking seed
/// (SplitMix64 finalizer). Used to derive per-trial and per-node RNG seeds
/// so experiments are reproducible yet streams are decorrelated.
///
/// # Examples
///
/// ```
/// use dynagraph::mix_seed;
/// assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
/// assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
/// ```
pub fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An iterator-style source of derived seeds.
///
/// # Examples
///
/// ```
/// use dynagraph::SeedSequence;
/// let mut seq = SeedSequence::new(7);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    pub fn new(base: u64) -> Self {
        SeedSequence { base, counter: 0 }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = mix_seed(self.base, self.counter);
        self.counter += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
    }

    #[test]
    fn streams_differ() {
        let seeds: Vec<u64> = (0..100).map(|i| mix_seed(99, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn bases_differ() {
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }

    #[test]
    fn sequence_matches_mix() {
        let mut seq = SeedSequence::new(5);
        assert_eq!(seq.next_seed(), mix_seed(5, 0));
        assert_eq!(seq.next_seed(), mix_seed(5, 1));
    }
}
