//! T-interval connectivity — the worst-case stability condition of
//! Kuhn–Lynch–Oshman (STOC 2010, reference \[21\] of the paper).
//!
//! A dynamic graph is *T-interval connected* when for every window of `T`
//! consecutive rounds there is a **stable connected spanning subgraph**:
//! the intersection `∩_{t ∈ window} E_t` is connected. The worst-case
//! dynamic-network literature assumes it; this paper's point (§1) is that
//! its stochastic models need nothing of the sort — "in every `G_t` there
//! could be a large subset of all nodes that are isolated" — yet flooding
//! is fast. The checkers here let experiments state that contrast
//! quantitatively.

use dg_graph::GraphBuilder;

use crate::{RecordedEvolution, Snapshot};

/// Builds the intersection graph of a window of snapshots and reports
/// whether it is connected (an empty window counts as not connected).
fn window_intersection_connected(snaps: &[&Snapshot]) -> bool {
    let Some(first) = snaps.first() else {
        return false;
    };
    let n = first.node_count();
    let mut b = GraphBuilder::new(n);
    for (u, v) in first.edges() {
        if snaps[1..].iter().all(|s| s.has_edge(u, v)) {
            b.add_edge(u, v).expect("snapshot edges are valid");
        }
    }
    dg_graph::traversal::is_connected(&b.build())
}

/// `true` if the recorded realization is T-interval connected: every
/// window of `t` consecutive snapshots has a connected intersection.
///
/// # Panics
///
/// Panics if `t == 0` or the recording is shorter than `t` rounds.
///
/// # Examples
///
/// ```
/// use dynagraph::{interval, RecordedEvolution, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::cycle(6));
/// let rec = RecordedEvolution::record(&mut g, 10);
/// // A static connected graph is T-interval connected for every T.
/// assert!(interval::is_interval_connected(&rec, 1));
/// assert!(interval::is_interval_connected(&rec, 10));
/// ```
pub fn is_interval_connected(rec: &RecordedEvolution, t: usize) -> bool {
    assert!(t > 0, "window length must be positive");
    assert!(
        rec.rounds() >= t,
        "recording shorter than the requested window"
    );
    let snaps: Vec<&Snapshot> = (0..rec.rounds()).map(|i| rec.snapshot(i)).collect();
    snaps.windows(t).all(window_intersection_connected)
}

/// The largest `T` for which the recording is T-interval connected
/// (`0` when even single snapshots are disconnected somewhere).
///
/// Monotonicity makes this well-defined: a connected intersection over a
/// window stays connected over every sub-window, so T-interval
/// connectivity implies T'-interval connectivity for `T' <= T`.
pub fn max_interval_connectivity(rec: &RecordedEvolution) -> usize {
    if rec.rounds() == 0 || !is_interval_connected(rec, 1) {
        return 0;
    }
    // Binary search the largest feasible T in [1, rounds].
    let mut lo = 1;
    let mut hi = rec.rounds();
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if is_interval_connected(rec, mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Fraction of individual snapshots that are connected — the `T = 1`
/// diagnostic the paper's sparse regimes fail almost always.
pub fn connected_snapshot_fraction(rec: &RecordedEvolution) -> f64 {
    if rec.rounds() == 0 {
        return 0.0;
    }
    let connected = (0..rec.rounds())
        .filter(|&i| {
            let g = rec.snapshot(i).to_graph();
            dg_graph::traversal::is_connected(&g)
        })
        .count();
    connected as f64 / rec.rounds() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicEvolvingGraph, StaticEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn static_connected_graph_fully_interval_connected() {
        let mut g = StaticEvolvingGraph::new(generators::grid(3, 3));
        let rec = RecordedEvolution::record(&mut g, 8);
        assert!(is_interval_connected(&rec, 8));
        assert_eq!(max_interval_connectivity(&rec), 8);
        assert_eq!(connected_snapshot_fraction(&rec), 1.0);
    }

    #[test]
    fn static_disconnected_graph_is_zero() {
        let mut g = StaticEvolvingGraph::new(dg_graph::GraphBuilder::new(4).build());
        let rec = RecordedEvolution::record(&mut g, 4);
        assert!(!is_interval_connected(&rec, 1));
        assert_eq!(max_interval_connectivity(&rec), 0);
        assert_eq!(connected_snapshot_fraction(&rec), 0.0);
    }

    #[test]
    fn alternating_spanning_trees_one_interval_only() {
        // Two different spanning trees of K4 alternate: every snapshot is
        // connected (1-interval), but consecutive intersections are not.
        let tree_a = {
            let mut b = dg_graph::GraphBuilder::new(4);
            b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
            b.build()
        };
        let tree_b = {
            let mut b = dg_graph::GraphBuilder::new(4);
            b.add_edges([(0, 2), (2, 1), (1, 3)]).unwrap();
            b.build()
        };
        let mut g = PeriodicEvolvingGraph::new(&[tree_a, tree_b]).unwrap();
        let rec = RecordedEvolution::record(&mut g, 6);
        assert!(is_interval_connected(&rec, 1));
        assert!(!is_interval_connected(&rec, 2));
        assert_eq!(max_interval_connectivity(&rec), 1);
        assert_eq!(connected_snapshot_fraction(&rec), 1.0);
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(2));
        let rec = RecordedEvolution::record(&mut g, 2);
        let _ = is_interval_connected(&rec, 0);
    }

    #[test]
    #[should_panic(expected = "shorter than the requested window")]
    fn oversized_window_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(2));
        let rec = RecordedEvolution::record(&mut g, 2);
        let _ = is_interval_connected(&rec, 3);
    }
}
