//! Every bound of the paper, as documented functions.
//!
//! All bounds are `O(·)` statements; the functions below return the bound
//! expression with its leading constant set to 1, so they are compared to
//! measurements *by shape* (scaling exponents, orderings, crossovers), not
//! by absolute value. Logarithms are natural.

/// `ln n`, guarded to at least 1 so that bound expressions stay monotone
/// for tiny `n`.
fn log_n(n: usize) -> f64 {
    (n.max(3) as f64).ln()
}

/// **Theorem 1.** If `G` is `(M, α, β)`-stationary, then w.h.p. the
/// flooding time is `O( M · (1/(nα) + β)² · log² n )`.
///
/// # Panics
///
/// Panics if `alpha <= 0`, `beta < 0`, or `m < 1`.
///
/// # Examples
///
/// ```
/// use dynagraph::theory::theorem1_bound;
/// // Denser graphs (larger alpha) flood no slower:
/// assert!(theorem1_bound(10.0, 0.01, 1.0, 100) <= theorem1_bound(10.0, 0.001, 1.0, 100));
/// ```
pub fn theorem1_bound(m: f64, alpha: f64, beta: f64, n: usize) -> f64 {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(beta >= 0.0, "beta must be non-negative");
    assert!(m >= 1.0, "epoch length must be at least 1");
    let l = log_n(n);
    let core = 1.0 / (n as f64 * alpha) + beta;
    m * core * core * l * l
}

/// **Lemma 11.** The epoch budget `T` after which a set `A` doubles with
/// probability `1 - e^{-t}`:
/// `T = 256·(1/(|A|n²α²) + β/(nα) + |A|β²/n) + (4/(|A|nα) + 3β)·t`.
pub fn lemma11_epoch_budget(set_size: usize, n: usize, alpha: f64, beta: f64, t: f64) -> f64 {
    assert!(alpha > 0.0 && set_size > 0 && n > 0);
    let a = set_size as f64;
    let nf = n as f64;
    256.0 * (1.0 / (a * nf * nf * alpha * alpha) + beta / (nf * alpha) + a * beta * beta / nf)
        + (4.0 / (a * nf * alpha) + 3.0 * beta) * t
}

/// **Theorem 3 (node-MEGs).** For a node-MEG with `P_NM >= 1/n^{O(1)}` and
/// `P_NM² <= η·(P_NM)²`, w.h.p. the flooding time is
/// `O( T_mix · (1/(n·P_NM) + η)² · log³ n )`.
///
/// # Panics
///
/// Panics if `pnm <= 0`, `eta < 1`, or `tmix < 1`.
pub fn theorem3_bound(tmix: f64, pnm: f64, eta: f64, n: usize) -> f64 {
    assert!(pnm > 0.0, "P_NM must be positive");
    assert!(eta >= 1.0, "eta is at least 1 by Cauchy-Schwarz");
    assert!(tmix >= 1.0, "mixing time at least 1");
    let l = log_n(n);
    let core = 1.0 / (n as f64 * pnm) + eta;
    tmix * core * core * l * l * l
}

/// The epoch length used in the proof of Theorem 3:
/// `M = T_mix · log(2n / P_NM²)` (Eq. 23), after which every node's state
/// is within `P_NM²/(2n)` of stationarity in total variation.
pub fn theorem3_epoch_length(tmix: f64, pnm: f64, n: usize) -> f64 {
    assert!(pnm > 0.0);
    tmix * (2.0 * n as f64 / (pnm * pnm)).ln().max(1.0)
}

/// **Corollary 4 (random trip over a region `R ⊆ R^d`).** Under the
/// (δ, λ)-uniformity conditions on the positional density, w.h.p. the
/// flooding time is
/// `O( T_mix · ( δ²·vol(R)/(λ·n·r^d) + δ⁶/λ² )² · log³ n )`.
///
/// # Panics
///
/// Panics on non-positive `delta`, `lambda`, `vol`, or `r`.
pub fn corollary4_bound(
    tmix: f64,
    delta: f64,
    lambda: f64,
    vol: f64,
    n: usize,
    r: f64,
    dim: u32,
) -> f64 {
    assert!(delta >= 1.0 && lambda > 0.0 && vol > 0.0 && r > 0.0);
    let l = log_n(n);
    let core = delta * delta * vol / (lambda * n as f64 * r.powi(dim as i32))
        + delta.powi(6) / (lambda * lambda);
    tmix * core * core * l * l * l
}

/// **§4.1, random waypoint over a square of side `L`:** with
/// `T_mix = Θ(L/v_max)`, w.h.p. the flooding time is
/// `O( (L/v_max) · (L²/(n r²) + 1)² · log³ n )`.
///
/// # Panics
///
/// Panics on non-positive `l`, `vmax`, or `r`.
pub fn waypoint_square_bound(l: f64, vmax: f64, n: usize, r: f64) -> f64 {
    assert!(l > 0.0 && vmax > 0.0 && r > 0.0);
    let lg = log_n(n);
    let core = l * l / (n as f64 * r * r) + 1.0;
    (l / vmax) * core * core * lg * lg * lg
}

/// **§4.1 headline sparse regime** (`L ~ √n`, `r = Ω(1)`, `r = O(v_max)`):
/// the bound collapses to `O( √n/v_max · log³ n )`.
pub fn waypoint_sparse_bound(n: usize, vmax: f64) -> f64 {
    assert!(vmax > 0.0);
    let lg = log_n(n);
    (n as f64).sqrt() / vmax * lg * lg * lg
}

/// The trivial lower bound `Ω(√n / v_max)` for the sparse waypoint regime
/// (information must physically traverse the square).
pub fn waypoint_sparse_lower_bound(n: usize, vmax: f64) -> f64 {
    assert!(vmax > 0.0);
    (n as f64).sqrt() / vmax
}

/// **Corollary 5 (random paths on a graph `H(V, A)`).** For a simple,
/// reversible, δ-regular path family with `|V| <= n^{O(1)}`, w.h.p. the
/// flooding time is `O( T_mix · (|V|/n + δ³)² · log³ n )`.
pub fn corollary5_bound(tmix: f64, points: usize, delta: f64, n: usize) -> f64 {
    assert!(delta >= 1.0 && tmix >= 1.0);
    let l = log_n(n);
    let core = points as f64 / n as f64 + delta.powi(3);
    tmix * core * core * l * l * l
}

/// **Corollary 6 (random walk on a δ-regular mobility graph).** W.h.p. the
/// flooding time is `O( T_mix · (δ²|V|/n + δ⁷)² · log³ n )`.
pub fn corollary6_bound(tmix: f64, points: usize, delta: f64, n: usize) -> f64 {
    assert!(delta >= 1.0 && tmix >= 1.0);
    let l = log_n(n);
    let core = delta * delta * points as f64 / n as f64 + delta.powi(7);
    tmix * core * core * l * l * l
}

/// The meeting-time flooding bound of Dimitriou–Nikoletseas–Spirakis \[15\]
/// for the random walk model: `O(T* · log n)` where `T*` is the meeting
/// time of two walks. On (k-augmented) grids of `s` points the meeting
/// time is `Ω(s log s)` \[1, 27\], so we instantiate `T* = s·ln s`.
pub fn dns_meeting_time_bound(points: usize, n: usize) -> f64 {
    let s = points.max(2) as f64;
    s * s.ln() * log_n(n)
}

/// **Appendix A, basic edge-MEG:** the almost-tight flooding bound of
/// Clementi–Macci–Monti–Pasquale–Silvestri (SIAM JDM 2010, the paper's
/// Eq. 2): `O( log n / log(1 + np) )`.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn edge_meg_cmmps_bound(n: usize, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0);
    log_n(n) / (1.0 + n as f64 * p).ln()
}

/// **Appendix A, general bound specialized to the basic edge-MEG**:
/// `T_mix = Θ(1/(p+q))` and `α = p/(p+q)`, giving
/// `O( (1/(p+q)) · ((p+q)/(np) + 1)² · log² n )`.
/// Almost tight whenever `q >= np`.
///
/// # Panics
///
/// Panics unless `p, q` are positive with `p + q <= 2`.
pub fn edge_meg_general_bound(n: usize, p: f64, q: f64) -> f64 {
    assert!(p > 0.0 && q > 0.0 && p + q <= 2.0);
    let l = log_n(n);
    let core = (p + q) / (n as f64 * p) + 1.0;
    (1.0 / (p + q)) * core * core * l * l
}

/// **Appendix A, generalized edge-MEG** `EM(n, M, χ)`: edges are
/// independent, so β = 1 and Theorem 1 gives
/// `O( T_mix · (1/(nα) + 1)² · log² n )` with `α` the stationary
/// edge-existence probability.
pub fn edge_meg_hidden_bound(tmix: f64, alpha: f64, n: usize) -> f64 {
    theorem1_bound(tmix.max(1.0), alpha, 1.0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_monotone_in_all_args() {
        let b = theorem1_bound(10.0, 0.01, 2.0, 256);
        assert!(theorem1_bound(20.0, 0.01, 2.0, 256) > b); // more M
        assert!(theorem1_bound(10.0, 0.001, 2.0, 256) > b); // sparser
        assert!(theorem1_bound(10.0, 0.01, 4.0, 256) > b); // more correlated
    }

    #[test]
    fn theorem1_dense_limit_is_polylog() {
        // alpha = 1 (complete graph every epoch), beta = 1: bound is
        // M * (1/n + 1)^2 * log^2 n ~ M log^2 n.
        let n = 1024;
        let b = theorem1_bound(1.0, 1.0, 1.0, n);
        let l = (n as f64).ln();
        assert!(b < 4.2 * l * l);
    }

    #[test]
    fn lemma11_budget_positive_and_monotone_in_t() {
        let t0 = lemma11_epoch_budget(4, 100, 0.01, 1.0, 1.0);
        let t1 = lemma11_epoch_budget(4, 100, 0.01, 1.0, 10.0);
        assert!(t0 > 0.0);
        assert!(t1 > t0);
    }

    #[test]
    fn theorem3_epoch_grows_with_tmix() {
        assert!(theorem3_epoch_length(100.0, 0.01, 64) > theorem3_epoch_length(10.0, 0.01, 64));
    }

    #[test]
    fn waypoint_square_bound_sparse_matches_headline() {
        // L = sqrt(n), r = 1, v = 1: bound ~ sqrt(n) * (1 + 1)^2 * log^3 n;
        // same growth order as the headline sparse bound.
        let n = 4096;
        let l = (n as f64).sqrt();
        let full = waypoint_square_bound(l, 1.0, n, 1.0);
        let sparse = waypoint_sparse_bound(n, 1.0);
        let ratio = full / sparse;
        assert!(ratio > 1.0 && ratio < 8.0, "ratio = {ratio}");
    }

    #[test]
    fn waypoint_bounds_ordering() {
        let n = 1024;
        assert!(waypoint_sparse_lower_bound(n, 1.0) < waypoint_sparse_bound(n, 1.0));
    }

    #[test]
    fn corollary5_linear_in_tmix() {
        let a = corollary5_bound(10.0, 100, 1.0, 100);
        let b = corollary5_bound(20.0, 100, 1.0, 100);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn corollary6_dominates_corollary5() {
        // delta >= 1 implies the Cor. 6 expression dominates Cor. 5's.
        let (tmix, pts, n) = (50.0, 500, 200);
        for delta in [1.0, 1.5, 2.0] {
            assert!(corollary6_bound(tmix, pts, delta, n) >= corollary5_bound(tmix, pts, delta, n));
        }
    }

    #[test]
    fn edge_meg_bounds_crossover() {
        // Dense regime np >> 1, q small: CMMPS bound O(1) beats ours.
        let n = 1000;
        let dense_ours = edge_meg_general_bound(n, 0.1, 0.01);
        let dense_cmmps = edge_meg_cmmps_bound(n, 0.1);
        assert!(dense_cmmps < dense_ours);
        // Sparse regime with q >= np: ours is within polylog of CMMPS.
        let p = 0.5 / n as f64;
        let q = 0.9;
        let ours = edge_meg_general_bound(n, p, q);
        let cmmps = edge_meg_cmmps_bound(n, p);
        let l = (n as f64).ln();
        assert!(ours <= cmmps * 40.0 * l * l, "ours {ours} vs cmmps {cmmps}");
    }

    #[test]
    fn hidden_bound_reduces_to_theorem1() {
        let b = edge_meg_hidden_bound(7.0, 0.02, 128);
        assert_eq!(b, theorem1_bound(7.0, 0.02, 1.0, 128));
    }

    #[test]
    fn dns_bound_superlinear_in_points() {
        assert!(dns_meeting_time_bound(2000, 100) > 2.0 * dns_meeting_time_bound(1000, 100));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn theorem1_rejects_zero_alpha() {
        let _ = theorem1_bound(1.0, 0.0, 1.0, 10);
    }
}
