//! Edge-set snapshots `E_t` of a dynamic graph.

/// One round's edge set `E_t`, stored in CSR form for cache-friendly
/// flooding sweeps.
///
/// Snapshots are designed for reuse: a process keeps one `Snapshot` and
/// calls [`Snapshot::rebuild_from_edges`] every round, so the per-round
/// allocation cost is amortized away.
///
/// # Examples
///
/// ```
/// use dynagraph::Snapshot;
///
/// let mut s = Snapshot::empty(4);
/// s.rebuild_from_edges(&[(0, 1), (2, 3), (1, 2)]);
/// assert_eq!(s.edge_count(), 3);
/// assert_eq!(s.neighbors(1), &[0, 2]);
/// assert!(s.has_edge(2, 3));
/// assert!(!s.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Snapshot {
    node_count: usize,
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Snapshot {
    /// An edgeless snapshot over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Snapshot {
            node_count: n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of undirected edges in this round.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// `true` if the snapshot has no edges at all (the paper's sparse
    /// regimes routinely produce such rounds).
    pub fn is_edgeless(&self) -> bool {
        self.targets.is_empty()
    }

    /// Degree of `u` in this round.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: u32) -> usize {
        let u = u as usize;
        assert!(u < self.node_count, "node {u} out of range");
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Sorted adjacency list of `u` in this round.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let u = u as usize;
        assert!(u < self.node_count, "node {u} out of range");
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// `true` if edge `{u, v}` is present this round.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if (u as usize) >= self.node_count || (v as usize) >= self.node_count {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Rebuilds the snapshot in place from an undirected edge list.
    ///
    /// Self-loops and duplicate edges must not be supplied (process
    /// implementations guarantee this by construction); in debug builds
    /// they are caught by assertions.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn rebuild_from_edges(&mut self, edges: &[(u32, u32)]) {
        let n = self.node_count;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, v) in edges {
            debug_assert_ne!(u, v, "self-loop supplied to snapshot");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.targets.clear();
        self.targets.resize(self.offsets[n] as usize, 0);
        let mut cursor: Vec<u32> = self.offsets[..n].to_vec();
        for &(u, v) in edges {
            self.targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            self.targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for i in 0..n {
            self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize].sort_unstable();
        }
    }

    /// Rebuilds the snapshot in place from per-node sorted adjacency
    /// lists (the storage of [`crate::DynAdjacency`]); the result is
    /// byte-identical to [`Snapshot::rebuild_from_edges`] over the same
    /// edge set.
    pub(crate) fn rebuild_from_sorted_adjacency(&mut self, adj: &[Vec<u32>]) {
        debug_assert_eq!(adj.len(), self.node_count);
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0u32;
        for list in adj {
            total += list.len() as u32;
            self.offsets.push(total);
        }
        self.targets.clear();
        for list in adj {
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]));
            self.targets.extend_from_slice(list);
        }
    }

    /// Converts this round's edge set into a static [`dg_graph::Graph`]
    /// (for connectivity analysis of individual snapshots).
    pub fn to_graph(&self) -> dg_graph::Graph {
        let mut b = dg_graph::GraphBuilder::new(self.node_count);
        for (u, v) in self.edges() {
            b.add_edge(u, v).expect("snapshot edges are valid");
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::empty(3);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 0);
        assert!(s.is_edgeless());
        assert_eq!(s.degree(2), 0);
        assert!(s.neighbors(0).is_empty());
    }

    #[test]
    fn rebuild_and_query() {
        let mut s = Snapshot::empty(5);
        s.rebuild_from_edges(&[(4, 0), (1, 2), (0, 2)]);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.neighbors(0), &[2, 4]);
        assert_eq!(s.degree(2), 2);
        assert!(s.has_edge(0, 4));
        assert!(s.has_edge(4, 0));
        assert!(!s.has_edge(1, 4));
        assert!(!s.has_edge(0, 99));
    }

    #[test]
    fn rebuild_clears_previous_round() {
        let mut s = Snapshot::empty(4);
        s.rebuild_from_edges(&[(0, 1), (2, 3)]);
        s.rebuild_from_edges(&[(1, 2)]);
        assert_eq!(s.edge_count(), 1);
        assert!(!s.has_edge(0, 1));
        assert!(s.has_edge(1, 2));
        s.rebuild_from_edges(&[]);
        assert!(s.is_edgeless());
    }

    #[test]
    fn edges_iterator_round_trip() {
        let mut s = Snapshot::empty(6);
        let edges = [(0, 5), (1, 3), (2, 4)];
        s.rebuild_from_edges(&edges);
        let mut seen: Vec<_> = s.edges().collect();
        seen.sort_unstable();
        assert_eq!(seen, edges);
    }

    #[test]
    fn to_graph_matches() {
        let mut s = Snapshot::empty(4);
        s.rebuild_from_edges(&[(0, 1), (1, 2)]);
        let g = s.to_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!dg_graph::traversal::is_connected(&g)); // node 3 isolated
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut s = Snapshot::empty(2);
        s.rebuild_from_edges(&[(0, 2)]);
    }
}
