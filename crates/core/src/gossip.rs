//! Randomized and resource-bounded transmission protocols (§5 of the
//! paper, plus the parsimonious variant of \[4\]).
//!
//! The paper's conclusion sketches the reduction: a protocol in which every
//! informed node transmits to a *random subset* of its neighbours is
//! exactly flooding on a "virtual" dynamic graph in which the
//! non-transmitting edges are removed. Three implementations are provided:
//!
//! * **per-edge thinning** — wrap the process in
//!   [`crate::ThinnedEvolvingGraph`] and run plain [`crate::flooding::flood`];
//! * **push-k** ([`push_spread`]) — each informed node transmits over at
//!   most `k` of its current edges per round, the classic bounded-fanout
//!   push gossip;
//! * **parsimonious flooding** ([`parsimonious_flood`]) — nodes relay only
//!   for a time-to-live window after becoming informed
//!   (Baumann–Crescenzi–Fraigniaud, PODC 2009 — reference \[4\] of the
//!   paper).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::flooding::FloodRun;
use crate::{mix_seed, EvolvingGraph};

/// Runs the push-`fanout` protocol from `source`: each round, each
/// informed node picks `min(fanout, deg)` distinct random current
/// neighbours and transmits to them.
///
/// With `fanout >= n` this degenerates to plain flooding. The returned
/// [`FloodRun`] has the same shape as a flooding run.
///
/// # Panics
///
/// Panics if `source` is out of range or `fanout == 0`.
///
/// # Examples
///
/// ```
/// use dynagraph::{gossip, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::complete(16));
/// let run = gossip::push_spread(&mut g, 0, 1, 100, 7);
/// // Push-1 on the complete graph needs ~log2(n) + ln(n) rounds, more
/// // than flooding's single round but still fast.
/// let t = run.flooding_time().unwrap();
/// assert!(t >= 4, "t = {t}");
/// assert!(t <= 40, "t = {t}");
/// ```
pub fn push_spread<G: EvolvingGraph + ?Sized>(
    g: &mut G,
    source: u32,
    fanout: usize,
    max_rounds: u32,
    seed: u64,
) -> FloodRun {
    assert!(fanout > 0, "fanout must be positive");
    let n = g.node_count();
    assert!((source as usize) < n, "source {source} out of range");
    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0x905517));
    let mut informed = vec![false; n];
    let mut informed_at = vec![FloodRun::UNINFORMED; n];
    let mut informed_list = vec![source];
    informed[source as usize] = true;
    informed_at[source as usize] = 0;
    let mut sizes = vec![1u32];
    let mut completed_at = if n == 1 { Some(0) } else { None };
    let mut new_nodes: Vec<u32> = Vec::new();
    let mut pick_buf: Vec<u32> = Vec::new();
    let mut t = 0u32;
    while completed_at.is_none() && t < max_rounds {
        let snap = g.step();
        new_nodes.clear();
        for &u in &informed_list {
            let neigh = snap.neighbors(u);
            if neigh.is_empty() {
                continue;
            }
            if neigh.len() <= fanout {
                for &v in neigh {
                    if !informed[v as usize] {
                        informed[v as usize] = true;
                        new_nodes.push(v);
                    }
                }
            } else {
                // Partial Fisher-Yates: draw `fanout` distinct targets.
                pick_buf.clear();
                pick_buf.extend_from_slice(neigh);
                for i in 0..fanout {
                    let j = rng.gen_range(i..pick_buf.len());
                    pick_buf.swap(i, j);
                    let v = pick_buf[i];
                    if !informed[v as usize] {
                        informed[v as usize] = true;
                        new_nodes.push(v);
                    }
                }
            }
        }
        t += 1;
        for &v in &new_nodes {
            informed_at[v as usize] = t;
        }
        informed_list.extend_from_slice(&new_nodes);
        sizes.push(informed_list.len() as u32);
        if informed_list.len() == n {
            completed_at = Some(t);
        }
    }
    FloodRun::from_parts(source, informed_at, sizes, completed_at)
}

/// Runs **parsimonious flooding** from `source`: a node relays only
/// during the `ttl` rounds following the round it became informed, then
/// falls silent (it stays informed — completion still means everyone
/// holds the message).
///
/// This is the protocol of Baumann–Crescenzi–Fraigniaud (\[4\] in the
/// paper): on fast-mixing dynamic graphs a constant `ttl` suffices
/// because the active frontier keeps meeting fresh nodes, while on slowly
/// changing graphs the message can die out — the returned run reports
/// `None` in that case.
///
/// With `ttl >= max_rounds` this is exactly plain flooding.
///
/// # Panics
///
/// Panics if `source` is out of range or `ttl == 0`.
///
/// # Examples
///
/// ```
/// use dynagraph::{gossip, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// // On a static path a TTL of 1 still completes: the frontier is always
/// // freshly informed.
/// let mut g = StaticEvolvingGraph::new(generators::path(6));
/// let run = gossip::parsimonious_flood(&mut g, 0, 1, 100);
/// assert_eq!(run.flooding_time(), Some(5));
/// ```
pub fn parsimonious_flood<G: EvolvingGraph + ?Sized>(
    g: &mut G,
    source: u32,
    ttl: u32,
    max_rounds: u32,
) -> FloodRun {
    assert!(ttl > 0, "ttl must be positive");
    let n = g.node_count();
    assert!((source as usize) < n, "source {source} out of range");
    let mut informed = vec![false; n];
    let mut informed_at = vec![FloodRun::UNINFORMED; n];
    // Nodes currently relaying, with the round they were informed.
    let mut active: Vec<u32> = vec![source];
    let mut informed_count = 1usize;
    informed[source as usize] = true;
    informed_at[source as usize] = 0;
    let mut sizes = vec![1u32];
    let mut completed_at = if n == 1 { Some(0) } else { None };
    let mut new_nodes: Vec<u32> = Vec::new();
    let mut t = 0u32;
    while completed_at.is_none() && t < max_rounds && !active.is_empty() {
        let snap = g.step();
        new_nodes.clear();
        for &u in &active {
            for &v in snap.neighbors(u) {
                if !informed[v as usize] {
                    informed[v as usize] = true;
                    new_nodes.push(v);
                }
            }
        }
        t += 1;
        for &v in &new_nodes {
            informed_at[v as usize] = t;
        }
        informed_count += new_nodes.len();
        // Retire nodes whose TTL expired; admit the newly informed.
        active.retain(|&u| {
            let at = informed_at[u as usize];
            debug_assert_ne!(at, FloodRun::UNINFORMED, "active nodes are informed");
            t < at + ttl
        });
        active.extend_from_slice(&new_nodes);
        sizes.push(informed_count as u32);
        if informed_count == n {
            completed_at = Some(t);
        }
    }
    // Pad the curve if the protocol died out before the round cap, so the
    // record still distinguishes "stalled" from "ran out of rounds".
    FloodRun::from_parts(source, informed_at, sizes, completed_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::flood;
    use crate::{StaticEvolvingGraph, ThinnedEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn huge_fanout_equals_flooding() {
        let graph = generators::grid(4, 4);
        let mut a = StaticEvolvingGraph::new(graph.clone());
        let mut b = StaticEvolvingGraph::new(graph);
        let flood_run = flood(&mut a, 0, 100);
        let push_run = push_spread(&mut b, 0, 100, 100, 3);
        assert_eq!(flood_run.flooding_time(), push_run.flooding_time());
        assert_eq!(flood_run.sizes(), push_run.sizes());
    }

    #[test]
    fn push_one_slower_than_flooding_on_star() {
        // Star: flooding from the center takes 1 round; push-1 informs one
        // leaf per round.
        let mut g = StaticEvolvingGraph::new(generators::star(10));
        let run = push_spread(&mut g, 0, 1, 100, 5);
        let t = run.flooding_time().unwrap();
        assert!(t >= 9, "t = {t}");
    }

    #[test]
    fn push_monotone_and_complete_on_connected() {
        let mut g = StaticEvolvingGraph::new(generators::cycle(12));
        let run = push_spread(&mut g, 0, 2, 1000, 9);
        assert!(run.flooding_time().is_some());
        for w in run.sizes().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn push_reproducible() {
        let mut g1 = StaticEvolvingGraph::new(generators::complete(20));
        let mut g2 = StaticEvolvingGraph::new(generators::complete(20));
        let a = push_spread(&mut g1, 0, 1, 100, 42);
        let b = push_spread(&mut g2, 0, 1, 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn thinned_flooding_is_gossip_reduction() {
        // §5 reduction: flooding over a thinned process is the random-
        // transmission protocol. On the complete graph with gamma = 0.5 it
        // still completes quickly.
        let inner = StaticEvolvingGraph::new(generators::complete(32));
        let mut virt = ThinnedEvolvingGraph::new(inner, 0.5, 8).unwrap();
        let run = flood(&mut virt, 0, 100);
        let t = run.flooding_time().unwrap();
        assert!(t <= 6, "t = {t}");
    }

    #[test]
    #[should_panic(expected = "fanout must be positive")]
    fn zero_fanout_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let _ = push_spread(&mut g, 0, 0, 10, 0);
    }

    #[test]
    fn parsimonious_large_ttl_equals_flooding() {
        let graph = generators::grid(4, 4);
        let mut a = StaticEvolvingGraph::new(graph.clone());
        let mut b = StaticEvolvingGraph::new(graph);
        let plain = flood(&mut a, 0, 100);
        let pars = parsimonious_flood(&mut b, 0, 100, 100);
        assert_eq!(plain.flooding_time(), pars.flooding_time());
        assert_eq!(plain.sizes(), pars.sizes());
    }

    #[test]
    fn parsimonious_dies_out_when_frontier_stalls() {
        // Edgeless process: the source's TTL expires with no one reached,
        // and the run stops as soon as the active set empties — well
        // before the round cap.
        let g = dg_graph::GraphBuilder::new(4).build();
        let mut g = StaticEvolvingGraph::new(g);
        let run = parsimonious_flood(&mut g, 0, 2, 1000);
        assert_eq!(run.flooding_time(), None);
        assert!(run.sizes().len() <= 3 + 1);
    }

    #[test]
    fn parsimonious_completes_on_fast_mixing_process() {
        // On a thinned complete graph (fresh edges every round) a TTL of 1
        // still floods: the frontier always faces fresh random links.
        let inner = StaticEvolvingGraph::new(generators::complete(32));
        let mut g = ThinnedEvolvingGraph::new(inner, 0.3, 11).unwrap();
        let run = parsimonious_flood(&mut g, 0, 1, 1000);
        assert!(run.flooding_time().is_some());
    }

    #[test]
    fn parsimonious_monotone_in_ttl() {
        // Larger TTL can only help (statistically; compare over trials).
        let mean = |ttl: u32| -> f64 {
            let mut total = 0.0;
            let trials = 10;
            for seed in 0..trials {
                let inner = StaticEvolvingGraph::new(generators::complete(24));
                let mut g = ThinnedEvolvingGraph::new(inner, 0.08, seed).unwrap();
                if let Some(t) = parsimonious_flood(&mut g, 0, ttl, 10_000).flooding_time() {
                    total += t as f64;
                } else {
                    total += 10_000.0;
                }
            }
            total / trials as f64
        };
        assert!(mean(8) <= mean(1) + 1.0);
    }

    #[test]
    #[should_panic(expected = "ttl must be positive")]
    fn zero_ttl_panics() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        let _ = parsimonious_flood(&mut g, 0, 0, 10);
    }
}
