//! Intra-trial sharding: one flooding trial across all cores.
//!
//! The engine's trial-level parallelism saturates cores only when there
//! are many trials; a *single* `n = 10^6` trial still ran on one core.
//! This module partitions the per-round hot path by node range and runs
//! it on `k` threads *inside* one trial:
//!
//! 1. **Lane step** — the model advances its fixed logical lanes (see
//!    [`ShardLane`]) concurrently, each recording churn into its own
//!    [`EdgeDelta`]; the coordinator concatenates them in lane order, so
//!    the merged delta is byte-identical to a serial sweep.
//! 2. **Partitioned apply** — disjoint node-range views of the shared
//!    [`DynAdjacency`] ([`DynAdjacency::range_shards`]) apply the merged
//!    delta's incident halves concurrently.
//! 3. **Frontier scan** — each node shard scans the flooding frontier
//!    and the round's added edges read-only, pre-filtering candidates
//!    against a `u64`-word informed bitset and routing them into
//!    per-destination-shard buckets; per-shard message partial sums
//!    replicate [`crate::engine::Flooding`]'s incremental
//!    informed-degree bookkeeping exactly.
//! 4. **Commit** — each shard informs its own nodes (dedup via its own
//!    64-bit-aligned bitset words; no atomics anywhere), and the
//!    coordinator splices the per-shard `new_nodes` in shard order.
//!
//! # Determinism
//!
//! The *realization* depends only on the model's fixed lane
//! decomposition and per-lane RNG streams — never on the thread count —
//! and every per-round quantity the engine records (informed counts,
//! rounds, messages, informed-at rounds) is a function of the informed
//! *set*, which each round's phases compute exactly. A trial run with
//! [`Shards::Fixed(8)`](Shards) is therefore byte-identical to the same
//! trial on the serial path, extending the repo's load-bearing
//! serial ≡ parallel pin down into a single trial (pinned by the
//! cross-crate suites and `benches/t18_shard`).

use crate::delta::{DynAdjacency, EdgeDelta};

/// Sentinel in the executor's informed-at array (same value as
/// [`crate::engine::SpreadView::UNINFORMED`]).
const UNINFORMED: u32 = u32::MAX;

/// One logical lane of a shardable model: an independently advanceable
/// slice of the model's pair space with its own RNG stream.
///
/// Lane decompositions are *fixed* (independent of the physical thread
/// count), so realizations depend only on `(model parameters, seed)`;
/// [`Shards`] chooses how many threads step the lanes, nothing more.
pub trait ShardLane: Send {
    /// Advances this lane one round, recording its churn into `delta`
    /// (the caller has already called [`EdgeDelta::begin_round`]).
    ///
    /// With `emit_full`, the delta baseline is broken (first round after
    /// a reset/rebase): advance *without* recording churn, then record
    /// the lane's entire post-advance edge set as added — the lane-local
    /// piece of the delta contract's full emission.
    fn step_round(&mut self, delta: &mut EdgeDelta, emit_full: bool);
}

/// A model's lane decomposition, exposed to the sharded executor via
/// [`crate::EvolvingGraph::sharding`].
pub trait ShardAccess {
    /// Mutable references to every lane, in lane order. Called once per
    /// trial; the executor steps these for the whole round loop.
    fn lanes(&mut self) -> Vec<&mut dyn ShardLane>;
}

/// The engine's intra-trial shard axis: how many threads execute a
/// single trial's round loop.
///
/// Takes effect only when the model exposes a lane decomposition
/// ([`crate::EvolvingGraph::sharding`]) and the protocol supports
/// sharded execution (flooding); otherwise the engine silently runs the
/// usual serial paths. `usize` converts via `From`, so
/// `builder.shards(8)` and `builder.shards(Shards::Auto)` both read
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shards {
    /// One thread per available core
    /// ([`std::thread::available_parallelism`]).
    Auto,
    /// Exactly this many threads (clamped to at least 1).
    Fixed(usize),
}

impl Default for Shards {
    /// `Fixed(1)`: single-threaded trials, the engine's historical
    /// behavior.
    fn default() -> Self {
        Shards::Fixed(1)
    }
}

impl Shards {
    /// The concrete thread count this setting resolves to here and now.
    pub fn resolve(self) -> usize {
        match self {
            Shards::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Shards::Fixed(k) => k.max(1),
        }
    }
}

impl From<usize> for Shards {
    fn from(k: usize) -> Self {
        Shards::Fixed(k)
    }
}

/// Per-shard outputs of the read-only frontier/churn scan (phase 3).
#[derive(Debug, Default)]
struct Gather {
    /// In-range candidates from the round's added edges.
    own_cands: Vec<u32>,
    /// Frontier-scan candidates routed per destination shard.
    buckets: Vec<Vec<u32>>,
    /// Removed-edge halves whose endpoint was informed before this
    /// round (the negative churn term of the message count).
    removed_informed: u64,
    /// Added-edge halves whose endpoint was informed before this round.
    added_informed: u64,
    /// Post-apply degree sum of in-range frontier nodes.
    frontier_degree: u64,
}

impl Gather {
    fn begin_round(&mut self) {
        self.own_cands.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.removed_informed = 0;
        self.added_informed = 0;
        self.frontier_degree = 0;
    }
}

/// Reusable state of the sharded executor — lives in the engine's
/// per-worker [`crate::engine::TrialScratch`] so consecutive sharded
/// trials allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct ShardScratch {
    /// One churn buffer per model lane (phase 1 outputs).
    lane_deltas: Vec<EdgeDelta>,
    /// The round's lane deltas concatenated in lane order.
    merged: EdgeDelta,
    /// The incrementally maintained edge set, applied partitioned.
    pub(crate) adj: DynAdjacency,
    /// Informed bitset, one bit per node; shard boundaries are 64-node
    /// aligned so each shard owns whole words.
    bits: Vec<u64>,
    /// Round each node was informed ([`UNINFORMED`] sentinel).
    pub(crate) informed_at: Vec<u32>,
    /// Informed nodes in the order they were committed.
    pub(crate) informed_list: Vec<u32>,
    /// Per-shard scan outputs.
    gather: Vec<Gather>,
    /// Per-shard commit outputs (nodes informed this round).
    new_nodes: Vec<Vec<u32>>,
}

impl ShardScratch {
    fn prepare(&mut self, n: usize, shards: usize, lanes: usize) {
        self.lane_deltas.resize_with(lanes, EdgeDelta::default);
        for d in &mut self.lane_deltas {
            d.clear();
        }
        self.merged.clear();
        self.adj.reset(n);
        self.bits.clear();
        self.bits.resize(n.div_ceil(64), 0);
        self.informed_at.clear();
        self.informed_at.resize(n, UNINFORMED);
        self.informed_list.clear();
        self.gather.resize_with(shards, Gather::default);
        for g in &mut self.gather {
            g.buckets.resize_with(shards, Vec::new);
            g.buckets.truncate(shards);
        }
        self.new_nodes.resize_with(shards, Vec::new);
    }
}

/// What the executor reports after each committed round — enough for
/// the engine to drive observers and for [`crate::flooding`] to build a
/// [`crate::flooding::FloodRun`].
pub(crate) struct RoundEvent<'a> {
    /// The (1-based) round that just completed.
    pub round: u32,
    /// Nodes informed this round, in shard-commit order.
    pub newly_informed: &'a [u32],
    /// `|I_t|` after this round.
    pub informed_count: usize,
    /// Messages transmitted this round.
    pub messages: u64,
    /// The round's merged churn (full emission on round 1).
    pub delta: &'a EdgeDelta,
    /// The post-apply edge set, for observers that need snapshots.
    pub adj: &'a mut DynAdjacency,
}

/// Terminal summary of one sharded flooding trial.
pub(crate) struct ShardOutcome {
    /// Round at which the last node was informed, if flooding completed.
    pub completed: Option<u32>,
    /// Rounds executed.
    pub rounds: u32,
    /// Total messages across all executed rounds.
    pub messages: u64,
    /// Nodes informed by the end of the run.
    pub informed: usize,
}

/// Runs one flooding trial over the model's lanes on `threads` threads.
///
/// Semantics (round structure, message counts, completion) replicate
/// the engine's delta path with the [`crate::engine::Flooding`]
/// protocol exactly; see the module docs for the phase breakdown and
/// the determinism argument.
pub(crate) fn flood_sharded_core(
    n: usize,
    access: &mut dyn ShardAccess,
    sources: &[u32],
    max_rounds: u32,
    threads: usize,
    scratch: &mut ShardScratch,
    mut on_round: impl FnMut(RoundEvent<'_>),
) -> ShardOutcome {
    let threads = threads.max(1);
    // 64-aligned shard width, so bitset words never straddle shards.
    let span = n.div_ceil(threads).next_multiple_of(64);
    let shards = n.div_ceil(span);
    let word_span = span / 64;

    let mut lanes = access.lanes();
    scratch.prepare(n, shards, lanes.len());

    for &s in sources {
        assert!((s as usize) < n, "flood source {s} out of range");
        assert_eq!(
            scratch.informed_at[s as usize], UNINFORMED,
            "duplicate flood source {s}"
        );
        scratch.informed_at[s as usize] = 0;
        scratch.bits[s as usize / 64] |= 1 << (s % 64);
        scratch.informed_list.push(s);
    }

    let mut completed = (scratch.informed_list.len() == n).then_some(0u32);
    let mut t: u32 = 0;
    let mut frontier_start = 0usize;
    let mut informed_degree: u64 = 0;
    let mut messages_total: u64 = 0;

    while completed.is_none() && t < max_rounds {
        // Phase 1: step the lanes, round-robin across threads (lane
        // pair-mass grows with the node id, so striding balances better
        // than contiguous chunks).
        let emit_full = t == 0;
        {
            let workers = threads.min(lanes.len()).max(1);
            let mut work: Vec<Vec<(&mut dyn ShardLane, &mut EdgeDelta)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, (lane, delta)) in lanes
                .iter_mut()
                .zip(scratch.lane_deltas.iter_mut())
                .enumerate()
            {
                work[i % workers].push((&mut **lane, delta));
            }
            run_parallel(work, |unit| {
                for (lane, delta) in unit {
                    delta.begin_round();
                    lane.step_round(delta, emit_full);
                }
            });
        }

        // Merge in lane order: byte-identical to a serial lane sweep.
        scratch.merged.begin_round();
        for ld in &scratch.lane_deltas {
            scratch.merged.merge_from(ld);
        }
        if dg_obs::enabled() {
            crate::engine::instrument::shard_obs()
                .record_round(scratch.lane_deltas.iter().map(|d| d.churn() as u64));
        }

        // Phase 2: partitioned apply (bulk-load fast path on the full
        // emission, like the serial DynAdjacency::apply).
        let bulk = scratch.adj.is_edgeless() && scratch.merged.removed().is_empty();
        {
            let merged = &scratch.merged;
            let ranges = scratch.adj.range_shards(span);
            run_parallel(ranges, |mut r| {
                if bulk {
                    r.bulk_load_own_halves(merged.added());
                } else {
                    r.apply_own_halves(merged);
                }
            });
        }
        scratch.adj.commit_partitioned(&scratch.merged);

        // Phase 3: read-only frontier + churn scan per node shard.
        {
            let adj = &scratch.adj;
            let merged = &scratch.merged;
            let bits = &scratch.bits;
            let informed_at = &scratch.informed_at;
            let frontier = &scratch.informed_list[frontier_start..];
            let units: Vec<(usize, &mut Gather)> = scratch.gather.iter_mut().enumerate().collect();
            run_parallel(units, |(s, g)| {
                g.begin_round();
                let lo = (s * span) as u32;
                let hi = ((s + 1) * span).min(n) as u32;
                let owns = |x: u32| x >= lo && x < hi;
                // "Informed before this round" excludes the current
                // frontier — the exact predicate of the serial
                // Flooding::transmit_delta message bookkeeping.
                let informed_before = |x: u32| informed_at[x as usize] < t;
                let informed_now = |x: u32| bits[x as usize / 64] >> (x % 64) & 1 == 1;
                for &(u, v) in merged.removed() {
                    if owns(u) && informed_before(u) {
                        g.removed_informed += 1;
                    }
                    if owns(v) && informed_before(v) {
                        g.removed_informed += 1;
                    }
                }
                for &(u, v) in merged.added() {
                    if owns(u) {
                        if informed_before(u) {
                            g.added_informed += 1;
                        }
                        if !informed_now(u) && informed_now(v) {
                            g.own_cands.push(u);
                        }
                    }
                    if owns(v) {
                        if informed_before(v) {
                            g.added_informed += 1;
                        }
                        if !informed_now(v) && informed_now(u) {
                            g.own_cands.push(v);
                        }
                    }
                }
                for &f in frontier {
                    if !owns(f) {
                        continue;
                    }
                    g.frontier_degree += adj.degree(f) as u64;
                    for &w in adj.neighbors(f) {
                        if !informed_now(w) {
                            g.buckets[w as usize / span].push(w);
                        }
                    }
                }
            });
        }

        // Phase 4: commit — each shard informs its own nodes (its own
        // bitset words and informed-at slice; no write sharing), then
        // the coordinator splices new nodes in shard order.
        {
            // One shard's writable state: (shard index, bitset words,
            // informed-at slice, newly-informed list).
            type CommitUnit<'a> = (usize, &'a mut [u64], &'a mut [u32], &'a mut Vec<u32>);
            let gather = &scratch.gather;
            let units: Vec<CommitUnit<'_>> = scratch
                .bits
                .chunks_mut(word_span)
                .zip(scratch.informed_at.chunks_mut(span))
                .zip(scratch.new_nodes.iter_mut())
                .enumerate()
                .map(|(s, ((words, at), news))| (s, words, at, news))
                .collect();
            let round_informed = t + 1;
            run_parallel(units, |(s, words, at, news)| {
                news.clear();
                let base = (s * span) as u32;
                for &v in &gather[s].own_cands {
                    commit(v, base, round_informed, words, at, news);
                }
                for src in gather {
                    for &v in &src.buckets[s] {
                        commit(v, base, round_informed, words, at, news);
                    }
                }
            });
        }

        t += 1;
        let mut added = 0u64;
        let mut removed = 0u64;
        let mut frontier_deg = 0u64;
        for g in &scratch.gather {
            added += g.added_informed;
            removed += g.removed_informed;
            frontier_deg += g.frontier_degree;
        }
        informed_degree = informed_degree + added - removed + frontier_deg;
        messages_total += informed_degree;
        frontier_start = scratch.informed_list.len();
        for news in &scratch.new_nodes {
            scratch.informed_list.extend_from_slice(news);
        }
        if scratch.informed_list.len() == n {
            completed = Some(t);
        }
        on_round(RoundEvent {
            round: t,
            newly_informed: &scratch.informed_list[frontier_start..],
            informed_count: scratch.informed_list.len(),
            messages: informed_degree,
            delta: &scratch.merged,
            adj: &mut scratch.adj,
        });
    }

    ShardOutcome {
        completed,
        rounds: t,
        messages: messages_total,
        informed: scratch.informed_list.len(),
    }
}

/// Marks `v` informed in its shard's bitset words, recording its round
/// and membership — the dedup point where a node reachable through
/// several candidates is informed exactly once.
#[inline]
fn commit(v: u32, base: u32, round: u32, words: &mut [u64], at: &mut [u32], news: &mut Vec<u32>) {
    let local = (v - base) as usize;
    let w = local / 64;
    let m = 1u64 << (local % 64);
    if words[w] & m == 0 {
        words[w] |= m;
        at[local] = round;
        news.push(v);
    }
}

/// Runs one closure invocation per unit, on one scoped thread each —
/// inline (no spawn) when there is a single unit, which is also the
/// `shards = 1` serial reference path.
fn run_parallel<T: Send>(mut units: Vec<T>, f: impl Fn(T) + Sync) {
    if units.len() <= 1 {
        if let Some(unit) = units.pop() {
            f(unit);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        for unit in units.drain(..) {
            scope.spawn(move || f(unit));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_resolve_and_convert() {
        assert_eq!(Shards::Fixed(4).resolve(), 4);
        assert_eq!(Shards::Fixed(0).resolve(), 1);
        assert!(Shards::Auto.resolve() >= 1);
        assert_eq!(Shards::from(8), Shards::Fixed(8));
        assert_eq!(Shards::default(), Shards::Fixed(1));
    }

    #[test]
    fn run_parallel_covers_every_unit() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        run_parallel((1u64..=100).collect(), |x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
        // Single unit: inline path.
        run_parallel(vec![7u64], |x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5057);
        run_parallel(Vec::<u64>::new(), |_| unreachable!());
    }
}
