//! Error type for the dynagraph crate.

use core::fmt;

/// Errors from constructing dynamic-graph processes or analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DynagraphError {
    /// A numeric parameter was outside its legal range.
    ParameterOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A node index was out of range for the process.
    NodeOutOfRange {
        /// The offending node.
        node: u32,
        /// The process size.
        node_count: usize,
    },
    /// A matrix/map that must be symmetric was not.
    NotSymmetric,
    /// Dimensions of two arguments disagreed.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
}

impl fmt::Display for DynagraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynagraphError::ParameterOutOfRange { name, value } => {
                write!(f, "parameter {name} = {value} out of range")
            }
            DynagraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for process on {node_count} nodes"
                )
            }
            DynagraphError::NotSymmetric => write!(f, "connection map must be symmetric"),
            DynagraphError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for DynagraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            DynagraphError::ParameterOutOfRange {
                name: "gamma",
                value: 2.0,
            },
            DynagraphError::NodeOutOfRange {
                node: 5,
                node_count: 3,
            },
            DynagraphError::NotSymmetric,
            DynagraphError::DimensionMismatch {
                expected: 2,
                found: 3,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
