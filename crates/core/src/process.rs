//! The dynamic-graph process abstraction and generic combinators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{DynagraphError, EdgeDelta, Snapshot};

/// A dynamic graph `G([n], {E_t})` in the sense of §2 of the paper: a
/// synchronous stochastic process producing one edge set per round over a
/// fixed vertex set `[n]`.
///
/// Implementations own their randomness: [`EvolvingGraph::reset`]
/// re-initializes the process from its initial distribution with a given
/// seed, making every experiment reproducible.
///
/// The class of processes is deliberately broader than Markovian evolving
/// graphs — the paper's Theorem 1 is stated for arbitrary
/// `(M, α, β)`-stationary processes — so nothing here assumes the
/// Markov property.
pub trait EvolvingGraph {
    /// Number of nodes `n`.
    fn node_count(&self) -> usize;

    /// Advances the process one round and exposes the new edge set `E_t`.
    ///
    /// The first call after construction or [`EvolvingGraph::reset`]
    /// produces `E_0`.
    fn step(&mut self) -> &Snapshot;

    /// Re-initializes the process from its initial distribution, seeding
    /// all internal randomness from `seed`.
    ///
    /// # The reuse contract
    ///
    /// `reset(s)` must leave the process **observably identical to a
    /// fresh construction with seed `s`**: the same realization (edge-set
    /// sequence, on both stepping paths) from the same seed, with no
    /// residue of earlier rounds — including any lazily grown internal
    /// state. This is what lets the engine and sweep layers build one
    /// model per worker and re-randomize it in place between trials
    /// instead of reconstructing (zero-rebuild trials); the cross-crate
    /// property suites pin the equivalence for every model in the
    /// workspace via [`crate::assert_reset_matches_fresh`].
    ///
    /// Wrappers over an inner process ([`ThinnedEvolvingGraph`],
    /// [`JammedEvolvingGraph`]) reset the inner model with the **same**
    /// seed they receive, so the canonical factory shape
    /// `Wrapper::new(inner_constructor(seed), ..., seed)` is
    /// reset-equivalent by construction. Streams of *different* layers
    /// stay independent only through each model's internal derivation
    /// tag — so stacking two wrappers of the **same type** on one seed
    /// would hand both layers the identical coin sequence; give each
    /// layer of a same-type stack its own derived seed (e.g.
    /// `mix_seed(seed, depth)`) at construction *and* accept that such
    /// a factory is not reset-equivalent, or avoid same-type stacking.
    ///
    /// `reset` must also break the delta baseline (like construction,
    /// the next [`EvolvingGraph::step_delta`] is a full emission), and
    /// be idempotent: `reset(s); reset(s)` ≡ `reset(s)`.
    fn reset(&mut self, seed: u64);

    /// Advances the process one round and records the edge churn relative
    /// to the previous round into `delta`.
    ///
    /// Consumes exactly the same randomness as [`EvolvingGraph::step`]
    /// would for the same round, so the two stepping paths produce
    /// identical realizations from the same seed.
    ///
    /// # Contract
    ///
    /// The delta is relative to the edge set exposed by the *previous*
    /// `step`/`step_delta` call. After construction,
    /// [`EvolvingGraph::reset`], [`EvolvingGraph::warm_up`], or a plain
    /// `step`, the next `step_delta` describes the full edge set relative
    /// to the empty graph — so a freshly created
    /// [`crate::DynAdjacency`] synchronizes on its first
    /// [`apply`](crate::DynAdjacency::apply).
    ///
    /// The default implementation steps the snapshot path and diffs
    /// against the previous snapshot (scratch lives inside `delta`, so
    /// reuse the same buffer across rounds); implement it natively — and
    /// flag it via [`EvolvingGraph::has_native_deltas`] — when the model
    /// can enumerate its churn in `O(churn)`.
    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        let snap = self.step();
        delta.diff_snapshot(snap);
    }

    /// `true` when [`EvolvingGraph::step_delta`] is implemented natively
    /// (per-round cost proportional to churn, no snapshot
    /// materialization). Consumers like the engine and
    /// [`crate::flooding::flood`] use this to pick the delta path
    /// automatically.
    fn has_native_deltas(&self) -> bool {
        false
    }

    /// Forgets the delta baseline: the next [`EvolvingGraph::step_delta`]
    /// emits the full edge set relative to the empty graph.
    ///
    /// Models with native deltas must implement this (the default
    /// snapshot-diffing path keeps its baseline inside the consumer's
    /// [`EdgeDelta`], so the default is a no-op).
    fn rebase_deltas(&mut self) {}

    /// Advances the process `rounds` rounds, discarding the edge sets.
    ///
    /// Used to let a Markovian process approach its stationary
    /// distribution before measurements begin (the paper's bounds are for
    /// *stationary* MEGs). Models with native deltas warm up on the delta
    /// path — `O(churn)` per round, no snapshot ever materialized — and
    /// are rebased afterwards, so the next `step_delta` emits the full
    /// (warmed-up) edge set; everything else just steps (diffing would be
    /// pure overhead for a discarded round).
    fn warm_up(&mut self, rounds: usize) {
        if self.has_native_deltas() {
            let mut scratch = EdgeDelta::new();
            for _ in 0..rounds {
                self.step_delta(&mut scratch);
            }
            self.rebase_deltas();
        } else {
            for _ in 0..rounds {
                self.step();
            }
        }
    }

    /// Exposes the model's lane decomposition to the engine's intra-trial
    /// sharded executor ([`crate::shard`]), if it has one.
    ///
    /// Models that can advance disjoint slices of their pair space
    /// independently (fixed logical lanes with per-lane RNG streams,
    /// like `dg-edge-meg`'s `ShardedSparseEdgeMeg`) return their
    /// [`ShardAccess`](crate::shard::ShardAccess) view here; the engine
    /// then steps the lanes on several threads within a *single* trial.
    /// The default `None` keeps every existing model on the serial
    /// per-round path — the engine silently falls back.
    fn sharding(&mut self) -> Option<&mut dyn crate::shard::ShardAccess> {
        None
    }
}

/// The degenerate dynamic graph whose snapshot never changes.
///
/// Flooding on a `StaticEvolvingGraph` is plain BFS, which makes this the
/// reference point for tests and the trivial `Ω(D)` lower bounds quoted in
/// §4.1.
///
/// # Examples
///
/// ```
/// use dynagraph::{EvolvingGraph, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::path(4));
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.step().edge_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct StaticEvolvingGraph {
    snapshot: Snapshot,
    edges: Vec<(u32, u32)>,
    synced: bool,
}

impl StaticEvolvingGraph {
    /// Wraps a static graph.
    pub fn new(graph: dg_graph::Graph) -> Self {
        let mut snapshot = Snapshot::empty(graph.node_count());
        let edges: Vec<(u32, u32)> = graph.edges().collect();
        snapshot.rebuild_from_edges(&edges);
        let edges = snapshot.edges().collect();
        StaticEvolvingGraph {
            snapshot,
            edges,
            synced: false,
        }
    }
}

impl EvolvingGraph for StaticEvolvingGraph {
    fn node_count(&self) -> usize {
        self.snapshot.node_count()
    }

    fn step(&mut self) -> &Snapshot {
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        delta.begin_round();
        if !self.synced {
            delta.record_full(self.edges.iter().copied());
            self.synced = true;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, _seed: u64) {
        self.synced = false;
    }
}

/// A deterministic, periodic (hence non-Markovian in general) dynamic
/// graph cycling through a fixed list of snapshots.
///
/// Used to exercise the claim that the framework — and the
/// `(M, α, β)`-stationarity analysis of §3 — does not require the Markov
/// property, and as an adversarial fixture in tests.
#[derive(Debug, Clone)]
pub struct PeriodicEvolvingGraph {
    snapshots: Vec<Snapshot>,
    /// `deltas[i]` is the churn from `snapshots[i]` to
    /// `snapshots[(i + 1) % period]`, precomputed at construction.
    deltas: Vec<crate::delta::DeltaPair>,
    cursor: usize,
    synced: bool,
}

impl PeriodicEvolvingGraph {
    /// Builds a periodic process from a non-empty list of graphs on the
    /// same vertex set.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::DimensionMismatch`] if the list is empty
    /// or the graphs disagree on the node count.
    pub fn new(graphs: &[dg_graph::Graph]) -> Result<Self, DynagraphError> {
        let n = graphs
            .first()
            .ok_or(DynagraphError::DimensionMismatch {
                expected: 1,
                found: 0,
            })?
            .node_count();
        let mut snapshots = Vec::with_capacity(graphs.len());
        for g in graphs {
            if g.node_count() != n {
                return Err(DynagraphError::DimensionMismatch {
                    expected: n,
                    found: g.node_count(),
                });
            }
            let mut s = Snapshot::empty(n);
            let edges: Vec<(u32, u32)> = g.edges().collect();
            s.rebuild_from_edges(&edges);
            snapshots.push(s);
        }
        let edge_lists: Vec<Vec<(u32, u32)>> =
            snapshots.iter().map(|s| s.edges().collect()).collect();
        let period = snapshots.len();
        let mut scratch = EdgeDelta::new();
        let deltas = (0..period)
            .map(|i| {
                scratch.record_transition(&edge_lists[i], &edge_lists[(i + 1) % period]);
                (scratch.added().to_vec(), scratch.removed().to_vec())
            })
            .collect();
        Ok(PeriodicEvolvingGraph {
            snapshots,
            deltas,
            cursor: 0,
            synced: false,
        })
    }

    /// The period length.
    pub fn period(&self) -> usize {
        self.snapshots.len()
    }
}

impl EvolvingGraph for PeriodicEvolvingGraph {
    fn node_count(&self) -> usize {
        self.snapshots[0].node_count()
    }

    fn step(&mut self) -> &Snapshot {
        self.synced = false;
        let s = &self.snapshots[self.cursor];
        self.cursor = (self.cursor + 1) % self.snapshots.len();
        s
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        let period = self.snapshots.len();
        if self.synced {
            let from = (self.cursor + period - 1) % period;
            let (added, removed) = &self.deltas[from];
            delta.begin_round();
            for &e in added {
                delta.push_added(e);
            }
            for &e in removed {
                delta.push_removed(e);
            }
        } else {
            delta.record_full(self.snapshots[self.cursor].edges());
            self.synced = true;
        }
        self.cursor = (self.cursor + 1) % period;
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, _seed: u64) {
        self.cursor = 0;
        self.synced = false;
    }
}

/// Shared delta-native bookkeeping of the §5 wrappers: the inner
/// process's current edge set maintained as a sorted flat list (fed by
/// the inner delta stream), plus the wrapper's own previous visible set.
///
/// Both wrappers re-decide *every* inner edge's visibility each round
/// (survival coins / fresh victims), so their per-round floor is
/// `O(|E_t^inner|)` whatever the representation; this bookkeeping keeps
/// them at exactly that floor — no CSR materialization, no `O(n)`
/// snapshot term — which is what matters in the paper's very sparse
/// regimes where `|E_t| ≪ n`.
#[derive(Debug, Clone, Default)]
struct WrapperDeltaState {
    /// Reusable buffer for the inner process's per-round churn.
    inner_delta: EdgeDelta,
    /// The inner process's current edge set, lexicographically sorted.
    inner_edges: Vec<(u32, u32)>,
    /// Reusable merge target for `apply_to_sorted_with` (swapped with
    /// `inner_edges` each round, so steady state allocates nothing).
    merge_scratch: Vec<(u32, u32)>,
    /// The wrapper's previous visible (thinned/unjammed) edge set, sorted.
    visible: Vec<(u32, u32)>,
    /// Scratch for this round's visible set.
    next_visible: Vec<(u32, u32)>,
    /// `true` when `inner_edges` tracks the inner delta baseline; a plain
    /// `step`/`reset` invalidates it and forces a rebase + full re-sync.
    inner_synced: bool,
    /// `true` when the consumer's baseline matches `visible`; when
    /// false the next delta is a full emission.
    synced: bool,
}

impl WrapperDeltaState {
    /// Advances the inner process one round on the delta path and brings
    /// `inner_edges` up to date, rebasing first if a plain `step` or a
    /// `reset` broke the baseline.
    fn step_inner<G: EvolvingGraph>(&mut self, inner: &mut G) {
        if !self.inner_synced {
            inner.rebase_deltas();
            self.inner_delta.clear();
            self.inner_edges.clear();
            self.inner_synced = true;
        }
        inner.step_delta(&mut self.inner_delta);
        self.inner_delta
            .apply_to_sorted_with(&mut self.inner_edges, &mut self.merge_scratch);
    }

    /// Emits the wrapper's delta for this round — a transition against
    /// the previous visible set, or a full emission after a baseline
    /// break — and rolls `next_visible` into `visible`.
    fn emit(&mut self, delta: &mut EdgeDelta) {
        if self.synced {
            delta.record_transition(&self.visible, &self.next_visible);
        } else {
            delta.record_full(self.next_visible.iter().copied());
            self.synced = true;
        }
        std::mem::swap(&mut self.visible, &mut self.next_visible);
    }

    /// A plain `step` (or `reset`) happened: both baselines are stale.
    fn invalidate(&mut self) {
        self.inner_synced = false;
        self.synced = false;
    }
}

/// Independently keeps each edge of an inner process with probability
/// `gamma` each round — the "virtual dynamic graph in which a subset of
/// the edges are removed" of §5, used to reduce randomized transmission
/// protocols to plain flooding.
///
/// Both stepping paths draw one survival coin per inner edge in
/// lexicographic edge order, so `step` and
/// [`step_delta`](EvolvingGraph::step_delta) realize byte-identical
/// thinned sequences from the same seed; the delta path just never
/// materializes a snapshot.
///
/// # Examples
///
/// ```
/// use dynagraph::{EvolvingGraph, StaticEvolvingGraph, ThinnedEvolvingGraph};
/// use dg_graph::generators;
///
/// let inner = StaticEvolvingGraph::new(generators::complete(20));
/// let mut thin = ThinnedEvolvingGraph::new(inner, 0.1, 7).unwrap();
/// let m = thin.step().edge_count();
/// assert!(m < 190); // w.o.p. far fewer than all 190 edges survive
/// ```
#[derive(Debug, Clone)]
pub struct ThinnedEvolvingGraph<G> {
    inner: G,
    gamma: f64,
    rng: SmallRng,
    seed: u64,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    delta_state: WrapperDeltaState,
}

impl<G: EvolvingGraph> ThinnedEvolvingGraph<G> {
    /// Wraps `inner`, keeping each edge with probability `gamma` per round.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::ParameterOutOfRange`] unless
    /// `gamma ∈ [0, 1]`.
    pub fn new(inner: G, gamma: f64, seed: u64) -> Result<Self, DynagraphError> {
        if !(0.0..=1.0).contains(&gamma) || !gamma.is_finite() {
            return Err(DynagraphError::ParameterOutOfRange {
                name: "gamma",
                value: gamma,
            });
        }
        let n = inner.node_count();
        Ok(ThinnedEvolvingGraph {
            inner,
            gamma,
            rng: SmallRng::seed_from_u64(crate::mix_seed(seed, 0xC0FFEE)),
            seed,
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            delta_state: WrapperDeltaState::default(),
        })
    }

    /// The survival probability per edge per round.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The wrapped process.
    pub fn inner(&self) -> &G {
        &self.inner
    }
}

impl<G: EvolvingGraph> EvolvingGraph for ThinnedEvolvingGraph<G> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn step(&mut self) -> &Snapshot {
        let inner_snap = self.inner.step();
        self.edge_buf.clear();
        for (u, v) in inner_snap.edges() {
            if self.rng.gen_bool(self.gamma) {
                self.edge_buf.push((u, v));
            }
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.delta_state.invalidate();
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        self.delta_state.step_inner(&mut self.inner);
        // Survival sweep in sorted edge order — the exact order `step`
        // iterates the inner CSR snapshot, so the RNG stream (and the
        // realized thinned sequence) is identical on both paths.
        self.delta_state.next_visible.clear();
        for &(u, v) in &self.delta_state.inner_edges {
            if self.rng.gen_bool(self.gamma) {
                self.delta_state.next_visible.push((u, v));
            }
        }
        self.delta_state.emit(delta);
    }

    fn has_native_deltas(&self) -> bool {
        // The wrapper itself is delta-native; claim the fast path only
        // when the whole stack is, so `Stepping::Auto` stays honest for
        // wrapped third-party models.
        self.inner.has_native_deltas()
    }

    fn rebase_deltas(&mut self) {
        self.delta_state.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.seed = seed;
        // Same seed as the canonical factory hands the inner constructor
        // (reset-equivalence, see the trait docs); the wrapper's own
        // stream stays independent through its 0xC0FFEE tag.
        self.inner.reset(seed);
        self.rng = SmallRng::seed_from_u64(crate::mix_seed(seed, 0xC0FFEE));
        self.delta_state.invalidate();
        self.delta_state.visible.clear();
    }
}

/// Failure injection: each round, `victims_per_round` uniformly chosen
/// nodes are *jammed* — all of their incident edges are removed from the
/// snapshot (radio jamming / crash-for-a-round semantics).
///
/// Jamming preserves the Markov property of the wrapped process (victims
/// are chosen freshly each round), so the `(M, α, β)` analysis of §3
/// still applies with `α` scaled by the probability that neither endpoint
/// is jammed.
///
/// # Examples
///
/// ```
/// use dynagraph::{EvolvingGraph, JammedEvolvingGraph, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let inner = StaticEvolvingGraph::new(generators::complete(10));
/// let mut g = JammedEvolvingGraph::new(inner, 2, 1).unwrap();
/// // Two jammed nodes lose all 9 incident edges each (minus the shared one).
/// assert!(g.step().edge_count() <= 28);
/// ```
#[derive(Debug, Clone)]
pub struct JammedEvolvingGraph<G> {
    inner: G,
    victims_per_round: usize,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    jammed: Vec<bool>,
    delta_state: WrapperDeltaState,
}

impl<G: EvolvingGraph> JammedEvolvingGraph<G> {
    /// Wraps `inner`, jamming `victims_per_round` random nodes each round.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::ParameterOutOfRange`] when
    /// `victims_per_round` exceeds the node count.
    pub fn new(inner: G, victims_per_round: usize, seed: u64) -> Result<Self, DynagraphError> {
        let n = inner.node_count();
        if victims_per_round > n {
            return Err(DynagraphError::ParameterOutOfRange {
                name: "victims_per_round",
                value: victims_per_round as f64,
            });
        }
        Ok(JammedEvolvingGraph {
            inner,
            victims_per_round,
            rng: SmallRng::seed_from_u64(crate::mix_seed(seed, 0x7A33)),
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            jammed: vec![false; n],
            delta_state: WrapperDeltaState::default(),
        })
    }

    /// Victims jammed per round.
    pub fn victims_per_round(&self) -> usize {
        self.victims_per_round
    }

    /// Draws this round's victim set — rejection sampling without
    /// replacement, shared verbatim by both stepping paths so the
    /// wrapper's RNG stream is identical either way.
    fn draw_victims(&mut self) {
        let n = self.jammed.len();
        self.jammed.fill(false);
        let mut chosen = 0usize;
        while chosen < self.victims_per_round {
            let v = self.rng.gen_range(0..n);
            if !self.jammed[v] {
                self.jammed[v] = true;
                chosen += 1;
            }
        }
    }
}

impl<G: EvolvingGraph> EvolvingGraph for JammedEvolvingGraph<G> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn step(&mut self) -> &Snapshot {
        self.draw_victims();
        let jammed = &self.jammed;
        let inner_snap = self.inner.step();
        self.edge_buf.clear();
        for (u, v) in inner_snap.edges() {
            if !jammed[u as usize] && !jammed[v as usize] {
                self.edge_buf.push((u, v));
            }
        }
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.delta_state.invalidate();
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        // Victims first, then the inner step — the same order as `step`,
        // so the victim draws consume the identical RNG prefix.
        self.draw_victims();
        self.delta_state.step_inner(&mut self.inner);
        self.delta_state.next_visible.clear();
        for &(u, v) in &self.delta_state.inner_edges {
            if !self.jammed[u as usize] && !self.jammed[v as usize] {
                self.delta_state.next_visible.push((u, v));
            }
        }
        self.delta_state.emit(delta);
    }

    fn has_native_deltas(&self) -> bool {
        self.inner.has_native_deltas()
    }

    fn rebase_deltas(&mut self) {
        self.delta_state.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        // Same seed to the inner as the canonical factory uses; the
        // jamming stream stays independent through its 0x7A33 tag.
        self.inner.reset(seed);
        self.rng = SmallRng::seed_from_u64(crate::mix_seed(seed, 0x7A33));
        self.delta_state.invalidate();
        self.delta_state.visible.clear();
    }
}

/// Test/diagnostics helper pinning the [`EvolvingGraph::reset`] reuse
/// contract: a *used* instance (constructed with a different seed and
/// stepped for a while) that is `reset(seed)` must realize exactly the
/// snapshot sequence of a freshly constructed `make(seed)` — and, via a
/// second pass through [`crate::delta::assert_replays_rebuild`], the
/// identical delta stream (reset must rebase it).
///
/// `make` is the same shape of factory the engine's
/// [`SimulationBuilder::model`](crate::engine::SimulationBuilder::model)
/// takes; call this from every model crate's property suite.
///
/// # Panics
///
/// Panics (with the failing round) on the first divergence.
pub fn assert_reset_matches_fresh<G, F>(make: F, perturb_seed: u64, seed: u64, rounds: usize)
where
    G: EvolvingGraph,
    F: Fn(u64) -> G,
{
    assert_ne!(perturb_seed, seed, "perturbation must use a different seed");
    // Snapshot path: dirty the instance, reset, compare step-for-step.
    let mut reused = make(perturb_seed);
    for _ in 0..rounds {
        let _ = reused.step();
    }
    reused.reset(seed);
    let mut fresh = make(seed);
    for round in 0..rounds {
        assert_eq!(
            reused.step(),
            fresh.step(),
            "reset({seed:#x}) diverged from fresh construction at round {round}"
        );
    }
    // Delta path: dirty through step_delta (growing any lazy internal
    // state), reset, and demand the fresh rebuild sequence replayed as
    // deltas — this also catches a reset that forgets to rebase.
    let mut reused = make(perturb_seed);
    let mut delta = EdgeDelta::new();
    for _ in 0..rounds {
        reused.step_delta(&mut delta);
    }
    reused.reset(seed);
    let mut fresh = make(seed);
    crate::delta::assert_replays_rebuild(&mut fresh, &mut reused, rounds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_graph::generators;

    #[test]
    fn static_graph_constant() {
        let mut g = StaticEvolvingGraph::new(generators::cycle(5));
        let e0: Vec<_> = g.step().edges().collect();
        let e1: Vec<_> = g.step().edges().collect();
        assert_eq!(e0, e1);
        g.reset(9);
        assert_eq!(g.step().edge_count(), 5);
    }

    #[test]
    fn periodic_cycles() {
        let a = generators::path(3);
        let b = generators::complete(3);
        let mut g = PeriodicEvolvingGraph::new(&[a, b]).unwrap();
        assert_eq!(g.period(), 2);
        assert_eq!(g.step().edge_count(), 2);
        assert_eq!(g.step().edge_count(), 3);
        assert_eq!(g.step().edge_count(), 2);
        g.reset(0);
        assert_eq!(g.step().edge_count(), 2);
    }

    #[test]
    fn periodic_rejects_mismatched() {
        let a = generators::path(3);
        let b = generators::path(4);
        assert!(PeriodicEvolvingGraph::new(&[a, b]).is_err());
        assert!(PeriodicEvolvingGraph::new(&[]).is_err());
    }

    #[test]
    fn thinning_extremes() {
        let inner = StaticEvolvingGraph::new(generators::complete(10));
        let mut keep_all = ThinnedEvolvingGraph::new(inner.clone(), 1.0, 1).unwrap();
        assert_eq!(keep_all.step().edge_count(), 45);
        let mut keep_none = ThinnedEvolvingGraph::new(inner, 0.0, 1).unwrap();
        assert!(keep_none.step().is_edgeless());
    }

    #[test]
    fn thinning_rate() {
        let inner = StaticEvolvingGraph::new(generators::complete(40));
        let mut g = ThinnedEvolvingGraph::new(inner, 0.3, 5).unwrap();
        let mut total = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            total += g.step().edge_count();
        }
        let mean = total as f64 / rounds as f64;
        let expected = 0.3 * 780.0;
        assert!((mean - expected).abs() < 15.0, "mean = {mean}");
    }

    #[test]
    fn thinning_rejects_bad_gamma() {
        let inner = StaticEvolvingGraph::new(generators::path(2));
        assert!(ThinnedEvolvingGraph::new(inner.clone(), -0.1, 0).is_err());
        assert!(ThinnedEvolvingGraph::new(inner, 1.1, 0).is_err());
    }

    #[test]
    fn thinning_reset_reproducible() {
        let inner = StaticEvolvingGraph::new(generators::complete(12));
        let mut g = ThinnedEvolvingGraph::new(inner, 0.5, 3).unwrap();
        g.reset(77);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(77);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
        g.reset(78);
        let c: Vec<_> = g.step().edges().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn warm_up_advances() {
        let mut g = StaticEvolvingGraph::new(generators::path(3));
        g.warm_up(10); // must not panic or hang
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn static_deltas_are_full_then_empty() {
        let mut g = StaticEvolvingGraph::new(generators::cycle(5));
        assert!(g.has_native_deltas());
        let mut d = EdgeDelta::new();
        g.step_delta(&mut d);
        assert_eq!(d.added().len(), 5);
        g.step_delta(&mut d);
        assert!(d.is_empty());
        // After a plain step() the baseline is forgotten again.
        let _ = g.step();
        g.step_delta(&mut d);
        assert_eq!(d.added().len(), 5);
    }

    #[test]
    fn warm_up_rebases_native_deltas() {
        let mut g = StaticEvolvingGraph::new(generators::path(4));
        g.warm_up(3);
        let mut d = EdgeDelta::new();
        g.step_delta(&mut d);
        assert_eq!(d.added().len(), 3, "post-warm-up delta must be full");
    }

    #[test]
    fn periodic_deltas_replay_rebuild_across_reset() {
        let a = generators::path(5);
        let b = generators::complete(5);
        let c = generators::star(5);
        let mut rebuild = PeriodicEvolvingGraph::new(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let mut delta = PeriodicEvolvingGraph::new(&[a, b, c]).unwrap();
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 8);
        rebuild.reset(1);
        delta.reset(1);
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 8);
    }

    #[test]
    fn thinned_deltas_replay_rebuild() {
        let inner = StaticEvolvingGraph::new(generators::complete(8));
        let mut rebuild = ThinnedEvolvingGraph::new(inner.clone(), 0.4, 9).unwrap();
        let mut delta = ThinnedEvolvingGraph::new(inner, 0.4, 9).unwrap();
        assert!(rebuild.has_native_deltas(), "static inner => native stack");
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 12);
        // ... and across a reset.
        rebuild.reset(4);
        delta.reset(4);
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 12);
    }

    #[test]
    fn thinned_deltas_replay_rebuild_over_churning_inner() {
        let graphs = [
            generators::path(9),
            generators::complete(9),
            generators::star(9),
        ];
        let mut rebuild =
            ThinnedEvolvingGraph::new(PeriodicEvolvingGraph::new(&graphs).unwrap(), 0.6, 3)
                .unwrap();
        let mut delta =
            ThinnedEvolvingGraph::new(PeriodicEvolvingGraph::new(&graphs).unwrap(), 0.6, 3)
                .unwrap();
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 20);
    }

    #[test]
    fn thinned_gamma_extremes_on_delta_path() {
        for gamma in [0.0, 1.0] {
            let inner = StaticEvolvingGraph::new(generators::complete(7));
            let mut rebuild = ThinnedEvolvingGraph::new(inner.clone(), gamma, 5).unwrap();
            let mut delta = ThinnedEvolvingGraph::new(inner, gamma, 5).unwrap();
            crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 6);
        }
    }

    #[test]
    fn thinned_resyncs_after_plain_step_and_warm_up() {
        let graphs = [generators::path(8), generators::star(8)];
        let make = || {
            ThinnedEvolvingGraph::new(PeriodicEvolvingGraph::new(&graphs).unwrap(), 0.5, 7).unwrap()
        };
        // Interleave: plain steps break the baseline, the next delta must
        // be a clean full emission that replays the rebuild path.
        let mut rebuild = make();
        let mut delta = make();
        let _ = rebuild.step();
        let _ = rebuild.step();
        let _ = delta.step();
        let _ = delta.step();
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 10);
        // warm_up on the wrapper (native path + rebase) agrees too.
        let mut rebuild = make();
        let mut delta = make();
        rebuild.warm_up(5);
        delta.warm_up(5);
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 10);
    }

    #[test]
    fn thinned_wrapping_non_native_inner_is_not_native() {
        // The wrapper only advertises the fast path when the whole stack
        // has it; forced delta stepping still works via the default
        // diffing of the inner model (exercised by the engine tests).
        #[derive(Debug, Clone)]
        struct NoDeltas(StaticEvolvingGraph);
        impl EvolvingGraph for NoDeltas {
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn step(&mut self) -> &Snapshot {
                self.0.step()
            }
            fn reset(&mut self, seed: u64) {
                self.0.reset(seed);
            }
        }
        let inner = NoDeltas(StaticEvolvingGraph::new(generators::complete(6)));
        let mut rebuild = ThinnedEvolvingGraph::new(inner.clone(), 0.5, 2).unwrap();
        let mut delta = ThinnedEvolvingGraph::new(inner, 0.5, 2).unwrap();
        assert!(!rebuild.has_native_deltas());
        // Forced through step_delta, the wrapper still replays exactly.
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 10);
    }

    #[test]
    fn jammed_deltas_replay_rebuild() {
        let graphs = [generators::complete(10), generators::cycle(10)];
        let make = || {
            JammedEvolvingGraph::new(PeriodicEvolvingGraph::new(&graphs).unwrap(), 3, 13).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        assert!(rebuild.has_native_deltas());
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 25);
        rebuild.reset(6);
        delta.reset(6);
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 25);
    }

    #[test]
    fn jammed_resyncs_after_plain_step() {
        let make = || {
            let inner = StaticEvolvingGraph::new(generators::complete(9));
            JammedEvolvingGraph::new(inner, 2, 21).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        let _ = rebuild.step();
        let _ = delta.step();
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 15);
    }

    #[test]
    fn jammed_victim_extremes_on_delta_path() {
        for victims in [0usize, 8] {
            let inner = StaticEvolvingGraph::new(generators::complete(8));
            let mut rebuild = JammedEvolvingGraph::new(inner.clone(), victims, 1).unwrap();
            let mut delta = JammedEvolvingGraph::new(inner, victims, 1).unwrap();
            crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 6);
        }
    }

    #[test]
    fn stacked_wrappers_replay_rebuild() {
        // Thinned over jammed over periodic: the delta chain composes.
        let graphs = [generators::complete(8), generators::star(8)];
        let make = || {
            let inner = PeriodicEvolvingGraph::new(&graphs).unwrap();
            let jam = JammedEvolvingGraph::new(inner, 2, 5).unwrap();
            ThinnedEvolvingGraph::new(jam, 0.7, 9).unwrap()
        };
        let mut rebuild = make();
        let mut delta = make();
        assert!(rebuild.has_native_deltas());
        crate::delta::assert_replays_rebuild(&mut rebuild, &mut delta, 18);
    }

    #[test]
    fn reset_matches_fresh_for_core_models() {
        // The zero-rebuild reuse contract, for every model in this
        // crate. Wrapper factories follow the canonical shape documented
        // on `EvolvingGraph::reset`: the inner constructor receives the
        // same seed the wrapper does.
        assert_reset_matches_fresh(
            |_| StaticEvolvingGraph::new(generators::grid(3, 4)),
            1,
            2,
            6,
        );
        let graphs = [
            generators::path(9),
            generators::complete(9),
            generators::star(9),
        ];
        assert_reset_matches_fresh(|_| PeriodicEvolvingGraph::new(&graphs).unwrap(), 1, 2, 10);
        assert_reset_matches_fresh(
            |seed| {
                let inner = PeriodicEvolvingGraph::new(&graphs).unwrap();
                ThinnedEvolvingGraph::new(inner, 0.6, seed).unwrap()
            },
            3,
            9,
            15,
        );
        assert_reset_matches_fresh(
            |seed| {
                let inner = PeriodicEvolvingGraph::new(&graphs).unwrap();
                JammedEvolvingGraph::new(inner, 2, seed).unwrap()
            },
            4,
            11,
            15,
        );
        // A stacked wrapper with *seeded* layers: every layer of the
        // canonical factory shape takes the same seed.
        assert_reset_matches_fresh(
            |seed| {
                let inner = PeriodicEvolvingGraph::new(&graphs).unwrap();
                let jam = JammedEvolvingGraph::new(inner, 2, seed).unwrap();
                ThinnedEvolvingGraph::new(jam, 0.7, seed).unwrap()
            },
            5,
            13,
            15,
        );
    }

    #[test]
    fn jamming_zero_victims_is_identity() {
        let inner = StaticEvolvingGraph::new(generators::complete(8));
        let mut g = JammedEvolvingGraph::new(inner, 0, 1).unwrap();
        assert_eq!(g.step().edge_count(), 28);
    }

    #[test]
    fn jamming_all_victims_is_edgeless() {
        let inner = StaticEvolvingGraph::new(generators::complete(8));
        let mut g = JammedEvolvingGraph::new(inner, 8, 1).unwrap();
        assert!(g.step().is_edgeless());
    }

    #[test]
    fn jamming_removes_exactly_victim_edges() {
        let inner = StaticEvolvingGraph::new(generators::complete(10));
        let mut g = JammedEvolvingGraph::new(inner, 1, 3).unwrap();
        for _ in 0..20 {
            let snap = g.step();
            // One jammed node in K10: its 9 edges vanish, 36 remain, and
            // exactly one node is isolated.
            assert_eq!(snap.edge_count(), 36);
            let isolated = (0..10u32).filter(|&u| snap.degree(u) == 0).count();
            assert_eq!(isolated, 1);
        }
    }

    #[test]
    fn jamming_too_many_victims_rejected() {
        let inner = StaticEvolvingGraph::new(generators::path(3));
        assert!(JammedEvolvingGraph::new(inner, 4, 0).is_err());
    }

    #[test]
    fn flooding_survives_moderate_jamming() {
        use crate::flooding::flood;
        let inner = StaticEvolvingGraph::new(generators::complete(20));
        let mut g = JammedEvolvingGraph::new(inner, 5, 7).unwrap();
        let run = flood(&mut g, 0, 1000);
        assert!(run.flooding_time().is_some());
    }

    #[test]
    fn jamming_reset_reproducible() {
        let inner = StaticEvolvingGraph::new(generators::complete(12));
        let mut g = JammedEvolvingGraph::new(inner, 3, 0).unwrap();
        g.reset(9);
        let a: Vec<_> = g.step().edges().collect();
        g.reset(9);
        let b: Vec<_> = g.step().edges().collect();
        assert_eq!(a, b);
    }
}
