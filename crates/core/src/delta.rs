//! Delta-native stepping: per-round edge churn instead of full rebuilds.
//!
//! The paper's sparse regimes (`pn = O(polylog n)`) change only a handful
//! of edges per round even when the simulation runs for tens of thousands
//! of rounds, yet a [`Snapshot`]-per-round pipeline pays `O(m + n)` every
//! round regardless. This module provides the delta-native alternative:
//!
//! * [`EdgeDelta`] — one round's churn, `{added, removed}` undirected
//!   edges, produced by [`EvolvingGraph::step_delta`];
//! * [`DynAdjacency`] — an incremental adjacency structure that applies
//!   deltas in `O(churn · log deg)` and can lazily materialize a CSR
//!   [`Snapshot`] only when a consumer actually asks for `E_t`
//!   (flat sorted edge lists use [`EdgeDelta::apply_to_sorted`] instead).
//!
//! Producers with native deltas (the edge-MEGs, the node-MEG, the
//! geometric mobility MEG, recorded replays, and the §5
//! [`ThinnedEvolvingGraph`]/[`JammedEvolvingGraph`] wrappers) advertise
//! themselves via [`EvolvingGraph::has_native_deltas`]; everything else
//! falls back to the default [`EvolvingGraph::step_delta`], which steps
//! the snapshot path and diffs — third-party models keep working
//! unchanged.
//!
//! [`EvolvingGraph::step`]: crate::EvolvingGraph::step
//! [`EvolvingGraph::step_delta`]: crate::EvolvingGraph::step_delta
//! [`EvolvingGraph::has_native_deltas`]: crate::EvolvingGraph::has_native_deltas
//! [`EvolvingGraph::rebase_deltas`]: crate::EvolvingGraph::rebase_deltas
//! [`EvolvingGraph::reset`]: crate::EvolvingGraph::reset
//! [`EvolvingGraph::warm_up`]: crate::EvolvingGraph::warm_up
//! [`ThinnedEvolvingGraph`]: crate::ThinnedEvolvingGraph
//! [`JammedEvolvingGraph`]: crate::JammedEvolvingGraph
//!
//! # Examples
//!
//! ```
//! use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph, StaticEvolvingGraph};
//! use dg_graph::generators;
//!
//! let mut g = StaticEvolvingGraph::new(generators::cycle(5));
//! let mut adj = DynAdjacency::new(5);
//! let mut delta = EdgeDelta::new();
//! g.step_delta(&mut delta);
//! adj.apply(&delta);
//! assert_eq!(delta.added().len(), 5); // first delta carries the full E_0
//! g.step_delta(&mut delta);
//! assert!(delta.is_empty()); // a static graph has zero churn afterwards
//! assert_eq!(adj.snapshot().edge_count(), 5);
//! ```
//!
//! # The delta contract
//!
//! Every delta is **relative to the edge set exposed by the process's
//! previous `step`/`step_delta` call**. The first delta after any of the
//! following *baseline breaks* is a **full emission** — the process's
//! entire current edge set as [`EdgeDelta::added`], relative to the
//! empty graph:
//!
//! * construction,
//! * [`EvolvingGraph::reset`],
//! * [`EvolvingGraph::warm_up`] (it rebases after advancing),
//! * a plain [`EvolvingGraph::step`] on a native-delta model,
//! * an explicit [`EvolvingGraph::rebase_deltas`] call.
//!
//! A consumer that attaches a *fresh* [`DynAdjacency`] (or any
//! empty-initialized incremental structure) to a process mid-stream must
//! therefore call `rebase_deltas()` first, so the stream restarts from a
//! full emission; the engine and [`crate::flooding::flood`] do this for
//! you. The whole contract is observable:
//!
//! ```
//! use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph, PeriodicEvolvingGraph};
//! use dg_graph::generators;
//!
//! let graphs = [generators::path(6), generators::star(6)];
//! let mut g = PeriodicEvolvingGraph::new(&graphs).unwrap();
//! let mut delta = EdgeDelta::new();
//!
//! // 1. After construction: full emission (E_0 = the path, 5 edges).
//! g.step_delta(&mut delta);
//! assert_eq!((delta.added().len(), delta.removed().len()), (5, 0));
//!
//! // 2. Mid-stream: genuine churn only (path -> star on 6 nodes).
//! g.step_delta(&mut delta);
//! assert!(delta.churn() > 0 && delta.churn() < 10);
//!
//! // 3. A plain step() breaks the baseline...
//! let _ = g.step();
//!
//! // ...so the next delta is a full emission again (the star, 5 edges),
//! // and a *fresh* adjacency can safely join the stream here.
//! let mut adj = DynAdjacency::new(6);
//! g.rebase_deltas(); // explicit rebase: idempotent after the plain step
//! g.step_delta(&mut delta);
//! adj.apply(&delta);
//! assert_eq!(delta.removed().len(), 0);
//! assert_eq!(adj.edge_count(), delta.added().len());
//! ```
//!
//! For warm-up the same rule means no snapshot is ever materialized and
//! the consumer still starts from a coherent baseline:
//!
//! ```
//! use dynagraph::{DynAdjacency, EdgeDelta, EvolvingGraph, StaticEvolvingGraph};
//! use dg_graph::generators;
//!
//! let mut g = StaticEvolvingGraph::new(generators::cycle(7));
//! g.warm_up(100); // delta path internally, then rebases
//! let mut delta = EdgeDelta::new();
//! g.step_delta(&mut delta);
//! assert_eq!(delta.added().len(), 7); // full warmed-up edge set
//! ```
//!
//! # Implementing `step_delta`: when and how
//!
//! Third-party models only need [`EvolvingGraph::step`]; the default
//! `step_delta` diffs consecutive snapshots (correct, not faster). Add a
//! native implementation when the model can enumerate its churn in
//! `O(churn)`:
//!
//! | your model                                           | do |
//! |------------------------------------------------------|----|
//! | state transitions *are* edge changes (flips, toggle events, meeting enter/leave) | implement `step_delta` + `has_native_deltas` + `rebase_deltas`; consume exactly the RNG that `step` would; validate with [`assert_replays_rebuild`] |
//! | wraps another model and re-decides every edge per round (thinning, jamming) | implement it as a *sweep* over an incrementally maintained inner edge list (see [`crate::ThinnedEvolvingGraph`]): per-round cost `O(\|E_t\| + churn)` with no `O(n)` CSR term |
//! | cheap full edge list, no churn structure             | keep the default (steps + diffs snapshots) |
//!
//! The three native methods obey one invariant: **`step` and
//! `step_delta` must realize identical edge-set sequences from the same
//! seed** (same draws, same order). `rebase_deltas` only forgets the
//! baseline — the next delta emits the full set — and must never advance
//! the process or consume randomness.

use crate::{EvolvingGraph, Snapshot};

/// An undirected edge `(u, v)` with `u < v`.
pub type Edge = (u32, u32);

/// One recorded round's churn as owned lists: `(added, removed)`.
pub type DeltaPair = (Vec<Edge>, Vec<Edge>);

/// One round's edge churn: the undirected edges that appeared and
/// disappeared relative to the previous round's edge set.
///
/// Deltas are relative to the edge set exposed by the process's previous
/// [`step`](crate::EvolvingGraph::step) /
/// [`step_delta`](crate::EvolvingGraph::step_delta) call; the first delta
/// after construction, [`reset`](crate::EvolvingGraph::reset),
/// [`warm_up`](crate::EvolvingGraph::warm_up) or a plain `step` describes
/// the full edge set relative to the empty graph.
///
/// The buffer is reusable: consumers allocate one `EdgeDelta` and pass it
/// to `step_delta` every round. It also carries the scratch state used by
/// the default snapshot-diffing implementation, so reuse the *same*
/// buffer for one process; start a fresh one (or [`EdgeDelta::clear`] it)
/// when switching processes.
#[derive(Debug, Clone, Default)]
pub struct EdgeDelta {
    added: Vec<(u32, u32)>,
    removed: Vec<(u32, u32)>,
    /// Previous round's sorted edge list — scratch for the default
    /// snapshot-diffing `step_delta`.
    prev: Vec<(u32, u32)>,
    next: Vec<(u32, u32)>,
}

/// Merge-diffs two lexicographically sorted edge lists.
fn merge_diff(
    prev: &[(u32, u32)],
    now: &[(u32, u32)],
    added: &mut Vec<(u32, u32)>,
    removed: &mut Vec<(u32, u32)>,
) {
    let mut i = 0;
    for &e in now {
        while i < prev.len() && prev[i] < e {
            removed.push(prev[i]);
            i += 1;
        }
        if i < prev.len() && prev[i] == e {
            i += 1;
        } else {
            added.push(e);
        }
    }
    removed.extend_from_slice(&prev[i..]);
}

impl EdgeDelta {
    /// An empty delta buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Edges that appeared this round (`u < v`).
    pub fn added(&self) -> &[(u32, u32)] {
        &self.added
    }

    /// Edges that disappeared this round (`u < v`).
    pub fn removed(&self) -> &[(u32, u32)] {
        &self.removed
    }

    /// Total churn: `|added| + |removed|`.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// `true` if nothing changed this round.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Starts recording a new round: clears `added`/`removed` (producer
    /// API; leaves the diffing scratch alone).
    pub fn begin_round(&mut self) {
        self.added.clear();
        self.removed.clear();
    }

    /// Records an appearing edge (producer API).
    #[inline]
    pub fn push_added(&mut self, edge: (u32, u32)) {
        self.added.push(edge);
    }

    /// Records a disappearing edge (producer API).
    #[inline]
    pub fn push_removed(&mut self, edge: (u32, u32)) {
        self.removed.push(edge);
    }

    /// Records a full emission: the process's entire current edge set as
    /// `added`, relative to the empty graph (producer API, used for the
    /// first delta after construction/reset/warm-up).
    pub fn record_full<I: IntoIterator<Item = (u32, u32)>>(&mut self, edges: I) {
        self.begin_round();
        self.added.extend(edges);
    }

    /// Appends another delta's churn to this one (producer API). The
    /// sharded executor records each lane's churn into its own buffer in
    /// parallel and then concatenates them *in lane order*, so the merged
    /// delta is identical to what a serial sweep over the lanes would
    /// have recorded.
    pub fn merge_from(&mut self, other: &EdgeDelta) {
        self.added.extend_from_slice(&other.added);
        self.removed.extend_from_slice(&other.removed);
    }

    /// Records the diff between two lexicographically sorted edge lists
    /// (producer API for models that naturally produce per-round edge
    /// lists, e.g. geometric models).
    pub fn record_transition(&mut self, prev: &[(u32, u32)], now: &[(u32, u32)]) {
        self.begin_round();
        merge_diff(prev, now, &mut self.added, &mut self.removed);
    }

    /// Diffs a freshly materialized snapshot against the previous one
    /// seen *by this buffer* — the engine of the default
    /// [`step_delta`](crate::EvolvingGraph::step_delta) implementation.
    pub fn diff_snapshot(&mut self, snap: &Snapshot) {
        self.begin_round();
        self.next.clear();
        self.next.extend(snap.edges());
        merge_diff(&self.prev, &self.next, &mut self.added, &mut self.removed);
        std::mem::swap(&mut self.prev, &mut self.next);
    }

    /// Forgets everything, including the diffing scratch: the next
    /// default-path delta will be a full emission again.
    pub fn clear(&mut self) {
        self.added.clear();
        self.removed.clear();
        self.prev.clear();
        self.next.clear();
    }

    /// Applies this delta to a lexicographically sorted edge list,
    /// keeping it sorted — the flat-list counterpart of
    /// [`DynAdjacency::apply`] for consumers that sweep whole edge sets
    /// per round (e.g. the §5 [`crate::ThinnedEvolvingGraph`] /
    /// [`crate::JammedEvolvingGraph`] wrappers). `O(|edges| + churn log churn)`.
    ///
    /// # Panics
    ///
    /// Panics if a removed edge is absent from `edges` or an added edge
    /// is already present — same out-of-sync rationale as
    /// [`DynAdjacency::apply`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dynagraph::EdgeDelta;
    ///
    /// let mut edges = vec![(0, 1), (1, 2)];
    /// let mut d = EdgeDelta::new();
    /// d.begin_round();
    /// d.push_removed((1, 2));
    /// d.push_added((0, 3));
    /// d.apply_to_sorted(&mut edges);
    /// assert_eq!(edges, vec![(0, 1), (0, 3)]);
    /// ```
    pub fn apply_to_sorted(&self, edges: &mut Vec<Edge>) {
        let mut scratch = Vec::new();
        self.apply_to_sorted_with(edges, &mut scratch);
    }

    /// [`EdgeDelta::apply_to_sorted`] with a caller-owned merge buffer —
    /// the per-round hot-path variant. `scratch` receives the old list
    /// (contents unspecified afterwards); reuse both vectors across
    /// rounds and no allocation happens once they reach steady size.
    /// When `added`/`removed` are already sorted (true for
    /// [`EdgeDelta::record_transition`]/[`EdgeDelta::diff_snapshot`]
    /// products), they are consumed in place; unsorted producer streams
    /// pay one churn-sized sort copy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`EdgeDelta::apply_to_sorted`].
    pub fn apply_to_sorted_with(&self, edges: &mut Vec<Edge>, scratch: &mut Vec<Edge>) {
        fn is_sorted(xs: &[Edge]) -> bool {
            xs.windows(2).all(|w| w[0] < w[1])
        }
        if self.is_empty() {
            return;
        }
        // Borrow in-place when the producer already emits sorted runs;
        // otherwise sort a churn-sized copy (never the full edge list).
        let (removed_buf, added_buf);
        let removed: &[Edge] = if is_sorted(&self.removed) {
            &self.removed
        } else {
            removed_buf = {
                let mut v = self.removed.clone();
                v.sort_unstable();
                v
            };
            &removed_buf
        };
        let added: &[Edge] = if is_sorted(&self.added) {
            &self.added
        } else {
            added_buf = {
                let mut v = self.added.clone();
                v.sort_unstable();
                v
            };
            &added_buf
        };
        scratch.clear();
        scratch.reserve((edges.len() + added.len()).saturating_sub(removed.len()));
        let mut ri = 0;
        let mut ai = 0;
        for &e in edges.iter() {
            while ai < added.len() && added[ai] < e {
                scratch.push(added[ai]);
                ai += 1;
            }
            assert!(
                ai >= added.len() || added[ai] != e,
                "delta added edge {e:?} that is already present"
            );
            if ri < removed.len() && removed[ri] == e {
                ri += 1;
            } else {
                scratch.push(e);
            }
        }
        assert!(
            ri == removed.len(),
            "delta removed edge {:?} that is not present",
            removed[ri]
        );
        scratch.extend_from_slice(&added[ai..]);
        std::mem::swap(edges, scratch);
    }
}

/// An incremental adjacency structure over a fixed vertex set `[n]`.
///
/// Applies an [`EdgeDelta`] in `O(churn · log deg)` (sorted per-node
/// neighbor lists, binary-searched inserts/removals) and lazily
/// materializes a CSR [`Snapshot`] — byte-identical to
/// [`Snapshot::rebuild_from_edges`] over the same edge set — only when
/// [`DynAdjacency::snapshot`] is called.
///
/// # Examples
///
/// ```
/// use dynagraph::{DynAdjacency, EdgeDelta};
///
/// let mut adj = DynAdjacency::new(4);
/// let mut d = EdgeDelta::new();
/// d.record_full([(0, 1), (1, 2)]);
/// adj.apply(&d);
/// assert_eq!(adj.neighbors(1), &[0, 2]);
/// d.begin_round();
/// d.push_removed((0, 1));
/// d.push_added((2, 3));
/// adj.apply(&d);
/// assert_eq!(adj.edge_count(), 2);
/// assert!(adj.has_edge(2, 3) && !adj.has_edge(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DynAdjacency {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
    csr: Snapshot,
    csr_dirty: bool,
}

impl Default for DynAdjacency {
    /// An edgeless adjacency over zero nodes — re-target it with
    /// [`DynAdjacency::reset`] before use (the trial-scratch pattern).
    fn default() -> Self {
        DynAdjacency::new(0)
    }
}

impl DynAdjacency {
    /// An edgeless adjacency over `n` nodes.
    pub fn new(n: usize) -> Self {
        DynAdjacency {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            csr: Snapshot::empty(n),
            csr_dirty: false,
        }
    }

    /// Clears every edge and re-targets the structure at a (possibly
    /// different) vertex set `[n]` — the trial-reuse counterpart of
    /// [`DynAdjacency::new`]. Per-node neighbor lists keep their
    /// capacity, so a worker running many trials over same-sized models
    /// allocates adjacency memory once and never again.
    pub fn reset(&mut self, n: usize) {
        self.adj.truncate(n);
        for list in &mut self.adj {
            list.clear();
        }
        self.adj.resize_with(n, Vec::new);
        self.edge_count = 0;
        if self.csr.node_count() != n {
            self.csr = Snapshot::empty(n);
        }
        self.csr_dirty = true;
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges currently present.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `true` if no edge is currently present.
    pub fn is_edgeless(&self) -> bool {
        self.edge_count == 0
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Sorted adjacency list of `u` — identical to what the materialized
    /// snapshot's [`Snapshot::neighbors`] returns.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// `true` if edge `{u, v}` is currently present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return false;
        }
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterates over the current undirected edges `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, neigh)| {
            let u = u as u32;
            neigh
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    fn half_insert(&mut self, u: u32, v: u32) {
        half_insert_list(&mut self.adj[u as usize], u, v);
    }

    fn half_remove(&mut self, u: u32, v: u32) {
        half_remove_list(&mut self.adj[u as usize], u, v);
    }

    /// Inserts edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or if the edge is
    /// already present — a delta stream that double-adds is out of sync
    /// with this adjacency, and failing loudly beats silent corruption.
    pub fn insert_edge(&mut self, u: u32, v: u32) {
        assert_ne!(u, v, "self-loop ({u}, {v}) in delta");
        self.half_insert(u, v);
        self.half_insert(v, u);
        self.edge_count += 1;
        self.csr_dirty = true;
    }

    /// Removes edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is absent or an endpoint is out of range (same
    /// rationale as [`DynAdjacency::insert_edge`]).
    pub fn remove_edge(&mut self, u: u32, v: u32) {
        self.half_remove(u, v);
        self.half_remove(v, u);
        self.edge_count -= 1;
        self.csr_dirty = true;
    }

    /// Applies one round's churn: removals first, then additions.
    ///
    /// A full emission into an edgeless adjacency — every trial's first
    /// delta — takes a bulk-load fast path: push-then-sort per node,
    /// `O(m log deg)` total, instead of `m` binary-searched
    /// `Vec::insert`s (`O(m · deg)` memmove traffic). The resulting
    /// structure is identical either way; on large sparse models this
    /// is the difference between trial *setup* and trial *work*.
    ///
    /// # Panics
    ///
    /// Panics if the delta is inconsistent with the current edge set
    /// (see [`DynAdjacency::insert_edge`] / [`DynAdjacency::remove_edge`]).
    pub fn apply(&mut self, delta: &EdgeDelta) {
        if self.edge_count == 0 && delta.removed().is_empty() {
            self.bulk_load(delta.added());
            return;
        }
        for &(u, v) in delta.removed() {
            self.remove_edge(u, v);
        }
        for &(u, v) in delta.added() {
            self.insert_edge(u, v);
        }
    }

    /// Loads an edge set into the (empty) adjacency: unsorted pushes,
    /// then one sort per *touched* node. For dense emissions the
    /// touched set is found by scanning all `n` lists (no bookkeeping);
    /// for emissions smaller than the vertex set it is collected and
    /// deduplicated explicitly, keeping tiny-emission rounds on huge
    /// vertex sets churn-proportional instead of `O(n)`. Keeps every
    /// `insert_edge` guarantee — self-loops and duplicate edges still
    /// panic.
    fn bulk_load(&mut self, added: &[Edge]) {
        debug_assert_eq!(self.edge_count, 0);
        if added.is_empty() {
            return;
        }
        let sparse_emission = added.len() * 2 < self.adj.len();
        let mut touched: Vec<u32> = Vec::new();
        if sparse_emission {
            touched.reserve(added.len() * 2);
        }
        for &(u, v) in added {
            assert_ne!(u, v, "self-loop ({u}, {v}) in delta");
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
            if sparse_emission {
                touched.push(u);
                touched.push(v);
            }
        }
        let sort_check = |u: u32, list: &mut Vec<u32>| {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                let (a, b) = (w[0].min(u), w[0].max(u));
                panic!("delta added edge ({a}, {b}) that is already present");
            }
        };
        if sparse_emission {
            touched.sort_unstable();
            touched.dedup();
            for &u in &touched {
                sort_check(u, &mut self.adj[u as usize]);
            }
        } else {
            for u in 0..self.adj.len() {
                sort_check(u as u32, &mut self.adj[u]);
            }
        }
        self.edge_count = added.len();
        self.csr_dirty = true;
    }

    /// Removes every edge (cheaper than re-allocating for a new run over
    /// the same vertex set).
    pub fn clear(&mut self) {
        for list in &mut self.adj {
            list.clear();
        }
        self.edge_count = 0;
        self.csr_dirty = true;
    }

    /// Splits the adjacency into disjoint, contiguous node-range views of
    /// `span` nodes each (the last may be shorter) for a *partitioned*
    /// delta apply: each view mutates only its own nodes' neighbor lists,
    /// so the views can run [`AdjacencyRange::apply_own_halves`] over the
    /// same delta on different threads with no synchronization — every
    /// edge's two halves land in (at most two) distinct views, and the
    /// per-list result is identical to a serial [`DynAdjacency::apply`].
    ///
    /// The views bypass the structure's edge-count and snapshot
    /// bookkeeping; after they are dropped the caller must call
    /// [`DynAdjacency::commit_partitioned`] with the same delta to
    /// restore the invariants.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn range_shards(&mut self, span: usize) -> Vec<AdjacencyRange<'_>> {
        assert!(span > 0, "shard span must be positive");
        self.adj
            .chunks_mut(span)
            .enumerate()
            .map(|(i, lists)| AdjacencyRange {
                base: (i * span) as u32,
                lists,
            })
            .collect()
    }

    /// Restores the invariants [`DynAdjacency::range_shards`] bypassed,
    /// once every view has applied `delta`: bumps the edge count by the
    /// delta's net churn and invalidates the cached snapshot.
    pub fn commit_partitioned(&mut self, delta: &EdgeDelta) {
        self.edge_count = self.edge_count + delta.added().len() - delta.removed().len();
        self.csr_dirty = true;
    }

    /// The current edge set as a CSR [`Snapshot`], materialized lazily:
    /// the rebuild runs only when edges changed since the last call.
    ///
    /// The result is byte-identical to
    /// [`Snapshot::rebuild_from_edges`] over [`DynAdjacency::edges`].
    pub fn snapshot(&mut self) -> &Snapshot {
        if self.csr_dirty {
            self.csr.rebuild_from_sorted_adjacency(&self.adj);
            self.csr_dirty = false;
        }
        &self.csr
    }
}

fn half_insert_list(list: &mut Vec<u32>, u: u32, v: u32) {
    match list.binary_search(&v) {
        Ok(_) => panic!("delta added edge ({u}, {v}) that is already present"),
        Err(pos) => list.insert(pos, v),
    }
}

fn half_remove_list(list: &mut Vec<u32>, u: u32, v: u32) {
    match list.binary_search(&v) {
        Ok(pos) => {
            list.remove(pos);
        }
        Err(_) => panic!("delta removed edge ({u}, {v}) that is not present"),
    }
}

/// A disjoint, contiguous node-range view into a [`DynAdjacency`],
/// produced by [`DynAdjacency::range_shards`] — the unit of work of the
/// engine's partitioned parallel delta apply. The view is `Send`, owns
/// the neighbor lists of nodes `[base, base + len)` exclusively, and
/// only ever mutates those, so one view per thread is race-free by
/// construction.
#[derive(Debug)]
pub struct AdjacencyRange<'a> {
    base: u32,
    lists: &'a mut [Vec<u32>],
}

impl AdjacencyRange<'_> {
    #[inline]
    fn owns(&self, u: u32) -> bool {
        u >= self.base && ((u - self.base) as usize) < self.lists.len()
    }

    #[inline]
    fn list_mut(&mut self, u: u32) -> &mut Vec<u32> {
        &mut self.lists[(u - self.base) as usize]
    }

    /// Applies the halves of `delta` incident to this range's nodes:
    /// all removals first, then all additions — the same canonical
    /// order as [`DynAdjacency::apply`], so once every range of a
    /// partition has run, the adjacency is identical to a serial apply.
    ///
    /// # Panics
    ///
    /// Panics on self-loops and on delta entries inconsistent with the
    /// current edge set (same rationale as [`DynAdjacency::apply`]).
    pub fn apply_own_halves(&mut self, delta: &EdgeDelta) {
        for &(u, v) in delta.removed() {
            if self.owns(u) {
                half_remove_list(self.list_mut(u), u, v);
            }
            if self.owns(v) {
                half_remove_list(self.list_mut(v), v, u);
            }
        }
        for &(u, v) in delta.added() {
            assert_ne!(u, v, "self-loop ({u}, {v}) in delta");
            if self.owns(u) {
                half_insert_list(self.list_mut(u), u, v);
            }
            if self.owns(v) {
                half_insert_list(self.list_mut(v), v, u);
            }
        }
    }

    /// Bulk-loads a full emission's own halves into this range's (empty)
    /// lists: unsorted pushes, then one sort per own list — the
    /// partitioned counterpart of the bulk-load fast path every trial's
    /// first delta takes through [`DynAdjacency::apply`].
    ///
    /// # Panics
    ///
    /// Panics on self-loops and duplicate edges, like
    /// [`DynAdjacency::insert_edge`]; the caller must ensure the range's
    /// lists are empty (the engine only takes this path on an edgeless
    /// adjacency).
    pub fn bulk_load_own_halves(&mut self, added: &[Edge]) {
        for &(u, v) in added {
            assert_ne!(u, v, "self-loop ({u}, {v}) in delta");
            if self.owns(u) {
                self.list_mut(u).push(v);
            }
            if self.owns(v) {
                self.list_mut(v).push(u);
            }
        }
        let base = self.base;
        for (i, list) in self.lists.iter_mut().enumerate() {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                let u = base + i as u32;
                let (a, b) = (w[0].min(u), w[0].max(u));
                panic!("delta added edge ({a}, {b}) that is already present");
            }
        }
    }
}

/// Test/diagnostics helper: asserts that stepping `delta_model` through
/// [`EvolvingGraph::step_delta`] + [`DynAdjacency`] reproduces exactly
/// the [`Snapshot`] sequence of `rebuild_model` stepped through
/// [`EvolvingGraph::step`], for `rounds` rounds.
///
/// The two models must be independent instances configured with the same
/// seed. Useful for validating custom `step_delta` implementations.
///
/// # Panics
///
/// Panics (with the failing round) on the first mismatch.
pub fn assert_replays_rebuild<A, B>(rebuild_model: &mut A, delta_model: &mut B, rounds: usize)
where
    A: EvolvingGraph + ?Sized,
    B: EvolvingGraph + ?Sized,
{
    assert_eq!(rebuild_model.node_count(), delta_model.node_count());
    let mut adj = DynAdjacency::new(delta_model.node_count());
    let mut delta = EdgeDelta::new();
    for round in 0..rounds {
        delta_model.step_delta(&mut delta);
        adj.apply(&delta);
        let expected = rebuild_model.step();
        assert_eq!(
            adj.snapshot(),
            expected,
            "delta path diverged from rebuild path at round {round}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicEvolvingGraph, StaticEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn merge_diff_finds_churn() {
        let mut d = EdgeDelta::new();
        d.record_transition(&[(0, 1), (1, 2), (3, 4)], &[(0, 1), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(d.added(), &[(2, 3), (4, 5)]);
        assert_eq!(d.removed(), &[(1, 2)]);
        assert_eq!(d.churn(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn diff_snapshot_tracks_prev() {
        let mut s = Snapshot::empty(4);
        let mut d = EdgeDelta::new();
        s.rebuild_from_edges(&[(0, 1), (2, 3)]);
        d.diff_snapshot(&s);
        assert_eq!(d.added(), &[(0, 1), (2, 3)]);
        assert!(d.removed().is_empty());
        s.rebuild_from_edges(&[(0, 1), (1, 2)]);
        d.diff_snapshot(&s);
        assert_eq!(d.added(), &[(1, 2)]);
        assert_eq!(d.removed(), &[(2, 3)]);
        d.clear();
        d.diff_snapshot(&s);
        assert_eq!(d.added().len(), 2, "cleared scratch diffs against empty");
    }

    #[test]
    fn adjacency_applies_and_materializes() {
        let mut adj = DynAdjacency::new(5);
        assert!(adj.is_edgeless());
        let mut d = EdgeDelta::new();
        d.record_full([(0, 4), (1, 2), (0, 2)]);
        adj.apply(&d);
        assert_eq!(adj.edge_count(), 3);
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.neighbors(0), &[2, 4]);
        assert!(adj.has_edge(4, 0));
        assert!(!adj.has_edge(1, 4));
        assert!(!adj.has_edge(0, 99));
        let mut reference = Snapshot::empty(5);
        reference.rebuild_from_edges(&[(0, 4), (1, 2), (0, 2)]);
        assert_eq!(adj.snapshot(), &reference);
        let collected: Vec<_> = adj.edges().collect();
        assert_eq!(collected, vec![(0, 2), (0, 4), (1, 2)]);
    }

    #[test]
    fn snapshot_is_lazy_and_refreshes() {
        let mut adj = DynAdjacency::new(3);
        let mut d = EdgeDelta::new();
        d.record_full([(0, 1)]);
        adj.apply(&d);
        assert_eq!(adj.snapshot().edge_count(), 1);
        d.begin_round();
        d.push_removed((0, 1));
        d.push_added((1, 2));
        adj.apply(&d);
        assert!(adj.snapshot().has_edge(1, 2));
        assert!(!adj.snapshot().has_edge(0, 1));
        adj.clear();
        assert!(adj.snapshot().is_edgeless());
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        // The empty-adjacency fast path must build exactly the structure
        // the per-edge path builds, snapshot included.
        let edges = [(3u32, 1u32), (0, 4), (1, 2), (0, 2), (2, 4), (0, 1)];
        let mut d = EdgeDelta::new();
        d.record_full(edges);
        let mut bulk = DynAdjacency::new(5);
        bulk.apply(&d); // empty + no removals => bulk path
        let mut incremental = DynAdjacency::new(5);
        for &(u, v) in &edges {
            incremental.insert_edge(u, v);
        }
        assert_eq!(bulk.edge_count(), incremental.edge_count());
        for u in 0..5u32 {
            assert_eq!(bulk.neighbors(u), incremental.neighbors(u), "node {u}");
        }
        assert_eq!(bulk.snapshot(), incremental.snapshot());
        // A later non-empty round takes the incremental path again.
        d.begin_round();
        d.push_removed((0, 4));
        d.push_added((3, 4));
        bulk.apply(&d);
        assert!(bulk.has_edge(3, 4) && !bulk.has_edge(0, 4));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn bulk_load_rejects_duplicate_edges() {
        let mut d = EdgeDelta::new();
        d.record_full([(0, 1), (2, 1), (1, 0)]);
        let mut adj = DynAdjacency::new(3);
        adj.apply(&d);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn bulk_load_rejects_self_loops() {
        let mut d = EdgeDelta::new();
        d.record_full([(1, 1)]);
        let mut adj = DynAdjacency::new(3);
        adj.apply(&d);
    }

    #[test]
    fn reset_retargets_node_count_and_drops_edges() {
        let mut adj = DynAdjacency::new(3);
        adj.insert_edge(0, 2);
        adj.reset(5);
        assert_eq!(adj.node_count(), 5);
        assert!(adj.is_edgeless());
        assert_eq!(adj.snapshot(), &Snapshot::empty(5));
        adj.insert_edge(3, 4);
        adj.reset(2);
        assert_eq!(adj.node_count(), 2);
        assert!(!adj.has_edge(3, 4));
        assert_eq!(adj.snapshot(), &Snapshot::empty(2));
        // Same size: a reset behaves like a fresh structure.
        adj.insert_edge(0, 1);
        adj.reset(2);
        assert_eq!(adj.snapshot(), &Snapshot::empty(2));
        assert_eq!(DynAdjacency::default().node_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_add_panics() {
        let mut adj = DynAdjacency::new(3);
        adj.insert_edge(0, 1);
        adj.insert_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn phantom_remove_panics() {
        let mut adj = DynAdjacency::new(3);
        adj.remove_edge(0, 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut adj = DynAdjacency::new(3);
        adj.insert_edge(1, 1);
    }

    #[test]
    fn default_path_replays_static_and_periodic() {
        let mut a = StaticEvolvingGraph::new(generators::grid(3, 3));
        let mut b = a.clone();
        assert_replays_rebuild(&mut a, &mut b, 5);

        let g1 = generators::path(4);
        let g2 = generators::complete(4);
        let mut a = PeriodicEvolvingGraph::new(&[g1.clone(), g2.clone()]).unwrap();
        let mut b = PeriodicEvolvingGraph::new(&[g1, g2]).unwrap();
        assert_replays_rebuild(&mut a, &mut b, 7);
    }
}
