//! Growth-curve analytics for the phase structure of the flooding proof.
//!
//! The proof of Theorem 1 splits flooding into a **spreading phase**
//! (Lemma 13: `|I_t|` doubles every `O((1/(nα) + β)² log n)` epochs until
//! it reaches `n/2`) and a **saturation phase** (Lemma 14: the remaining
//! half is informed within `O((1/(nα) + β) log n)` epochs). This module
//! extracts those phases from measured growth curves.

use crate::flooding::FloodRun;

/// A growth curve `|I_t|` with phase analytics.
///
/// # Examples
///
/// ```
/// use dynagraph::analysis::GrowthCurve;
///
/// let curve = GrowthCurve::new(vec![1, 2, 4, 8, 16], 16);
/// assert_eq!(curve.time_to_fraction(0.5), Some(3));
/// assert_eq!(curve.completion_time(), Some(4));
/// assert_eq!(curve.doubling_rounds(), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthCurve {
    sizes: Vec<u32>,
    node_count: usize,
}

impl GrowthCurve {
    /// Wraps a growth curve; `sizes[t] = |I_t|`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or not monotone non-decreasing.
    pub fn new(sizes: Vec<u32>, node_count: usize) -> Self {
        assert!(!sizes.is_empty(), "growth curve cannot be empty");
        assert!(
            sizes.windows(2).all(|w| w[0] <= w[1]),
            "informed sets are monotone"
        );
        GrowthCurve { sizes, node_count }
    }

    /// Extracts the growth curve of a [`FloodRun`] over `n` nodes.
    pub fn from_run(run: &FloodRun, node_count: usize) -> Self {
        Self::new(run.sizes().to_vec(), node_count)
    }

    /// The raw sizes.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// First round `t` with `|I_t| >= frac · n`; `None` if never reached.
    pub fn time_to_fraction(&self, frac: f64) -> Option<u32> {
        let target = (frac * self.node_count as f64).ceil() as u32;
        self.sizes
            .iter()
            .position(|&s| s >= target)
            .map(|t| t as u32)
    }

    /// First round with everyone informed; `None` if the curve is
    /// incomplete.
    pub fn completion_time(&self) -> Option<u32> {
        self.time_to_fraction(1.0)
    }

    /// End of the spreading phase: first round with `|I_t| >= n/2`.
    pub fn spreading_phase_end(&self) -> Option<u32> {
        self.time_to_fraction(0.5)
    }

    /// Length of the saturation phase: completion minus the spreading-phase
    /// end. `None` if the curve is incomplete.
    pub fn saturation_phase_len(&self) -> Option<u32> {
        Some(self.completion_time()? - self.spreading_phase_end()?)
    }

    /// For each power of two `2^k <= n`, the first round where
    /// `|I_t| >= 2^k` (skipping `2^0`, reached at round 0). Lemma 13
    /// predicts consecutive entries at most `O((1/(nα)+β)² log n)` apart
    /// while `|I_t| <= n/2`.
    pub fn doubling_rounds(&self) -> Vec<u32> {
        let mut rounds = Vec::new();
        let mut target = 2u64;
        while target <= self.node_count as u64 {
            match self.sizes.iter().position(|&s| s as u64 >= target) {
                Some(t) => rounds.push(t as u32),
                None => break,
            }
            target *= 2;
        }
        rounds
    }

    /// Largest gap between consecutive doubling rounds within the
    /// spreading phase (targets up to `n/2`); `None` when fewer than two
    /// doublings happened.
    pub fn max_doubling_gap(&self) -> Option<u32> {
        let rounds = self.doubling_rounds();
        let half = self.node_count as u64 / 2;
        if half < 2 {
            return None;
        }
        // Keep targets 2^k <= n/2 (the regime of Lemma 13): entries for
        // k = 1 ..= floor(log2(n/2)), i.e. the first floor(log2(n/2)).
        let keep = half.ilog2() as usize;
        let rounds = &rounds[..rounds.len().min(keep)];
        if rounds.len() < 2 {
            return None;
        }
        rounds.windows(2).map(|w| w[1] - w[0]).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::flood;
    use crate::StaticEvolvingGraph;
    use dg_graph::generators;

    #[test]
    fn fractions_on_exponential_curve() {
        let c = GrowthCurve::new(vec![1, 2, 4, 8, 16, 32], 32);
        assert_eq!(c.time_to_fraction(0.25), Some(3));
        assert_eq!(c.spreading_phase_end(), Some(4));
        assert_eq!(c.completion_time(), Some(5));
        assert_eq!(c.saturation_phase_len(), Some(1));
    }

    #[test]
    fn doubling_rounds_exponential() {
        let c = GrowthCurve::new(vec![1, 2, 4, 8, 16], 16);
        assert_eq!(c.doubling_rounds(), vec![1, 2, 3, 4]);
        assert_eq!(c.max_doubling_gap(), Some(1));
    }

    #[test]
    fn slow_linear_curve() {
        let c = GrowthCurve::new(vec![1, 2, 3, 4, 5, 6, 7, 8], 8);
        assert_eq!(c.doubling_rounds(), vec![1, 3, 7]);
        // Spreading-phase targets: 2 and 4 (n/2); gap 3 - 1 = 2.
        assert_eq!(c.max_doubling_gap(), Some(2));
    }

    #[test]
    fn incomplete_curve() {
        let c = GrowthCurve::new(vec![1, 1, 2], 10);
        assert_eq!(c.completion_time(), None);
        assert_eq!(c.saturation_phase_len(), None);
        assert_eq!(c.doubling_rounds(), vec![2]);
        assert_eq!(c.max_doubling_gap(), None);
    }

    #[test]
    fn from_run_matches() {
        let mut g = StaticEvolvingGraph::new(generators::complete(6));
        let run = flood(&mut g, 0, 10);
        let c = GrowthCurve::from_run(&run, 6);
        assert_eq!(c.sizes(), run.sizes());
        assert_eq!(c.completion_time(), Some(1));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_rejected() {
        let _ = GrowthCurve::new(vec![3, 2], 4);
    }
}
