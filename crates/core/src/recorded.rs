//! Recording and replaying realizations of a dynamic graph.
//!
//! The flooding time of the paper is `F(G) = max_s F(G, s)` — the maximum
//! over sources *on the same realization* of the process. To measure it we
//! record a realization once and replay it for every source.

use crate::delta::EdgeDelta;
use crate::flooding::{flood, FloodRun};
use crate::{EvolvingGraph, Snapshot};

/// A recorded realization `E_0, ..., E_{T-1}` of a dynamic graph.
///
/// # Examples
///
/// ```
/// use dynagraph::{RecordedEvolution, StaticEvolvingGraph};
/// use dg_graph::generators;
///
/// let mut g = StaticEvolvingGraph::new(generators::cycle(6));
/// let rec = RecordedEvolution::record(&mut g, 10);
/// assert_eq!(rec.rounds(), 10);
/// let run = rec.flood_from(0);
/// assert_eq!(run.flooding_time(), Some(3));
/// // F(G) = max over sources, all on the same realization:
/// assert_eq!(rec.flooding_time_all_sources(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct RecordedEvolution {
    snapshots: Vec<Snapshot>,
    /// `deltas[t]` is the churn from `E_{t-1}` to `E_t` (`deltas[0]` is
    /// `E_0` relative to the empty graph), precomputed so every replay
    /// serves native deltas in `O(churn)`.
    deltas: Vec<crate::delta::DeltaPair>,
    node_count: usize,
}

impl RecordedEvolution {
    /// Steps `g` for `rounds` rounds, cloning every snapshot and diffing
    /// consecutive rounds into the replayable delta sequence.
    pub fn record<G: EvolvingGraph + ?Sized>(g: &mut G, rounds: usize) -> Self {
        let node_count = g.node_count();
        let mut snapshots = Vec::with_capacity(rounds);
        let mut deltas = Vec::with_capacity(rounds);
        let mut diff = EdgeDelta::new();
        for _ in 0..rounds {
            let snap = g.step().clone();
            diff.diff_snapshot(&snap);
            deltas.push((diff.added().to_vec(), diff.removed().to_vec()));
            snapshots.push(snap);
        }
        RecordedEvolution {
            snapshots,
            deltas,
            node_count,
        }
    }

    /// The recorded churn of round `t`: `(added, removed)` relative to
    /// round `t - 1` (round 0 is relative to the empty graph).
    ///
    /// # Panics
    ///
    /// Panics if `t >= rounds()`.
    pub fn delta(&self, t: usize) -> (&[crate::delta::Edge], &[crate::delta::Edge]) {
        let (added, removed) = &self.deltas[t];
        (added, removed)
    }

    /// Number of recorded rounds `T`.
    pub fn rounds(&self) -> usize {
        self.snapshots.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The snapshot of round `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= rounds()`.
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }

    /// Floods from `source` over the recorded rounds (served as native
    /// deltas, so the sweep costs `O(frontier + churn)` per round). If
    /// the recording is exhausted before completion the run reports
    /// `None`.
    pub fn flood_from(&self, source: u32) -> FloodRun {
        let mut replay = Replay {
            rec: self,
            cursor: 0,
            synced: false,
            edgeless: Snapshot::empty(self.node_count),
        };
        flood(&mut replay, source, self.snapshots.len() as u32)
    }

    /// The paper's `F(G) = max_s F(G, s)` on this realization; `None` if
    /// any source fails to flood within the recording.
    pub fn flooding_time_all_sources(&self) -> Option<u32> {
        let mut worst = 0;
        for s in 0..self.node_count as u32 {
            worst = worst.max(self.flood_from(s).flooding_time()?);
        }
        Some(worst)
    }
}

/// Replays a recorded realization as an [`EvolvingGraph`]; rounds beyond
/// the recording are edgeless.
struct Replay<'a> {
    rec: &'a RecordedEvolution,
    cursor: usize,
    synced: bool,
    edgeless: Snapshot,
}

impl EvolvingGraph for Replay<'_> {
    fn node_count(&self) -> usize {
        self.rec.node_count
    }

    fn step(&mut self) -> &Snapshot {
        self.synced = false;
        if self.cursor < self.rec.snapshots.len() {
            let s = &self.rec.snapshots[self.cursor];
            self.cursor += 1;
            s
        } else {
            &self.edgeless
        }
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        let rounds = self.rec.snapshots.len();
        delta.begin_round();
        if self.cursor < rounds {
            if self.synced && self.cursor > 0 {
                let (added, removed) = &self.rec.deltas[self.cursor];
                for &e in added {
                    delta.push_added(e);
                }
                for &e in removed {
                    delta.push_removed(e);
                }
            } else {
                delta.record_full(self.rec.snapshots[self.cursor].edges());
            }
            self.synced = true;
            self.cursor += 1;
        } else {
            // Rounds beyond the recording are edgeless: drain whatever
            // the consumer last saw, then emit empty deltas forever.
            if self.synced && self.cursor == rounds && rounds > 0 {
                for e in self.rec.snapshots[rounds - 1].edges() {
                    delta.push_removed(e);
                }
            }
            self.synced = true;
            self.cursor = rounds + 1;
        }
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, _seed: u64) {
        self.cursor = 0;
        self.synced = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicEvolvingGraph, StaticEvolvingGraph};
    use dg_graph::generators;

    #[test]
    fn record_static() {
        let mut g = StaticEvolvingGraph::new(generators::path(4));
        let rec = RecordedEvolution::record(&mut g, 5);
        assert_eq!(rec.rounds(), 5);
        assert_eq!(rec.node_count(), 4);
        assert_eq!(rec.snapshot(0).edge_count(), 3);
    }

    #[test]
    fn all_sources_max_on_path() {
        // On a static path of 5 nodes, F(G, s) is the eccentricity of s;
        // the max over s is the diameter 4 (from an endpoint).
        let mut g = StaticEvolvingGraph::new(generators::path(5));
        let rec = RecordedEvolution::record(&mut g, 10);
        assert_eq!(rec.flood_from(2).flooding_time(), Some(2));
        assert_eq!(rec.flooding_time_all_sources(), Some(4));
    }

    #[test]
    fn exhausted_recording_incomplete() {
        let mut g = StaticEvolvingGraph::new(generators::path(6));
        let rec = RecordedEvolution::record(&mut g, 2);
        assert_eq!(rec.flood_from(0).flooding_time(), None);
        assert_eq!(rec.flooding_time_all_sources(), None);
    }

    #[test]
    fn replay_reset_matches_fresh() {
        // The reset reuse contract for the recorded-replay model: a
        // replay that has been stepped (snapshot or delta path) and
        // reset must walk the recording exactly like a fresh one —
        // including re-emitting a full first delta.
        let graphs = [
            dg_graph::generators::path(6),
            dg_graph::generators::star(6),
            dg_graph::generators::cycle(6),
        ];
        let mut g = PeriodicEvolvingGraph::new(&graphs).unwrap();
        let rec = RecordedEvolution::record(&mut g, 9);
        crate::assert_reset_matches_fresh(
            |_seed| Replay {
                rec: &rec,
                cursor: 0,
                synced: false,
                edgeless: Snapshot::empty(rec.node_count()),
            },
            1,
            2,
            // Past the recording's end: the edgeless tail must replay
            // identically too.
            12,
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let even = {
            let mut b = dg_graph::GraphBuilder::new(3);
            b.add_edge(0, 1).unwrap();
            b.build()
        };
        let odd = {
            let mut b = dg_graph::GraphBuilder::new(3);
            b.add_edge(1, 2).unwrap();
            b.build()
        };
        let mut g = PeriodicEvolvingGraph::new(&[even, odd]).unwrap();
        let rec = RecordedEvolution::record(&mut g, 4);
        let a = rec.flood_from(0);
        let b = rec.flood_from(0);
        assert_eq!(a, b);
        assert_eq!(a.flooding_time(), Some(2));
    }
}
