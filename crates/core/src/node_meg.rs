//! Node-Markovian evolving graphs (§4).
//!
//! A node-MEG `NM(n, M, C)` attaches an independent copy of a Markov chain
//! `M = (S, P)` to every node; an edge `{i, j}` exists at time `t` iff
//! `C(s_i^t, s_j^t) = 1` for a fixed symmetric connection map `C`. Every
//! mobility model where nodes act independently over a discrete space is a
//! node-MEG (random walk, random waypoint, random trip, random paths — see
//! the `dg-mobility` crate for those concrete instances).
//!
//! For *finite* chains this module also computes the paper's quantities
//! exactly:
//!
//! * `q(x) = π(Γ(x))` — probability that a stationary node connects to a
//!   fixed node in state `x`;
//! * `P_NM = Σ_x π(x)·q(x)` — stationary edge probability (Fact 2: the
//!   same for every pair);
//! * `P_NM² = Σ_x π(x)·q(x)²` — probability two fixed nodes both connect
//!   to a third;
//! * `η = P_NM² / (P_NM)²` — the pairwise-independence parameter of
//!   Theorem 3.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dg_markov::{DenseChain, MarkovError};

use crate::{mix_seed, DynagraphError, EdgeDelta, EvolvingGraph, Snapshot};

/// The hidden per-node Markov chain of a node-MEG.
///
/// Implementations are cheap handles describing the chain; the per-node
/// *state* lives in the process. States must carry enough information for
/// the connection map to decide adjacency (position, destination,
/// trajectory phase, social role, ... — §4).
pub trait NodeChain {
    /// Per-node state type.
    type State: Clone + Send;

    /// Samples a node's initial state (the distribution `ι_i` of §4; for
    /// stationary starts, sample from the stationary distribution or warm
    /// the process up).
    fn sample_initial(&self, rng: &mut SmallRng) -> Self::State;

    /// Advances one node state by one round.
    fn step_state(&self, state: &mut Self::State, rng: &mut SmallRng);
}

/// The symmetric connection map `C : S × S → {0, 1}` of a node-MEG.
pub trait ConnectionMap<S> {
    /// `true` iff nodes in states `a` and `b` are connected.
    ///
    /// Implementations must be symmetric: `connected(a, b) ==
    /// connected(b, a)`.
    fn connected(&self, a: &S, b: &S) -> bool;
}

/// A node-MEG as an [`EvolvingGraph`]: `n` independent copies of a
/// [`NodeChain`] plus a [`ConnectionMap`].
///
/// The snapshot is built by an all-pairs scan (`O(n²)` per round), which is
/// the honest general-case cost; geometric models with radius-based
/// connection should use the cell-list process in `dg-mobility` instead.
///
/// # Examples
///
/// ```
/// use dynagraph::node_meg::{FiniteNodeChain, MatrixConnection, NodeMeg};
/// use dynagraph::{flooding, EvolvingGraph};
/// use dg_markov::DenseChain;
///
/// // Nodes hop on a 3-state cycle; nodes connect iff in the same state.
/// let chain = DenseChain::from_rows(vec![
///     vec![0.5, 0.5, 0.0],
///     vec![0.0, 0.5, 0.5],
///     vec![0.5, 0.0, 0.5],
/// ]).unwrap();
/// let node_chain = FiniteNodeChain::uniform_start(chain);
/// let conn = MatrixConnection::same_state(3);
/// let mut meg = NodeMeg::new(node_chain, conn, 16, 42).unwrap();
/// let run = flooding::flood(&mut meg, 0, 10_000);
/// assert!(run.flooding_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct NodeMeg<C: NodeChain, M: ConnectionMap<C::State>> {
    chain: C,
    conn: M,
    states: Vec<C::State>,
    rng: SmallRng,
    snapshot: Snapshot,
    edge_buf: Vec<(u32, u32)>,
    prev_edges: Vec<(u32, u32)>,
    synced: bool,
}

impl<C: NodeChain, M: ConnectionMap<C::State>> NodeMeg<C, M> {
    /// Creates a node-MEG over `n` nodes, sampling each initial state
    /// independently.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::DimensionMismatch`] when `n == 0`.
    pub fn new(chain: C, conn: M, n: usize, seed: u64) -> Result<Self, DynagraphError> {
        if n == 0 {
            return Err(DynagraphError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 0));
        let states = (0..n).map(|_| chain.sample_initial(&mut rng)).collect();
        Ok(NodeMeg {
            chain,
            conn,
            states,
            rng,
            snapshot: Snapshot::empty(n),
            edge_buf: Vec::new(),
            prev_edges: Vec::new(),
            synced: false,
        })
    }

    /// Steps every node state and rebuilds the sorted pair list in
    /// `edge_buf` (the all-pairs scan shared by both stepping paths).
    fn advance(&mut self) {
        for s in &mut self.states {
            self.chain.step_state(s, &mut self.rng);
        }
        self.edge_buf.clear();
        let n = self.states.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.conn.connected(&self.states[i], &self.states[j]) {
                    self.edge_buf.push((i as u32, j as u32));
                }
            }
        }
    }

    /// The current hidden states (for positional analyses).
    pub fn states(&self) -> &[C::State] {
        &self.states
    }

    /// The connection map.
    pub fn connection(&self) -> &M {
        &self.conn
    }
}

impl<C: NodeChain, M: ConnectionMap<C::State>> EvolvingGraph for NodeMeg<C, M> {
    fn node_count(&self) -> usize {
        self.states.len()
    }

    fn step(&mut self) -> &Snapshot {
        self.advance();
        self.snapshot.rebuild_from_edges(&self.edge_buf);
        self.synced = false;
        &self.snapshot
    }

    fn step_delta(&mut self, delta: &mut EdgeDelta) {
        self.advance();
        // The all-pairs scan yields the pair list lex-sorted, so one
        // merge pass against the previous round is the enter/leave event
        // stream — no CSR is ever built.
        if self.synced {
            delta.record_transition(&self.prev_edges, &self.edge_buf);
        } else {
            delta.record_full(self.edge_buf.iter().copied());
            self.synced = true;
        }
        std::mem::swap(&mut self.prev_edges, &mut self.edge_buf);
    }

    fn has_native_deltas(&self) -> bool {
        true
    }

    fn rebase_deltas(&mut self) {
        self.synced = false;
    }

    fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(mix_seed(seed, 0));
        for s in &mut self.states {
            *s = self.chain.sample_initial(&mut self.rng);
        }
        self.synced = false;
    }
}

/// A [`NodeChain`] backed by an explicit finite [`DenseChain`].
///
/// This is the chain used for the exact Theorem 3 experiments: small
/// enough to compute `π`, `P_NM`, `P_NM²`, `η` and `T_mix` exactly, while
/// the same object drives the simulation.
#[derive(Debug, Clone)]
pub struct FiniteNodeChain {
    chain: DenseChain,
    initial: InitialState,
}

#[derive(Debug, Clone)]
enum InitialState {
    Uniform,
    Fixed(u32),
    Distribution(dg_markov::ProbDist),
}

impl FiniteNodeChain {
    /// Nodes start in a uniformly random state.
    pub fn uniform_start(chain: DenseChain) -> Self {
        FiniteNodeChain {
            chain,
            initial: InitialState::Uniform,
        }
    }

    /// All nodes start in `state` (the worst-case initialization used to
    /// probe mixing).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn fixed_start(chain: DenseChain, state: u32) -> Self {
        assert!((state as usize) < chain.state_count(), "state out of range");
        FiniteNodeChain {
            chain,
            initial: InitialState::Fixed(state),
        }
    }

    /// Nodes start from the chain's stationary distribution — the
    /// *stationary node-MEG* of the paper.
    ///
    /// # Errors
    ///
    /// Propagates stationary-distribution failures for non-ergodic chains.
    pub fn stationary_start(chain: DenseChain) -> Result<Self, MarkovError> {
        let pi = chain.stationary(1e-12, 1_000_000)?;
        Ok(FiniteNodeChain {
            chain,
            initial: InitialState::Distribution(pi),
        })
    }

    /// The underlying dense chain.
    pub fn chain(&self) -> &DenseChain {
        &self.chain
    }
}

impl NodeChain for FiniteNodeChain {
    type State = u32;

    fn sample_initial(&self, rng: &mut SmallRng) -> u32 {
        match &self.initial {
            InitialState::Uniform => rng.gen_range(0..self.chain.state_count()) as u32,
            InitialState::Fixed(s) => *s,
            InitialState::Distribution(d) => d.sample(rng) as u32,
        }
    }

    fn step_state(&self, state: &mut u32, rng: &mut SmallRng) {
        *state = self.chain.sample_next(*state as usize, rng) as u32;
    }
}

/// A symmetric boolean connection matrix over a finite state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixConnection {
    k: usize,
    connected: Vec<bool>,
}

impl MatrixConnection {
    /// Builds from a predicate, verifying symmetry.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::NotSymmetric`] if `f(x, y) != f(y, x)`
    /// for some pair.
    pub fn from_fn(k: usize, f: impl Fn(usize, usize) -> bool) -> Result<Self, DynagraphError> {
        let mut connected = vec![false; k * k];
        for x in 0..k {
            for y in 0..k {
                connected[x * k + y] = f(x, y);
            }
        }
        for x in 0..k {
            for y in (x + 1)..k {
                if connected[x * k + y] != connected[y * k + x] {
                    return Err(DynagraphError::NotSymmetric);
                }
            }
        }
        Ok(MatrixConnection { k, connected })
    }

    /// The "same point" connection of the random-path models: states
    /// connect iff equal.
    pub fn same_state(k: usize) -> Self {
        Self::from_fn(k, |x, y| x == y).expect("equality is symmetric")
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.k
    }

    /// `true` iff states `x` and `y` connect.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.k && y < self.k, "state out of range");
        self.connected[x * self.k + y]
    }
}

impl ConnectionMap<u32> for MatrixConnection {
    fn connected(&self, a: &u32, b: &u32) -> bool {
        self.get(*a as usize, *b as usize)
    }
}

/// The exact stationary quantities of a finite node-MEG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeMegAnalysis {
    /// Stationary edge probability `P_NM` (Fact 2: pair-independent).
    pub pnm: f64,
    /// `P_NM²`: probability that two fixed nodes both connect to a third.
    pub pnm2: f64,
    /// The independence parameter `η = P_NM² / (P_NM)²` of Theorem 3.
    pub eta: f64,
}

impl NodeMegAnalysis {
    /// Computes `P_NM`, `P_NM²`, `η` exactly from the chain's stationary
    /// distribution and the connection matrix:
    /// `q(x) = Σ_{y: C(x,y)} π(y)`, `P_NM = Σ_x π(x)q(x)`,
    /// `P_NM² = Σ_x π(x)q(x)²`.
    ///
    /// # Errors
    ///
    /// Returns [`DynagraphError::DimensionMismatch`] when the chain and
    /// connection matrix disagree on the state count, or
    /// [`DynagraphError::ParameterOutOfRange`] when `P_NM = 0` (η would be
    /// undefined — no edges ever form).
    pub fn compute(
        chain: &DenseChain,
        conn: &MatrixConnection,
    ) -> Result<NodeMegAnalysis, DynagraphError> {
        if chain.state_count() != conn.state_count() {
            return Err(DynagraphError::DimensionMismatch {
                expected: chain.state_count(),
                found: conn.state_count(),
            });
        }
        let pi = chain.stationary(1e-13, 1_000_000).map_err(|_| {
            DynagraphError::ParameterOutOfRange {
                name: "chain (non-ergodic)",
                value: f64::NAN,
            }
        })?;
        let k = chain.state_count();
        let mut pnm = 0.0;
        let mut pnm2 = 0.0;
        for x in 0..k {
            let mut q = 0.0;
            for y in 0..k {
                if conn.get(x, y) {
                    q += pi.prob(y);
                }
            }
            pnm += pi.prob(x) * q;
            pnm2 += pi.prob(x) * q * q;
        }
        if pnm <= 0.0 {
            return Err(DynagraphError::ParameterOutOfRange {
                name: "pnm",
                value: pnm,
            });
        }
        Ok(NodeMegAnalysis {
            pnm,
            pnm2,
            eta: pnm2 / (pnm * pnm),
        })
    }

    /// The Theorem 3 flooding bound for a node-MEG over `n` nodes with the
    /// given mixing time.
    pub fn theorem3_bound(&self, tmix: f64, n: usize) -> f64 {
        crate::theory::theorem3_bound(tmix.max(1.0), self.pnm, self.eta.max(1.0), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::flood;

    fn lazy_cycle_chain(k: usize) -> DenseChain {
        let mut rows = vec![vec![0.0; k]; k];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 0.5;
            row[(i + 1) % k] += 0.25;
            row[(i + k - 1) % k] += 0.25;
        }
        DenseChain::from_rows(rows).unwrap()
    }

    #[test]
    fn matrix_connection_symmetry_enforced() {
        assert!(MatrixConnection::from_fn(3, |x, y| x < y).is_err());
        assert!(MatrixConnection::from_fn(3, |x, y| x != y).is_ok());
    }

    #[test]
    fn same_state_connection() {
        let c = MatrixConnection::same_state(4);
        assert!(c.get(2, 2));
        assert!(!c.get(1, 2));
        assert!(ConnectionMap::<u32>::connected(&c, &3, &3));
    }

    #[test]
    fn analysis_uniform_chain_same_point() {
        // Lazy cycle on k points: pi uniform, same-point connection:
        // q(x) = 1/k, P_NM = 1/k, P_NM2 = 1/k^2, eta = 1.
        let k = 8;
        let chain = lazy_cycle_chain(k);
        let conn = MatrixConnection::same_state(k);
        let a = NodeMegAnalysis::compute(&chain, &conn).unwrap();
        assert!((a.pnm - 1.0 / k as f64).abs() < 1e-8);
        assert!((a.pnm2 - 1.0 / (k * k) as f64).abs() < 1e-9);
        assert!((a.eta - 1.0).abs() < 1e-6);
    }

    #[test]
    fn analysis_biased_chain_eta_above_one() {
        // A chain strongly biased to state 0; same-point connection makes
        // q(x) = pi(x), so eta = sum pi^3 / (sum pi^2)^2 > 1 for skewed pi.
        let chain = DenseChain::from_rows(vec![
            vec![0.9, 0.1, 0.0],
            vec![0.8, 0.1, 0.1],
            vec![0.8, 0.1, 0.1],
        ])
        .unwrap();
        let conn = MatrixConnection::same_state(3);
        let a = NodeMegAnalysis::compute(&chain, &conn).unwrap();
        assert!(a.eta > 1.0, "eta = {}", a.eta);
        assert!(a.theorem3_bound(10.0, 64) > 0.0);
    }

    #[test]
    fn analysis_rejects_mismatch_and_empty_connection() {
        let chain = lazy_cycle_chain(4);
        let conn = MatrixConnection::same_state(3);
        assert!(NodeMegAnalysis::compute(&chain, &conn).is_err());
        let never = MatrixConnection::from_fn(4, |_, _| false).unwrap();
        assert!(NodeMegAnalysis::compute(&chain, &never).is_err());
    }

    #[test]
    fn node_meg_floods_on_complete_connection() {
        // Always-connected map: the node-MEG is the complete graph every
        // round; flooding takes exactly 1 round.
        let chain = FiniteNodeChain::uniform_start(lazy_cycle_chain(3));
        let conn = MatrixConnection::from_fn(3, |_, _| true).unwrap();
        let mut meg = NodeMeg::new(chain, conn, 12, 5).unwrap();
        let run = flood(&mut meg, 0, 10);
        assert_eq!(run.flooding_time(), Some(1));
    }

    #[test]
    fn node_meg_reset_reproducible() {
        let chain = FiniteNodeChain::uniform_start(lazy_cycle_chain(5));
        let conn = MatrixConnection::same_state(5);
        let mut meg = NodeMeg::new(chain, conn, 10, 1).unwrap();
        meg.reset(99);
        let a: Vec<_> = meg.step().edges().collect();
        meg.reset(99);
        let b: Vec<_> = meg.step().edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn node_meg_reset_matches_fresh() {
        crate::assert_reset_matches_fresh(
            |seed| {
                let chain = FiniteNodeChain::uniform_start(lazy_cycle_chain(5));
                let conn = MatrixConnection::same_state(5);
                NodeMeg::new(chain, conn, 12, seed).unwrap()
            },
            3,
            8,
            12,
        );
    }

    #[test]
    fn fact2_pairwise_edge_probability_uniform() {
        // Fact 2: stationary edge probability does not depend on the pair.
        // Estimate P(e_{0,1}) and P(e_{2,3}) over many stationary rounds.
        let k = 4;
        let chain = FiniteNodeChain::stationary_start(lazy_cycle_chain(k)).unwrap();
        let conn = MatrixConnection::same_state(k);
        let mut meg = NodeMeg::new(chain, conn, 6, 11).unwrap();
        let rounds = 20_000;
        let mut c01 = 0u32;
        let mut c23 = 0u32;
        for _ in 0..rounds {
            let s = meg.step();
            if s.has_edge(0, 1) {
                c01 += 1;
            }
            if s.has_edge(2, 3) {
                c23 += 1;
            }
        }
        let p01 = c01 as f64 / rounds as f64;
        let p23 = c23 as f64 / rounds as f64;
        let expected = 1.0 / k as f64;
        assert!((p01 - expected).abs() < 0.02, "p01 = {p01}");
        assert!((p23 - expected).abs() < 0.02, "p23 = {p23}");
    }

    #[test]
    fn fixed_start_is_fixed() {
        let chain = FiniteNodeChain::fixed_start(lazy_cycle_chain(5), 2);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(chain.sample_initial(&mut rng), 2);
        }
    }

    #[test]
    fn zero_nodes_rejected() {
        let chain = FiniteNodeChain::uniform_start(lazy_cycle_chain(3));
        let conn = MatrixConnection::same_state(3);
        assert!(NodeMeg::new(chain, conn, 0, 0).is_err());
    }
}
